"""Discrete-event simulation kernel.

This subpackage is the stand-in for the DeNet simulation language the paper
used: a minimal, fast event loop with cancellable events plus deterministic,
independently seeded random-number streams so that every scheduling algorithm
can be evaluated against an *identical* stochastic workload (common random
numbers).
"""

from repro.sim.clock import Clock
from repro.sim.engine import Engine, SimulationError
from repro.sim.events import Event
from repro.sim.streams import RandomStream, StreamFamily

__all__ = [
    "Clock",
    "Engine",
    "Event",
    "RandomStream",
    "SimulationError",
    "StreamFamily",
]
