"""Event objects for the discrete-event engine.

An :class:`Event` is a scheduled callback.  Events support O(1) cancellation:
a cancelled event stays in the heap but is skipped when popped (the standard
"lazy deletion" idiom), which keeps the hot path allocation-free.
"""

from __future__ import annotations

from typing import Any, Callable


class Event:
    """A single scheduled occurrence inside an :class:`~repro.sim.Engine`.

    Events are ordered by ``(time, seq)``; ``seq`` is a monotonically
    increasing tie-breaker assigned by the engine so that two events scheduled
    for the same instant fire in scheduling order (FIFO at an instant).

    Attributes:
        time: Simulated time at which the callback fires.
        seq: Engine-assigned tie-breaker; also a stable identity.
        callback: Callable invoked as ``callback(*args)`` when the event
            fires.  The engine's current time is available via the engine.
        args: Positional arguments for the callback.
        cancelled: True once :meth:`cancel` has been called; the engine
            silently discards cancelled events.
        engine: Back-reference to the owning engine (None for detached
            events) so cancellation can maintain the engine's cancelled-
            event counter without a heap scan.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "engine")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple = (),
        engine: Any = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.engine = engine

    def cancel(self) -> None:
        """Mark this event so the engine skips it when its time comes."""
        if self.cancelled:
            return
        self.cancelled = True
        engine = self.engine
        if engine is not None:
            engine._cancelled += 1

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = " cancelled" if self.cancelled else ""
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"<Event t={self.time:.6f} #{self.seq} {name}{status}>"
