"""The discrete-event engine.

A classic calendar-heap event loop: callbacks are scheduled at absolute or
relative simulated times and dispatched in non-decreasing time order.  The
engine makes three guarantees the rest of the library depends on:

* **Determinism** — given identical schedules, events fire in identical
  order (ties broken by scheduling order).
* **Monotonic clock** — ``engine.now`` never goes backwards; scheduling in
  the past raises :class:`SimulationError`.
* **Cheap cancellation** — cancelling an event is O(1) (lazy deletion), so
  preemption of CPU bursts costs nothing beyond a flag write.

The heap stores ``(time, seq, event)`` tuples rather than bare events so
sift comparisons stay in C (tuple comparison) instead of calling
``Event.__lt__`` — on update-heavy workloads that comparison was the
single hottest function in the profile.  A cancelled-event counter
maintained on cancel and on popping a cancelled entry makes
:meth:`Engine.pending_count` and :meth:`Engine.peek_time` O(1) amortized
instead of O(n) scans, while keeping the common dispatch path free of any
counter bookkeeping (cancellations are rare relative to dispatches).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.sim.events import Event


class SimulationError(RuntimeError):
    """Raised for engine misuse (scheduling in the past, running twice...)."""


class Engine:
    """A single-threaded discrete-event simulation engine.

    Example:
        >>> engine = Engine()
        >>> fired = []
        >>> _ = engine.schedule(1.5, fired.append, "a")
        >>> _ = engine.schedule(0.5, fired.append, "b")
        >>> engine.run_until(10.0)
        >>> fired
        ['b', 'a']
        >>> engine.now
        10.0
    """

    __slots__ = (
        "now",
        "_heap",
        "_seq",
        "_running",
        "_cancelled",
        "run_end",
        "events_dispatched",
    )

    def __init__(self, start_time: float = 0.0) -> None:
        self.now = float(start_time)
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._running = False
        # Cancelled events still sitting in the heap (lazy deletion debt).
        self._cancelled = 0
        # End time of the run_until() segment in progress, or None outside
        # one.  Callbacks use this to know how far the clock can advance
        # before control returns to the caller (e.g. the controller's
        # install-burst coalescing must not let a batch span it).
        self.run_end: float | None = None
        self.events_dispatched = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
    ) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        # Inline Event construction (bypassing __init__) — this is the
        # hottest allocation in the simulator and the call frame alone is
        # measurable at millions of events per run.
        event = Event.__new__(Event)
        event.time = time
        event.seq = seq
        event.callback = callback
        event.args = args
        event.cancelled = False
        event.engine = self
        heapq.heappush(self._heap, (time, seq, event))
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
    ) -> Event:
        """Schedule ``callback(*args)`` to fire at absolute time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time!r}; clock already at {self.now!r}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event.__new__(Event)
        event.time = time
        event.seq = seq
        event.callback = callback
        event.args = args
        event.cancelled = False
        event.engine = self
        heapq.heappush(self._heap, (time, seq, event))
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (idempotent)."""
        event.cancel()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_until(self, end_time: float) -> None:
        """Dispatch events in time order until the clock reaches ``end_time``.

        Events scheduled exactly at ``end_time`` are *not* dispatched; the
        clock is left at ``end_time`` so callers can take final measurements
        over the closed interval ``[start, end_time]``.
        """
        if self._running:
            raise SimulationError("engine is already running")
        self._running = True
        self.run_end = end_time
        heap = self._heap
        pop = heapq.heappop
        dispatched = 0
        try:
            while heap:
                head = heap[0]
                time = head[0]
                if time >= end_time:
                    break
                pop(heap)
                event = head[2]
                if event.cancelled:
                    self._cancelled -= 1
                    continue
                # Detach so a late cancel() (after dispatch) cannot corrupt
                # the cancelled-entry counter.
                event.engine = None
                self.now = time
                dispatched += 1
                event.callback(*event.args)
            self.now = end_time
        finally:
            self.events_dispatched += dispatched
            self.run_end = None
            self._running = False

    def step(self) -> bool:
        """Dispatch the single next pending event.

        Returns:
            True if an event fired, False if the queue was empty.
        """
        heap = self._heap
        while heap:
            _, _, event = heapq.heappop(heap)
            if event.cancelled:
                self._cancelled -= 1
                continue
            event.engine = None
            self.now = event.time
            self.events_dispatched += 1
            event.callback(*event.args)
            return True
        return False

    def pending_count(self) -> int:
        """Number of not-yet-cancelled events still in the queue (O(1))."""
        return len(self._heap) - self._cancelled

    def peek_time(self) -> float | None:
        """Time of the next live event, or None if the queue is empty.

        Amortized O(1): cancelled heads are popped eagerly, each one paid
        for by the cancellation that produced it.
        """
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._cancelled -= 1
        return heap[0][0] if heap else None
