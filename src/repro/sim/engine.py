"""The discrete-event engine.

A classic calendar-heap event loop: callbacks are scheduled at absolute or
relative simulated times and dispatched in non-decreasing time order.  The
engine makes three guarantees the rest of the library depends on:

* **Determinism** — given identical schedules, events fire in identical
  order (ties broken by scheduling order).
* **Monotonic clock** — ``engine.now`` never goes backwards; scheduling in
  the past raises :class:`SimulationError`.
* **Cheap cancellation** — cancelling an event is O(1) (lazy deletion), so
  preemption of CPU bursts costs nothing beyond a flag write.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.sim.events import Event


class SimulationError(RuntimeError):
    """Raised for engine misuse (scheduling in the past, running twice...)."""


class Engine:
    """A single-threaded discrete-event simulation engine.

    Example:
        >>> engine = Engine()
        >>> fired = []
        >>> _ = engine.schedule(1.5, fired.append, "a")
        >>> _ = engine.schedule(0.5, fired.append, "b")
        >>> engine.run_until(10.0)
        >>> fired
        ['b', 'a']
        >>> engine.now
        10.0
    """

    __slots__ = ("now", "_heap", "_seq", "_running", "events_dispatched")

    def __init__(self, start_time: float = 0.0) -> None:
        self.now = float(start_time)
        self._heap: list[Event] = []
        self._seq = 0
        self._running = False
        self.events_dispatched = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
    ) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
    ) -> Event:
        """Schedule ``callback(*args)`` to fire at absolute time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time!r}; clock already at {self.now!r}"
            )
        event = Event(time, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (idempotent)."""
        event.cancel()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_until(self, end_time: float) -> None:
        """Dispatch events in time order until the clock reaches ``end_time``.

        Events scheduled exactly at ``end_time`` are *not* dispatched; the
        clock is left at ``end_time`` so callers can take final measurements
        over the closed interval ``[start, end_time]``.
        """
        if self._running:
            raise SimulationError("engine is already running")
        self._running = True
        heap = self._heap
        try:
            while heap:
                event = heap[0]
                if event.time >= end_time:
                    break
                heapq.heappop(heap)
                if event.cancelled:
                    continue
                self.now = event.time
                self.events_dispatched += 1
                event.callback(*event.args)
            self.now = end_time
        finally:
            self._running = False

    def step(self) -> bool:
        """Dispatch the single next pending event.

        Returns:
            True if an event fired, False if the queue was empty.
        """
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)
            if event.cancelled:
                continue
            self.now = event.time
            self.events_dispatched += 1
            event.callback(*event.args)
            return True
        return False

    def pending_count(self) -> int:
        """Number of not-yet-cancelled events still in the queue."""
        return sum(1 for event in self._heap if not event.cancelled)

    def peek_time(self) -> float | None:
        """Time of the next live event, or None if the queue is empty."""
        for event in self._heap:
            if not event.cancelled:
                break
        else:
            return None
        # The heap's first live event is not necessarily heap[0] when lazy
        # deletions are pending, so pop cancelled heads eagerly.
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return heap[0].time if heap else None
