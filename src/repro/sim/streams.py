"""Deterministic random-number streams.

The paper compares four scheduling algorithms on the same stochastic
workload.  To make those comparisons noise-free (the *common random numbers*
variance-reduction technique), each stochastic component of the model draws
from its own named stream, seeded by hashing ``(root_seed, name)``.  Two
simulations built from the same root seed therefore see bit-identical update
and transaction streams regardless of which scheduling algorithm runs —
a property the integration tests assert directly.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Iterator


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a child seed for stream ``name`` from ``root_seed``.

    Uses SHA-256 so that distinct names give statistically independent
    streams and the mapping is stable across Python versions (unlike
    ``hash()``).
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStream:
    """A named pseudo-random stream with the distributions the model needs.

    Wraps :class:`random.Random` (Mersenne Twister) and exposes exactly the
    draw types Tables 1 and 2 of the paper call for, with the domain
    truncations the model requires (values, times, and counts are
    non-negative).
    """

    __slots__ = ("name", "_rng")

    def __init__(self, name: str, seed: int) -> None:
        self.name = name
        self._rng = random.Random(seed)

    # -- raw draws ------------------------------------------------------
    def uniform(self, low: float, high: float) -> float:
        """U[low, high]."""
        if high < low:
            raise ValueError(f"uniform range inverted: [{low}, {high}]")
        return self._rng.uniform(low, high)

    def exponential(self, mean: float) -> float:
        """Exponential with the given mean (not rate)."""
        if mean < 0:
            raise ValueError(f"exponential mean must be >= 0, got {mean}")
        if mean == 0:
            return 0.0
        return self._rng.expovariate(1.0 / mean)

    def normal(self, mean: float, stdev: float) -> float:
        """N(mean, stdev^2)."""
        if stdev < 0:
            raise ValueError(f"normal stdev must be >= 0, got {stdev}")
        if stdev == 0:
            return mean
        return self._rng.gauss(mean, stdev)

    # -- model-shaped draws ----------------------------------------------
    def truncated_normal(self, mean: float, stdev: float, minimum: float = 0.0) -> float:
        """A normal draw clipped below at ``minimum``.

        The paper draws compute times and transaction values from normals
        whose tails cross zero; negative times/values are meaningless, so we
        clip (the probability mass involved is small at the baseline
        parameters and clipping keeps the draw count per entity constant,
        which the common-random-numbers guarantee relies on).
        """
        return max(minimum, self.normal(mean, stdev))

    def normal_count(self, mean: float, stdev: float) -> int:
        """A non-negative integer from a rounded, clipped normal draw."""
        return max(0, round(self.normal(mean, stdev)))

    def interarrival(self, rate: float) -> float:
        """Next gap of a Poisson process with the given rate (events/sec)."""
        if rate <= 0:
            raise ValueError(f"Poisson rate must be > 0, got {rate}")
        return self._rng.expovariate(rate)

    def bernoulli(self, probability: float) -> bool:
        """True with the given probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability out of range: {probability}")
        return self._rng.random() < probability

    def choose_index(self, count: int) -> int:
        """Uniform integer in [0, count)."""
        if count <= 0:
            raise ValueError(f"cannot choose from {count} items")
        return self._rng.randrange(count)

    def poisson_arrivals(self, rate: float, until: float) -> Iterator[float]:
        """Yield absolute arrival times of a Poisson process on [0, until)."""
        time = self._rng.expovariate(rate)
        while time < until:
            yield time
            time += self._rng.expovariate(rate)

    def state(self) -> tuple:
        """Opaque state snapshot (for trace record/replay)."""
        return self._rng.getstate()

    def restore(self, state: tuple) -> None:
        """Restore a snapshot taken by :meth:`state`."""
        self._rng.setstate(state)


class StreamFamily:
    """Factory for the named streams of one simulation run.

    Every call to :meth:`stream` with the same name returns the *same*
    object, so a component can re-fetch its stream without perturbing the
    draw sequence.
    """

    def __init__(self, root_seed: int) -> None:
        if not isinstance(root_seed, int):
            raise TypeError(f"root seed must be int, got {type(root_seed).__name__}")
        self.root_seed = root_seed
        self._streams: dict[str, RandomStream] = {}

    def stream(self, name: str) -> RandomStream:
        """Return the stream for ``name``, creating it on first use."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        stream = RandomStream(name, derive_seed(self.root_seed, name))
        self._streams[name] = stream
        return stream

    def spawn(self, replication: int) -> "StreamFamily":
        """A family for an independent replication of the same experiment."""
        return StreamFamily(derive_seed(self.root_seed, f"replication:{replication}"))


def normal_cdf(x: float, mean: float = 0.0, stdev: float = 1.0) -> float:
    """Standard normal CDF helper used by tests for distribution checks."""
    if stdev <= 0:
        raise ValueError("stdev must be positive")
    return 0.5 * (1.0 + math.erf((x - mean) / (stdev * math.sqrt(2.0))))
