"""The clock abstraction shared by the simulator and the live runtime.

The controller (:mod:`repro.core.controller`) never cares *what kind* of
time it schedules against — it only needs a monotone ``now``, cancellable
timers, and (optionally) a look at the next pending timer so the
install-burst coalescer knows how far it may run ahead.  :class:`Clock` is
that contract, expressed structurally so the discrete-event
:class:`~repro.sim.engine.Engine` satisfies it unchanged and the wall-clock
scheduler of :mod:`repro.live` can slot in without forking any controller
code.

Implementations:

* :class:`repro.sim.engine.Engine` — virtual time; ``run_until`` advances
  the clock to each event's timestamp instantly.  This is both the
  simulator's clock and the *mocked* clock of the live runtime's parity
  tests (feed a recorded trace through :class:`repro.live.LiveRuntime`
  with an ``Engine`` as its clock and the run is bit-identical to the
  simulator).
* :class:`repro.live.WallClock` — real time; an asyncio task dispatches
  events when ``time.monotonic()`` catches up with their timestamps.

Contract notes beyond the method signatures:

* ``now`` never goes backwards.
* ``run_end`` is the end of the synchronous dispatch segment in progress
  (``Engine.run_until``), or None when there is no such bound.  A wall
  clock has no segment bound, so it reports None — which disables the
  controller's install-burst coalescing, exactly right for live traffic
  whose future arrivals are unknowable.
* ``schedule_at`` with a timestamp in the past is an *error* for virtual
  time (the schedule is known, so it is a bug) but merely *late* for real
  time (a wall clock fires overdue timers immediately, like the kernel).
"""

from __future__ import annotations

from typing import Any, Callable, Protocol, runtime_checkable

from repro.sim.events import Event


@runtime_checkable
class Clock(Protocol):
    """Structural interface of a time source the controller can run on."""

    now: float
    """Current time in seconds (monotone non-decreasing)."""

    run_end: float | None
    """End of the synchronous dispatch segment in progress, or None."""

    events_dispatched: int
    """Number of events dispatched so far (for SimulationResult parity)."""

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        ...

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to fire at absolute time ``time``."""
        ...

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (idempotent)."""
        ...

    def peek_time(self) -> float | None:
        """Time of the next live event, or None if nothing is pending."""
        ...
