"""Terminal (ASCII) line charts for figure panels.

The paper's figures are multi-series line plots; this module renders a
:class:`~repro.experiments.figures.Panel` as a character grid so the shape
of every reproduced figure is visible straight from the CLI or pytest
output — no plotting dependency required.

Each series gets a marker character (mirroring the paper's +, x, box,
diamond point styles); overlapping points show the later series' marker.
"""

from __future__ import annotations

#: Marker characters assigned to series in order (the paper uses +, x for
#: the transaction-favouring algorithms and box/diamond for the
#: update-favouring ones; we keep that spirit).
MARKERS = "+x#o*@%&"


def render_chart(
    columns: dict[str, list[tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    x_label: str = "x",
    title: str | None = None,
) -> str:
    """Render named (x, y) series as an ASCII chart.

    Args:
        columns: Mapping series name -> list of (x, y) points.
        width: Plot-area width in characters (>= 8).
        height: Plot-area height in rows (>= 4).
        x_label: Label printed under the x axis.
        title: Optional heading line.

    Returns:
        A multi-line string: title, legend, y-axis-labelled grid, x axis.
    """
    if width < 8 or height < 4:
        raise ValueError(f"chart too small: {width}x{height}")
    if not columns:
        raise ValueError("no series to plot")

    points = [point for series in columns.values() for point in series]
    if not points:
        raise ValueError("series contain no points")
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    if x_high == x_low:
        x_high = x_low + 1.0
    if y_high == y_low:
        y_high = y_low + 1.0

    grid = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, marker: str) -> None:
        col = round((x - x_low) / (x_high - x_low) * (width - 1))
        row = round((y - y_low) / (y_high - y_low) * (height - 1))
        grid[height - 1 - row][col] = marker

    legend_parts = []
    for index, (name, series) in enumerate(columns.items()):
        marker = MARKERS[index % len(MARKERS)]
        legend_parts.append(f"{marker}={name}")
        for x, y in series:
            place(x, y, marker)

    y_top = f"{y_high:.3g}"
    y_bottom = f"{y_low:.3g}"
    label_width = max(len(y_top), len(y_bottom))
    lines = []
    if title:
        lines.append(title)
    lines.append("legend: " + "  ".join(legend_parts))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = y_top.rjust(label_width)
        elif row_index == height - 1:
            label = y_bottom.rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    axis = " " * label_width + " +" + "-" * width
    lines.append(axis)
    x_left = f"{x_low:.3g}"
    x_right = f"{x_high:.3g}"
    gap = width - len(x_left) - len(x_right)
    lines.append(
        " " * (label_width + 2) + x_left + " " * max(1, gap) + x_right
    )
    lines.append(" " * (label_width + 2) + x_label.center(width))
    return "\n".join(lines)


def render_panel(panel, width: int = 60, height: int = 16) -> str:
    """Render a figure :class:`~repro.experiments.figures.Panel` as ASCII."""
    return render_chart(
        panel.columns,
        width=width,
        height=height,
        x_label=panel.x_label,
        title=panel.name,
    )


def render_figure(figure, width: int = 60, height: int = 16) -> str:
    """Render every panel of a figure, separated by blank lines."""
    charts = [render_panel(panel, width, height) for panel in figure.panels]
    return "\n\n".join(charts)
