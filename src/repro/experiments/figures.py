"""One experiment definition per paper figure (3-16), plus ablations.

Each builder returns a :class:`Figure`: the data series the paper plots
(as text tables) and a list of *shape checks* — the qualitative claims the
paper makes about that figure (who wins, what rises, where the gap is).
The benchmark suite runs every builder, prints the tables, and asserts the
checks, so ``pytest benchmarks/`` regenerates and validates the entire
evaluation section.

Sweeps shared between figures (the baseline lambda_t sweep feeds Figures
3, 4, 5, 6, and the no-abort side of 12/13) are cached per scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.config import (
    QueueDiscipline,
    SimulationConfig,
    StaleReadAction,
    StalenessPolicy,
)
from repro.core.algorithms.registry import PAPER_ALGORITHMS
from repro.core.simulator import run_simulation
from repro.experiments.cache import ResultCache
from repro.experiments.sweeps import (
    ExperimentScale,
    Sweep,
    map_cells,
    run_sweep,
    scaled_baseline,
)
from repro.metrics.report import format_table
from repro.metrics.results import SimulationResult

#: The transaction-arrival grid of the lambda_t sweeps (paper x-axis 0-25).
LAMBDA_T_GRID = (1.0, 5.0, 10.0, 15.0, 20.0, 25.0)

#: Figure 16 sweeps lambda_t over 0-16 under UU.
LAMBDA_T_GRID_UU = (2.0, 4.0, 8.0, 12.0, 16.0)


@dataclass(frozen=True)
class Check:
    """One qualitative claim from the paper, evaluated on our data."""

    name: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        suffix = f" ({self.detail})" if self.detail else ""
        return f"[{mark}] {self.name}{suffix}"


@dataclass
class Panel:
    """One plotted panel: a metric versus the swept parameter."""

    name: str
    x_label: str
    columns: dict[str, list[tuple[float, float]]]

    def to_table(self) -> str:
        xs = [x for x, _ in next(iter(self.columns.values()))]
        headers = [self.x_label] + list(self.columns)
        rows = []
        for index, x in enumerate(xs):
            row: list[object] = [x]
            for series in self.columns.values():
                row.append(series[index][1])
            rows.append(row)
        return format_table(headers, rows, title=self.name)

    def to_csv(self) -> str:
        """The panel's data as CSV (header row, one row per x)."""
        lines = [",".join([self.x_label, *self.columns])]
        xs = [x for x, _ in next(iter(self.columns.values()))]
        for index, x in enumerate(xs):
            cells = [repr(x)]
            cells.extend(repr(series[index][1]) for series in self.columns.values())
            lines.append(",".join(cells))
        return "\n".join(lines)


@dataclass
class Figure:
    """A reproduced figure: its data panels and shape checks."""

    figure_id: str
    title: str
    panels: list[Panel] = field(default_factory=list)
    checks: list[Check] = field(default_factory=list)

    def render(self) -> str:
        parts = [f"=== Figure {self.figure_id}: {self.title} ==="]
        parts.extend(panel.to_table() for panel in self.panels)
        parts.extend(str(check) for check in self.checks)
        return "\n\n".join(parts)

    def failed_checks(self) -> list[Check]:
        return [check for check in self.checks if not check.passed]


# ---------------------------------------------------------------------------
# Shared sweeps (cached per scale)
# ---------------------------------------------------------------------------
_SWEEP_CACHE: dict[tuple[str, str], Sweep] = {}

#: The most recent persistent cache handed to a builder.  Kept so
#: :func:`clear_sweep_cache` can purge the on-disk store along with the
#: in-process memo (tests and the CLI rely on one call wiping both).
_ACTIVE_DISK_CACHE: ResultCache | None = None


def _note_disk_cache(cache: ResultCache | None) -> None:
    global _ACTIVE_DISK_CACHE
    if cache is not None:
        _ACTIVE_DISK_CACHE = cache


def _cached(scale: ExperimentScale, name: str, build: Callable[[], Sweep]) -> Sweep:
    key = (scale.label, name)
    sweep = _SWEEP_CACHE.get(key)
    if sweep is None:
        sweep = build()
        _SWEEP_CACHE[key] = sweep
    return sweep


def clear_sweep_cache() -> None:
    """Drop all cached sweeps, in memory and on disk.

    Clears the per-process memo and, if a persistent :class:`ResultCache`
    has been used this process, deletes its stored entries too (tests use
    this for isolation).
    """
    _SWEEP_CACHE.clear()
    if _ACTIVE_DISK_CACHE is not None:
        _ACTIVE_DISK_CACHE.clear()


def _sim_cell(args: tuple) -> SimulationResult:
    """Worker entry for one ablation cell (picklable)."""
    config, name, kwargs = args
    return run_simulation(config, name, **kwargs)


def _transformed_sim_cell(args: tuple) -> SimulationResult:
    """Worker for the view-complexity ablation: installs run through an
    exponentially-weighted average transformer on both view classes."""
    from repro.core.simulator import Simulation
    from repro.db.objects import ObjectClass
    from repro.db.transforms import exponential_average

    config, name, kwargs = args
    sim = Simulation(config, name, **kwargs)
    sim.database.set_transformer(ObjectClass.VIEW_LOW, exponential_average(0.3))
    sim.database.set_transformer(ObjectClass.VIEW_HIGH, exponential_average(0.3))
    return sim.run()


def _run_cells(
    worker: Callable,
    cells: Sequence[tuple],
    workers: int = 1,
    cache: ResultCache | None = None,
    extra: str = "",
) -> list[SimulationResult]:
    """Run ``(config, algorithm, kwargs)`` cells through the cache + pool.

    The ablation builders' inline loops all funnel through here so they
    get the same parallel fan-out and persistent memoization as
    :func:`~repro.experiments.sweeps.run_sweep`.  ``extra`` tags cells
    whose behaviour the config alone cannot address (e.g. an installed
    update transformer) so they never collide with plain runs.
    """
    _note_disk_cache(cache)
    results: list[SimulationResult | None] = [None] * len(cells)
    if cache is not None:
        misses = []
        for position, (config, name, kwargs) in enumerate(cells):
            hit = cache.get(config, name, kwargs, extra)
            if hit is not None:
                results[position] = hit
            else:
                misses.append(position)
    else:
        misses = list(range(len(cells)))
    if misses:
        computed = map_cells(worker, [cells[i] for i in misses], workers)
        for position, result in zip(misses, computed):
            results[position] = result
            if cache is not None:
                config, name, kwargs = cells[position]
                cache.put(config, name, result, kwargs, extra)
    return results


def _lambda_t_sweep(
    scale: ExperimentScale,
    name: str,
    mutate: Callable[[SimulationConfig], SimulationConfig] | None = None,
    grid: Sequence[float] = LAMBDA_T_GRID,
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    workers: int = 1,
    cache: ResultCache | None = None,
) -> Sweep:
    _note_disk_cache(cache)

    def build() -> Sweep:
        base = scaled_baseline(scale)
        if mutate is not None:
            base = mutate(base)
        return run_sweep(
            base,
            "lambda_t",
            grid,
            lambda config, x: config.with_transactions(arrival_rate=x),
            algorithms,
            workers=workers,
            cache=cache,
        )

    return _cached(scale, name, build)


def baseline_sweep(
    scale: ExperimentScale, workers: int = 1, cache: ResultCache | None = None
) -> Sweep:
    """MA, no stale aborts, FIFO — feeds Figures 3, 4, 5, 6, 11, 12, 13."""
    return _lambda_t_sweep(scale, "baseline", workers=workers, cache=cache)


def lifo_sweep(
    scale: ExperimentScale, workers: int = 1, cache: ResultCache | None = None
) -> Sweep:
    """The baseline sweep with LIFO queue service (Figure 11)."""
    return _lambda_t_sweep(
        scale,
        "lifo",
        lambda config: config.with_system(queue_discipline=QueueDiscipline.LIFO),
        workers=workers,
        cache=cache,
    )


def abort_sweep(
    scale: ExperimentScale, workers: int = 1, cache: ResultCache | None = None
) -> Sweep:
    """MA with abort-on-stale-read (Figures 12, 13, 14)."""
    return _lambda_t_sweep(
        scale,
        "abort",
        lambda config: config.with_transactions(
            stale_read_action=StaleReadAction.ABORT
        ),
        workers=workers,
        cache=cache,
    )


def uu_sweep(
    scale: ExperimentScale, workers: int = 1, cache: ResultCache | None = None
) -> Sweep:
    """UU staleness, no aborts (Figure 16)."""
    return _lambda_t_sweep(
        scale,
        "uu",
        lambda config: config.replace(staleness=StalenessPolicy.UNAPPLIED_UPDATE),
        grid=LAMBDA_T_GRID_UU,
        workers=workers,
        cache=cache,
    )


def _panel(sweep: Sweep, metric: str, name: str) -> Panel:
    return Panel(
        name=name,
        x_label=sweep.x_label,
        columns={alg: sweep.series(alg, metric) for alg in sweep.algorithms},
    )


def _ratio_panel(num: Sweep, den: Sweep, metric: str, name: str) -> Panel:
    columns = {}
    for alg in num.algorithms:
        numerator = num.series(alg, metric)
        denominator = den.series(alg, metric)
        columns[alg] = [
            (x, n / max(d, 1e-9))
            for (x, n), (_, d) in zip(numerator, denominator)
        ]
    return Panel(name=name, x_label=num.x_label, columns=columns)


def _check(name: str, passed: bool, detail: str = "") -> Check:
    return Check(name=name, passed=bool(passed), detail=detail)


def _monotone_increasing(values: Sequence[float], slack: float = 0.02) -> bool:
    return all(b >= a - slack for a, b in zip(values, values[1:]))


# ---------------------------------------------------------------------------
# Figures 3-6: the baseline lambda_t sweep
# ---------------------------------------------------------------------------
def figure_3(
    scale: ExperimentScale, workers: int = 1, cache: ResultCache | None = None
) -> Figure:
    """CPU time split between transactions and updates vs lambda_t."""
    sweep = baseline_sweep(scale, workers, cache)
    uf_rho_u = sweep.values("UF", "rho_updates")
    tf_rho_u = sweep.values("TF", "rho_updates")
    checks = [
        _check(
            "UF spends a constant CPU share on updates regardless of load",
            max(uf_rho_u) - min(uf_rho_u) < 0.05,
            f"range {min(uf_rho_u):.3f}..{max(uf_rho_u):.3f}",
        ),
        _check(
            "installing the full stream takes about one fifth of the CPU",
            0.12 <= uf_rho_u[0] <= 0.27,
            f"rho_u at lambda_t=1 is {uf_rho_u[0]:.3f}",
        ),
        _check(
            "TF's update share collapses as transaction load grows",
            tf_rho_u[-1] < tf_rho_u[0] * 0.6,
            f"{tf_rho_u[0]:.3f} -> {tf_rho_u[-1]:.3f}",
        ),
        _check(
            "total utilization saturates near 1 under overload (all algorithms)",
            all(
                0.9 <= sweep.result(LAMBDA_T_GRID[-1], alg).rho_total <= 1.0001
                for alg in sweep.algorithms
            ),
        ),
    ]
    return Figure(
        "3",
        "Effects of lambda_t on transaction/update CPU mix",
        [
            _panel(sweep, "rho_transactions", "(a) rho_t: CPU fraction on transactions"),
            _panel(sweep, "rho_updates", "(b) rho_u: CPU fraction on updates"),
        ],
        checks,
    )


def figure_4(
    scale: ExperimentScale, workers: int = 1, cache: ResultCache | None = None
) -> Figure:
    """Missed deadlines and average value vs lambda_t."""
    sweep = baseline_sweep(scale, workers, cache)
    last = LAMBDA_T_GRID[-1]
    checks = [
        _check(
            "missed-deadline fraction grows with load for every algorithm",
            all(
                _monotone_increasing(sweep.values(alg, "p_md"))
                for alg in sweep.algorithms
            ),
        ),
        _check(
            "TF and OD miss fewer deadlines than UF and SU under overload",
            max(
                sweep.result(last, "TF").p_md, sweep.result(last, "OD").p_md
            )
            < min(sweep.result(last, "UF").p_md, sweep.result(last, "SU").p_md),
        ),
        _check(
            "average value rises with load despite more misses",
            all(
                sweep.values(alg, "average_value")[-1]
                > sweep.values(alg, "average_value")[1]
                for alg in sweep.algorithms
            ),
        ),
        _check(
            "TF and OD return the most value",
            min(
                sweep.result(last, "TF").average_value,
                sweep.result(last, "OD").average_value,
            )
            > max(
                sweep.result(last, "UF").average_value,
                sweep.result(last, "SU").average_value,
            )
            - 0.05,
        ),
    ]
    return Figure(
        "4",
        "Effects of lambda_t on missed deadlines and average value",
        [
            _panel(sweep, "p_md", "(a) p_MD: fraction of tardy transactions"),
            _panel(sweep, "average_value", "(b) AV: value per second"),
        ],
        checks,
    )


def figure_5(
    scale: ExperimentScale, workers: int = 1, cache: ResultCache | None = None
) -> Figure:
    """Stale fractions of the two view partitions vs lambda_t."""
    sweep = baseline_sweep(scale, workers, cache)
    last = LAMBDA_T_GRID[-1]
    checks = [
        _check(
            "UF keeps staleness under ~10% at every load",
            all(y < 0.15 for y in sweep.values("UF", "fold_low"))
            and all(y < 0.15 for y in sweep.values("UF", "fold_high")),
        ),
        _check(
            "TF lets most of the database go stale under heavy load",
            sweep.result(last, "TF").fold_low > 0.8
            and sweep.result(last, "TF").fold_high > 0.8,
        ),
        _check(
            "SU keeps high-importance data fresh but not low-importance",
            sweep.result(last, "SU").fold_high < 0.15
            and sweep.result(last, "SU").fold_low > 0.5,
        ),
        _check(
            "OD is slightly fresher than TF (on-demand installs help)",
            sweep.result(last, "OD").fold_low
            <= sweep.result(last, "TF").fold_low + 0.02,
        ),
    ]
    return Figure(
        "5",
        "Effects of lambda_t on fold (stale fractions)",
        [
            _panel(sweep, "fold_low", "(a) fold_l: low-importance stale fraction"),
            _panel(sweep, "fold_high", "(b) fold_h: high-importance stale fraction"),
        ],
        checks,
    )


def figure_6(
    scale: ExperimentScale, workers: int = 1, cache: ResultCache | None = None
) -> Figure:
    """Fresh-and-timely success rates vs lambda_t."""
    sweep = baseline_sweep(scale, workers, cache)
    checks = [
        _check(
            "OD has the best p_success over the whole load range",
            all(
                sweep.result(x, "OD").p_success
                >= max(
                    sweep.result(x, alg).p_success
                    for alg in sweep.algorithms
                    if alg != "OD"
                )
                - 0.03
                for x in LAMBDA_T_GRID
            ),
        ),
        _check(
            "TF has the worst p_success under load (stale reads dominate)",
            all(
                sweep.result(x, "TF").p_success
                <= min(
                    sweep.result(x, alg).p_success
                    for alg in sweep.algorithms
                    if alg != "TF"
                )
                + 0.03
                for x in LAMBDA_T_GRID[2:]
            ),
        ),
        _check(
            "for UF and OD, meeting the deadline almost implies fresh reads",
            sweep.result(LAMBDA_T_GRID[-1], "UF").p_suc_nontardy > 0.75
            and sweep.result(LAMBDA_T_GRID[-1], "OD").p_suc_nontardy > 0.75,
        ),
        _check(
            "for TF, many timely transactions still read stale data",
            sweep.result(LAMBDA_T_GRID[-1], "TF").p_suc_nontardy < 0.4,
        ),
    ]
    return Figure(
        "6",
        "Effects of lambda_t on p_success and p_suc|nontardy",
        [
            _panel(sweep, "p_success", "(a) p_success: timely AND fresh"),
            _panel(sweep, "p_suc_nontardy", "(b) p_suc|nontardy"),
        ],
        checks,
    )


# ---------------------------------------------------------------------------
# Figures 7-8: update cost sensitivity
# ---------------------------------------------------------------------------
def figure_7(
    scale: ExperimentScale, workers: int = 1, cache: ResultCache | None = None
) -> Figure:
    """AV vs the install cost x_update and the queue-insert cost x_queue."""
    _note_disk_cache(cache)
    base = scaled_baseline(scale)
    update_sweep = _cached(
        scale,
        "xupdate",
        lambda: run_sweep(
            base,
            "x_update",
            (4000.0, 10000.0, 20000.0, 35000.0, 50000.0),
            lambda config, x: config.with_system(x_update=int(x)),
            PAPER_ALGORITHMS,
            workers=workers,
            cache=cache,
        ),
    )
    queue_sweep = _cached(
        scale,
        "xqueue",
        lambda: run_sweep(
            base,
            "x_queue",
            (0.0, 1000.0, 2500.0, 5000.0),
            lambda config, x: config.with_system(x_queue=int(x)),
            PAPER_ALGORITHMS,
            workers=workers,
            cache=cache,
        ),
    )

    def drop(sweep: Sweep, alg: str) -> float:
        values = sweep.values(alg, "average_value")
        return values[0] - values[-1]

    checks = [
        _check(
            "UF and SU lose value sharply as updates get heavier",
            drop(update_sweep, "UF") > 1.0 and drop(update_sweep, "SU") > 0.5,
            f"UF drop {drop(update_sweep, 'UF'):.2f}, SU drop {drop(update_sweep, 'SU'):.2f}",
        ),
        _check(
            "TF and OD barely notice heavier updates",
            abs(drop(update_sweep, "TF")) < 0.8 and abs(drop(update_sweep, "OD")) < 0.8,
            f"TF drop {drop(update_sweep, 'TF'):.2f}, OD drop {drop(update_sweep, 'OD'):.2f}",
        ),
        _check(
            "queue management costs hurt the queue-using algorithms",
            drop(queue_sweep, "TF") > 0.5 and drop(queue_sweep, "OD") > 0.5,
            f"TF drop {drop(queue_sweep, 'TF'):.2f}, OD drop {drop(queue_sweep, 'OD'):.2f}",
        ),
        _check(
            "UF, which has no update queue, is immune to x_queue",
            abs(drop(queue_sweep, "UF")) < 0.4,
            f"UF drop {drop(queue_sweep, 'UF'):.2f}",
        ),
    ]
    return Figure(
        "7",
        "Effects of x_update and x_queue on AV",
        [
            _panel(update_sweep, "average_value", "(a) AV vs x_update"),
            _panel(queue_sweep, "average_value", "(b) AV vs x_queue"),
        ],
        checks,
    )


def figure_8(
    scale: ExperimentScale, workers: int = 1, cache: ResultCache | None = None
) -> Figure:
    """AV vs the queue scan cost x_scan (only OD scans)."""
    _note_disk_cache(cache)
    base = scaled_baseline(scale)
    sweep = _cached(
        scale,
        "xscan",
        lambda: run_sweep(
            base,
            "x_scan",
            (0.0, 2000.0, 5000.0, 10000.0),
            lambda config, x: config.with_system(x_scan=int(x)),
            PAPER_ALGORITHMS,
            workers=workers,
            cache=cache,
        ),
    )
    od = sweep.values("OD", "average_value")
    tf = sweep.values("TF", "average_value")
    checks = [
        _check(
            "scan cost degrades OD",
            od[-1] < od[0] - 0.3,
            f"OD AV {od[0]:.2f} -> {od[-1]:.2f}",
        ),
        _check(
            "algorithms that never scan are unaffected",
            abs(tf[-1] - tf[0]) < 0.4,
            f"TF AV {tf[0]:.2f} -> {tf[-1]:.2f}",
        ),
        _check(
            "OD's loss grows monotonically with the scan constant",
            all(b <= a + 0.2 for a, b in zip(od, od[1:])),
            f"OD AV series {[round(v, 2) for v in od]}",
        ),
    ]
    return Figure(
        "8",
        "Effects of x_scan on AV",
        [_panel(sweep, "average_value", "AV vs x_scan")],
        checks,
    )


# ---------------------------------------------------------------------------
# Figure 9: update arrival rate
# ---------------------------------------------------------------------------
def figure_9(
    scale: ExperimentScale, workers: int = 1, cache: ResultCache | None = None
) -> Figure:
    """p_success and AV vs the update arrival rate lambda_u."""
    _note_disk_cache(cache)
    base = scaled_baseline(scale)
    sweep = _cached(
        scale,
        "lambda_u",
        lambda: run_sweep(
            base,
            "lambda_u",
            (200.0, 300.0, 400.0, 500.0, 600.0),
            lambda config, x: config.with_updates(arrival_rate=x),
            PAPER_ALGORITHMS,
            workers=workers,
            cache=cache,
        ),
    )
    uf_av = sweep.values("UF", "average_value")
    od_av = sweep.values("OD", "average_value")
    od_ps = sweep.values("OD", "p_success")
    checks = [
        _check(
            "UF returns less value as the update rate rises",
            uf_av[-1] < uf_av[0] - 0.3,
            f"UF AV {uf_av[0]:.2f} -> {uf_av[-1]:.2f}",
        ),
        _check(
            "OD maintains its value across the whole update-rate range",
            abs(od_av[-1] - od_av[0]) < 0.6,
            f"OD AV {od_av[0]:.2f} -> {od_av[-1]:.2f}",
        ),
        _check(
            "OD's success rate improves with more updates (fresher data)",
            od_ps[-1] > od_ps[0],
            f"OD p_success {od_ps[0]:.3f} -> {od_ps[-1]:.3f}",
        ),
        _check(
            "OD has the best p_success at the highest update rate",
            sweep.result(600.0, "OD").p_success
            >= max(
                sweep.result(600.0, alg).p_success
                for alg in sweep.algorithms
                if alg != "OD"
            )
            - 0.02,
        ),
    ]
    return Figure(
        "9",
        "Effects of lambda_u on performance",
        [
            _panel(sweep, "p_success", "(a) p_success vs lambda_u"),
            _panel(sweep, "average_value", "(b) AV vs lambda_u"),
        ],
        checks,
    )


# ---------------------------------------------------------------------------
# Figure 10: maximum age
# ---------------------------------------------------------------------------
def figure_10(
    scale: ExperimentScale, workers: int = 1, cache: ResultCache | None = None
) -> Figure:
    """AV vs alpha, with and without rescaling the view size."""
    _note_disk_cache(cache)
    base = scaled_baseline(scale)
    alphas = (3.0, 5.0, 7.0, 9.0)
    alpha_sweep = _cached(
        scale,
        "alpha",
        lambda: run_sweep(
            base,
            "alpha",
            alphas,
            lambda config, x: config.with_transactions(max_age=x),
            PAPER_ALGORITHMS,
            workers=workers,
            cache=cache,
        ),
    )

    def with_scaled_views(config: SimulationConfig, x: float) -> SimulationConfig:
        # Hold lambda_u * alpha / (N_l + N_h) constant: double alpha, double
        # the view, so the per-object refresh opportunity stays fixed.
        n = max(1, round(500 * x / 7.0))
        return config.with_transactions(max_age=x).with_updates(n_low=n, n_high=n)

    scaled_sweep = _cached(
        scale,
        "alpha-scaled",
        lambda: run_sweep(
            base,
            "alpha",
            alphas,
            with_scaled_views,
            PAPER_ALGORITHMS,
            workers=workers,
            cache=cache,
        ),
    )
    checks = []
    for alg in ("TF", "OD"):
        fixed = alpha_sweep.values(alg, "average_value")
        checks.append(
            _check(
                f"{alg}: AV does not change much with alpha (never drops "
                "materially as shelf life grows)",
                fixed[-1] >= fixed[0] - 0.15,
                f"AV {fixed[0]:.2f} -> {fixed[-1]:.2f}",
            )
        )
    spread = []
    for alg in PAPER_ALGORITHMS:
        values = scaled_sweep.values(alg, "average_value")
        spread.append(max(values) - min(values))
    checks.append(
        _check(
            "with the update density held, alpha itself hardly matters",
            max(spread) < 2.5,
            f"max AV spread across alpha: {max(spread):.2f}",
        )
    )
    return Figure(
        "10",
        "Effects of alpha on AV",
        [
            _panel(alpha_sweep, "average_value", "(a) AV vs alpha (N fixed)"),
            _panel(scaled_sweep, "average_value", "(b) AV vs alpha (N scaled with alpha)"),
        ],
        checks,
    )


# ---------------------------------------------------------------------------
# Figure 11: FIFO vs LIFO
# ---------------------------------------------------------------------------
def figure_11(
    scale: ExperimentScale, workers: int = 1, cache: ResultCache | None = None
) -> Figure:
    """FIFO/LIFO ratios of staleness and success vs lambda_t."""
    fifo = baseline_sweep(scale, workers, cache)
    lifo = lifo_sweep(scale, workers, cache)
    fold_ratio = _ratio_panel(
        fifo, lifo, "fold_low", "(a) fold_l(FIFO) / fold_l(LIFO)"
    )
    success_ratio = _ratio_panel(
        fifo, lifo, "p_success", "(b) p_success(FIFO) / p_success(LIFO)"
    )
    # The FIFO/LIFO gap matters where the queue is contended but not yet
    # fully saturated (at extreme load both disciplines read ~everything
    # stale and the ratios collapse to 1) — the paper's mid-range.
    mid = LAMBDA_T_GRID[2]
    tf_fold_mid = dict(fold_ratio.columns["TF"])[mid]
    uf_fold_ratios = [r for _, r in fold_ratio.columns["UF"]]
    tf_success_mid = dict(success_ratio.columns["TF"])[mid]
    tf_fold_all = [r for _, r in fold_ratio.columns["TF"]]
    checks = [
        _check(
            "FIFO keeps the view markedly staler than LIFO for TF at mid load",
            tf_fold_mid > 1.1,
            f"fold ratio at lambda_t={mid:g}: {tf_fold_mid:.2f}",
        ),
        _check(
            "LIFO is never fresher-than-FIFO by less than parity (ratio >= ~1)",
            all(r > 0.9 for r in tf_fold_all),
            f"TF fold ratios: {[round(r, 2) for r in tf_fold_all]}",
        ),
        _check(
            "UF has no queue, so the discipline cannot matter",
            all(abs(r - 1.0) < 0.05 for r in uf_fold_ratios),
            f"UF ratios: {[round(r, 2) for r in uf_fold_ratios]}",
        ),
        _check(
            "FIFO lowers TF's success rate at mid load",
            tf_success_mid < 0.9,
            f"success ratio at lambda_t={mid:g}: {tf_success_mid:.2f}",
        ),
    ]
    return Figure(
        "11",
        "Effects of the update-queue discipline",
        [fold_ratio, success_ratio],
        checks,
    )


# ---------------------------------------------------------------------------
# Figures 12-14: MA with abort-on-stale
# ---------------------------------------------------------------------------
def figure_12(
    scale: ExperimentScale, workers: int = 1, cache: ResultCache | None = None
) -> Figure:
    """High-importance staleness when stale reads abort transactions."""
    aborting = abort_sweep(scale, workers, cache)
    plain = baseline_sweep(scale, workers, cache)
    last = LAMBDA_T_GRID[-1]
    tf_ratio = aborting.result(last, "TF").fold_high / max(
        plain.result(last, "TF").fold_high, 1e-9
    )
    checks = [
        _check(
            "aborting on stale reads makes TF's data dramatically fresher",
            tf_ratio < 0.6,
            f"fold_h(TF) abort/no-abort at lambda_t={last:g}: {tf_ratio:.2f}",
        ),
        _check(
            "TF's high-importance staleness stays far below saturation once "
            "aborts free CPU time",
            aborting.result(last, "TF").fold_high < 0.6,
            f"fold_h={aborting.result(last, 'TF').fold_high:.2f}",
        ),
        _check(
            "UF is unaffected (it never read stale data to begin with)",
            abs(
                aborting.result(last, "UF").fold_high
                - plain.result(last, "UF").fold_high
            )
            < 0.05,
        ),
    ]
    return Figure(
        "12",
        "Effects of lambda_t on fold (MA with abortion)",
        [
            _panel(aborting, "fold_high", "(a) fold_h with stale-abort"),
            _ratio_panel(
                aborting, plain, "fold_high", "(b) fold_h(abort) / fold_h(no abort)"
            ),
        ],
        checks,
    )


def figure_13(
    scale: ExperimentScale, workers: int = 1, cache: ResultCache | None = None
) -> Figure:
    """Average value when stale reads abort transactions."""
    aborting = abort_sweep(scale, workers, cache)
    plain = baseline_sweep(scale, workers, cache)
    last = LAMBDA_T_GRID[-1]
    od_av = aborting.result(last, "OD").average_value
    checks = [
        _check(
            "OD is the clear winner on value under stale-aborts",
            od_av
            >= max(
                aborting.result(last, alg).average_value
                for alg in aborting.algorithms
                if alg != "OD"
            ),
            f"OD AV {od_av:.2f}",
        ),
        _check(
            "TF is hurt the most by the aborts (largest relative loss)",
            (
                aborting.result(last, "TF").average_value
                / max(plain.result(last, "TF").average_value, 1e-9)
            )
            <= min(
                aborting.result(last, alg).average_value
                / max(plain.result(last, alg).average_value, 1e-9)
                for alg in aborting.algorithms
                if alg != "TF"
            )
            + 0.02,
        ),
        _check(
            "SU, the hybrid, now beats both of its parents (TF and UF)",
            aborting.result(last, "SU").average_value
            > max(
                aborting.result(last, "TF").average_value,
                aborting.result(last, "UF").average_value,
            )
            - 0.05,
        ),
    ]
    return Figure(
        "13",
        "Effects of lambda_t on AV (MA with abortion)",
        [
            _panel(aborting, "average_value", "(a) AV with stale-abort"),
            _ratio_panel(
                aborting, plain, "average_value", "(b) AV(abort) / AV(no abort)"
            ),
        ],
        checks,
    )


def figure_14(
    scale: ExperimentScale, workers: int = 1, cache: ResultCache | None = None
) -> Figure:
    """Success rate when stale reads abort transactions."""
    aborting = abort_sweep(scale, workers, cache)
    last = LAMBDA_T_GRID[-1]
    checks = [
        _check(
            "OD still wins on p_success",
            all(
                aborting.result(x, "OD").p_success
                >= max(
                    aborting.result(x, alg).p_success
                    for alg in aborting.algorithms
                    if alg != "OD"
                )
                - 0.03
                for x in LAMBDA_T_GRID
            ),
        ),
        _check(
            "TF recovers to second place (low miss rate + fresher data)",
            aborting.result(last, "TF").p_success
            >= max(
                aborting.result(last, "UF").p_success,
                aborting.result(last, "SU").p_success,
            )
            - 0.05,
            f"TF {aborting.result(last, 'TF').p_success:.3f} vs "
            f"UF {aborting.result(last, 'UF').p_success:.3f}, "
            f"SU {aborting.result(last, 'SU').p_success:.3f}",
        ),
    ]
    return Figure(
        "14",
        "Effects of lambda_t on p_success (MA with abortion)",
        [_panel(aborting, "p_success", "p_success with stale-abort")],
        checks,
    )


# ---------------------------------------------------------------------------
# Figure 15: where in the transaction the view reads happen
# ---------------------------------------------------------------------------
def figure_15(
    scale: ExperimentScale, workers: int = 1, cache: ResultCache | None = None
) -> Figure:
    """AV vs p_view (fraction of work done before the reads), with aborts."""
    _note_disk_cache(cache)
    base = scaled_baseline(scale).with_transactions(
        stale_read_action=StaleReadAction.ABORT
    )
    sweep = _cached(
        scale,
        "pview",
        lambda: run_sweep(
            base,
            "p_view",
            (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
            lambda config, x: config.with_transactions(p_view=x),
            PAPER_ALGORITHMS,
            workers=workers,
            cache=cache,
        ),
    )

    def loss(alg: str) -> float:
        values = sweep.values(alg, "average_value")
        return values[0] - values[-1]

    checks = [
        _check(
            "every algorithm loses value as reads move later in the transaction",
            all(loss(alg) > 0 for alg in sweep.algorithms),
            ", ".join(f"{alg} -{loss(alg):.2f}" for alg in sweep.algorithms),
        ),
        _check(
            "TF and SU, which read stale most often, degrade the most",
            min(loss("TF"), loss("SU")) > min(loss("UF"), loss("OD")) - 0.05,
            f"TF {loss('TF'):.2f} SU {loss('SU'):.2f} vs "
            f"UF {loss('UF'):.2f} OD {loss('OD'):.2f}",
        ),
    ]
    return Figure(
        "15",
        "Effects of p_view on transactions (MA with abortion)",
        [_panel(sweep, "average_value", "AV vs p_view")],
        checks,
    )


# ---------------------------------------------------------------------------
# Figure 16: the UU staleness definition
# ---------------------------------------------------------------------------
def figure_16(
    scale: ExperimentScale, workers: int = 1, cache: ResultCache | None = None
) -> Figure:
    """p_success vs lambda_t under Unapplied-Update staleness."""
    sweep = uu_sweep(scale, workers, cache)
    last = LAMBDA_T_GRID_UU[-1]
    order = sorted(
        PAPER_ALGORITHMS,
        key=lambda alg: sweep.result(last, alg).p_success,
        reverse=True,
    )
    checks = [
        _check(
            "the ranking OD > UF > SU > TF carries over from MA to UU",
            tuple(order) == ("OD", "UF", "SU", "TF"),
            f"observed: {' > '.join(order)}",
        ),
        _check(
            "UF never lets an object turn stale under UU (no queue at all)",
            sweep.result(last, "UF").fold_low == 0.0
            and sweep.result(last, "UF").fold_high == 0.0,
        ),
    ]
    return Figure(
        "16",
        "Effects of lambda_t on p_success (UU)",
        [
            _panel(sweep, "p_success", "p_success under UU"),
            _panel(sweep, "fold_low", "fold_l under UU (context)"),
        ],
        checks,
    )


# ---------------------------------------------------------------------------
# Ablations (paper future-work items; see DESIGN.md)
# ---------------------------------------------------------------------------
def ablation_indexed_queue(
    scale: ExperimentScale, workers: int = 1, cache: ResultCache | None = None
) -> Figure:
    """OD with the hash-indexed update queue vs the linear-scan queue."""
    base = scaled_baseline(scale).with_system(x_scan=2000)
    grid = (5.0, 10.0, 15.0, 20.0)
    cells = []
    for x in grid:
        plain_config = base.with_transactions(arrival_rate=x)
        cells.append((plain_config, "OD", {}))
        cells.append((plain_config.with_system(indexed_update_queue=True),
                      "OD", {}))
    results = _run_cells(_sim_cell, cells, workers, cache)
    columns_av: dict[str, list[tuple[float, float]]] = {"OD": [], "OD-IDX": []}
    columns_ps: dict[str, list[tuple[float, float]]] = {"OD": [], "OD-IDX": []}
    for x, plain, indexed in zip(grid, results[::2], results[1::2]):
        columns_av["OD"].append((x, plain.average_value))
        columns_av["OD-IDX"].append((x, indexed.average_value))
        columns_ps["OD"].append((x, plain.p_success))
        columns_ps["OD-IDX"].append((x, indexed.p_success))
    av_gain = sum(
        idx - plain
        for (_, idx), (_, plain) in zip(columns_av["OD-IDX"], columns_av["OD"])
    )
    checks = [
        _check(
            "with a nonzero scan cost, the index never hurts value",
            av_gain > -0.3,
            f"total AV gain {av_gain:.2f}",
        ),
    ]
    return Figure(
        "A1",
        "Ablation: hash-indexed update queue for OD (x_scan=2000)",
        [
            Panel("AV: scan vs indexed", "lambda_t", columns_av),
            Panel("p_success: scan vs indexed", "lambda_t", columns_ps),
        ],
        checks,
    )


def ablation_fixed_fraction(
    scale: ExperimentScale, workers: int = 1, cache: ResultCache | None = None
) -> Figure:
    """FX: sweep the reserved update fraction at baseline load."""
    base = scaled_baseline(scale)
    fractions = (0.0, 0.1, 0.2, 0.3, 0.5)
    cells = [(base, "FX", {"fraction": fraction}) for fraction in fractions]
    results = _run_cells(_sim_cell, cells, workers, cache)
    columns: dict[str, list[tuple[float, float]]] = {
        "p_success": [],
        "AV": [],
        "fold_l": [],
    }
    for fraction, result in zip(fractions, results):
        columns["p_success"].append((fraction, result.p_success))
        columns["AV"].append((fraction, result.average_value))
        columns["fold_l"].append((fraction, result.fold_low))
    fold_values = [y for _, y in columns["fold_l"]]
    checks = [
        _check(
            "reserving CPU for updates keeps the view fresher",
            fold_values[-1] < fold_values[0],
            f"fold_l {fold_values[0]:.2f} -> {fold_values[-1]:.2f}",
        ),
    ]
    return Figure(
        "A2",
        "Ablation: fixed CPU fraction reserved for updates (FX)",
        [Panel("FX metrics vs reserved fraction", "fraction", columns)],
        checks,
    )


def ablation_split_queue(
    scale: ExperimentScale, workers: int = 1, cache: ResultCache | None = None
) -> Figure:
    """TF vs TF with per-importance queues (high served first)."""
    _note_disk_cache(cache)
    sweep = _cached(
        scale,
        "tf-split",
        lambda: run_sweep(
            scaled_baseline(scale),
            "lambda_t",
            (5.0, 10.0, 15.0, 20.0),
            lambda config, x: config.with_transactions(arrival_rate=x),
            ("TF", "TF-SPLIT"),
            workers=workers,
            cache=cache,
        ),
    )
    mid = 10.0
    checks = [
        _check(
            "serving high-importance updates first keeps fold_h lower than TF",
            sweep.result(mid, "TF-SPLIT").fold_high
            < sweep.result(mid, "TF").fold_high - 0.02,
            f"{sweep.result(mid, 'TF-SPLIT').fold_high:.3f} vs "
            f"{sweep.result(mid, 'TF').fold_high:.3f} at lambda_t={mid:g}",
        ),
    ]
    return Figure(
        "A3",
        "Ablation: TF with split importance queues",
        [
            _panel(sweep, "fold_high", "fold_h: TF vs TF-SPLIT"),
            _panel(sweep, "p_success", "p_success: TF vs TF-SPLIT"),
        ],
        checks,
    )


def ablation_preemption(
    scale: ExperimentScale, workers: int = 1, cache: ResultCache | None = None
) -> Figure:
    """Transaction-preemption (Table 3 'preemption') on vs off."""
    base = scaled_baseline(scale)
    grid = (5.0, 10.0, 15.0, 20.0)
    cells = []
    for x in grid:
        off_config = base.with_transactions(arrival_rate=x)
        cells.append((off_config, "TF", {}))
        cells.append((off_config.with_system(transaction_preemption=True),
                      "TF", {}))
    results = _run_cells(_sim_cell, cells, workers, cache)
    columns_md: dict[str, list[tuple[float, float]]] = {"TF": [], "TF+preempt": []}
    columns_av: dict[str, list[tuple[float, float]]] = {"TF": [], "TF+preempt": []}
    for x, off, on in zip(grid, results[::2], results[1::2]):
        columns_md["TF"].append((x, off.p_md))
        columns_md["TF+preempt"].append((x, on.p_md))
        columns_av["TF"].append((x, off.average_value))
        columns_av["TF+preempt"].append((x, on.average_value))
    av_diff = sum(
        on - off
        for (_, on), (_, off) in zip(columns_av["TF+preempt"], columns_av["TF"])
    ) / len(grid)
    checks = [
        _check(
            "value-density preemption does not lose value on average",
            av_diff > -0.5,
            f"mean AV difference {av_diff:+.2f}",
        ),
    ]
    return Figure(
        "A4",
        "Ablation: transaction preemption on/off (TF)",
        [
            Panel("p_MD", "lambda_t", columns_md),
            Panel("AV", "lambda_t", columns_av),
        ],
        checks,
    )


def ablation_view_complexity(
    scale: ExperimentScale, workers: int = 1, cache: ResultCache | None = None
) -> Figure:
    """View complexity (paper §2): heavier installs via update transformers.

    Every install runs an exponentially-weighted running average costing
    ``x_transform`` extra instructions.  Like Figure 7(a), the algorithms
    that install everything (UF) pay for complexity on the whole stream,
    while OD pays only for what transactions actually need.
    """
    base = scaled_baseline(scale)
    costs = (0.0, 10000.0, 20000.0, 40000.0)
    cells = [
        (base.with_system(x_transform=int(cost)), name, {})
        for cost in costs
        for name in ("UF", "OD")
    ]
    # The transformer is run-time state the config cannot express, so the
    # cells carry an ``extra`` tag to keep them apart from plain runs.
    results = _run_cells(
        _transformed_sim_cell, cells, workers, cache,
        extra="transformer:exponential_average(0.3)",
    )
    columns_av: dict[str, list[tuple[float, float]]] = {"UF": [], "OD": []}
    columns_fold: dict[str, list[tuple[float, float]]] = {"UF": [], "OD": []}
    for (config, name, _), result in zip(cells, results):
        cost = float(config.system.x_transform)
        columns_av[name].append((cost, result.average_value))
        columns_fold[name].append((cost, result.fold_low))
    uf_drop = columns_av["UF"][0][1] - columns_av["UF"][-1][1]
    od_drop = columns_av["OD"][0][1] - columns_av["OD"][-1][1]
    checks = [
        _check(
            "view complexity hurts the install-everything algorithm most",
            uf_drop > od_drop + 0.2,
            f"UF loses {uf_drop:.2f} AV, OD loses {od_drop:.2f}",
        ),
    ]
    return Figure(
        "A5",
        "Ablation: view complexity (transformed installs, x_transform sweep)",
        [
            Panel("AV vs x_transform", "x_transform", columns_av),
            Panel("fold_l vs x_transform", "x_transform", columns_fold),
        ],
        checks,
    )


def ablation_bursty_feed(
    scale: ExperimentScale, workers: int = 1, cache: ResultCache | None = None
) -> Figure:
    """Bursty (peak/off-peak) feed vs the paper's stationary Poisson stream.

    The paper motivates the problem with market feeds reaching 500
    updates/second "during peak time" — i.e. a non-stationary stream.
    Holding the long-run mean at the Table 1 rate, this ablation raises
    the peak factor and watches who suffers: UF must absorb each peak
    synchronously, while the queue-based algorithms smooth it.
    """
    from repro.config import UpdatePattern

    base = scaled_baseline(scale)
    factors = (1.0, 2.0, 3.0)
    algorithms = ("UF", "TF", "OD")
    cells = []
    for factor in factors:
        if factor == 1.0:
            config = base
        else:
            config = base.with_updates(
                pattern=UpdatePattern.BURSTY,
                burst_peak_factor=factor,
                burst_peak_fraction=0.25,
                burst_dwell_mean=2.0,
            )
        for name in algorithms:
            cells.append((config, name, {}))
    results = _run_cells(_sim_cell, cells, workers, cache)
    columns_ps: dict[str, list[tuple[float, float]]] = {a: [] for a in algorithms}
    columns_md: dict[str, list[tuple[float, float]]] = {a: [] for a in algorithms}
    pairs = zip(cells, results)
    for factor in factors:
        for name in algorithms:
            _, result = next(pairs)
            columns_ps[name].append((factor, result.p_success))
            columns_md[name].append((factor, result.p_md))
    uf_md = [y for _, y in columns_md["UF"]]
    checks = [
        _check(
            "peaks raise UF's miss rate (updates preempt synchronously)",
            uf_md[-1] >= uf_md[0] - 0.01,
            f"p_MD {uf_md[0]:.3f} -> {uf_md[-1]:.3f} at peak factor 3",
        ),
    ]
    return Figure(
        "A6",
        "Ablation: bursty update feed at fixed mean rate",
        [
            Panel("p_success vs peak factor", "peak_factor", columns_ps),
            Panel("p_MD vs peak factor", "peak_factor", columns_md),
        ],
        checks,
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
FIGURES: dict[str, Callable[..., Figure]] = {
    "3": figure_3,
    "4": figure_4,
    "5": figure_5,
    "6": figure_6,
    "7": figure_7,
    "8": figure_8,
    "9": figure_9,
    "10": figure_10,
    "11": figure_11,
    "12": figure_12,
    "13": figure_13,
    "14": figure_14,
    "15": figure_15,
    "16": figure_16,
    "A1": ablation_indexed_queue,
    "A2": ablation_fixed_fraction,
    "A3": ablation_split_queue,
    "A4": ablation_preemption,
    "A5": ablation_view_complexity,
    "A6": ablation_bursty_feed,
}


def build_figure(
    figure_id: str,
    scale: ExperimentScale | None = None,
    workers: int = 1,
    cache: ResultCache | None = None,
) -> Figure:
    """Build one figure's reproduction at the given (or env-derived) scale.

    Args:
        figure_id: Paper figure number ("3".."16") or ablation id ("A1"..).
        scale: Experiment scale; env-derived when omitted.
        workers: Process count for the simulation fan-out; results are
            identical to a serial build.
        cache: Optional persistent result cache shared across figures.
    """
    builder = FIGURES.get(str(figure_id))
    if builder is None:
        known = ", ".join(FIGURES)
        raise KeyError(f"unknown figure {figure_id!r}; known: {known}")
    _note_disk_cache(cache)
    return builder(scale or ExperimentScale.from_env(), workers, cache)
