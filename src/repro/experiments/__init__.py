"""Experiment harness: the paper's evaluation, figure by figure.

:mod:`repro.experiments.sweeps` runs parameter sweeps across algorithms;
:mod:`repro.experiments.figures` defines one experiment per paper figure
(3 through 16) plus the ablations listed in DESIGN.md.  The benchmark
suite and the ``repro-experiments`` CLI are thin wrappers over these.
"""

from repro.experiments.sweeps import ExperimentScale, Sweep, SweepPoint, run_sweep
from repro.experiments.figures import FIGURES, Figure, Panel, build_figure
from repro.experiments.replication import (
    MetricSummary,
    ReplicatedResult,
    compare_algorithms,
    run_replicated,
)
from repro.experiments.plots import render_chart, render_figure, render_panel
from repro.experiments.sensitivity import (
    STANDARD_PARAMETERS,
    SensitivityRow,
    analyze_sensitivity,
    format_sensitivity,
)

__all__ = [
    "FIGURES",
    "STANDARD_PARAMETERS",
    "ExperimentScale",
    "Figure",
    "MetricSummary",
    "Panel",
    "ReplicatedResult",
    "SensitivityRow",
    "Sweep",
    "SweepPoint",
    "analyze_sensitivity",
    "build_figure",
    "compare_algorithms",
    "format_sensitivity",
    "render_chart",
    "render_figure",
    "render_panel",
    "run_replicated",
    "run_sweep",
]
