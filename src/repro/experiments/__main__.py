"""Command-line entry point: regenerate the paper's figures.

Usage::

    python -m repro.experiments --figure 5        # one figure, quick scale
    python -m repro.experiments --all             # every figure + ablations
    python -m repro.experiments --all --workers 8   # parallel fan-out
    python -m repro.experiments --all --no-cache    # force recomputation
    REPRO_FULL=1 python -m repro.experiments --all  # paper scale (1000 s/point)

Sweep cells fan out over ``--workers`` processes (results are identical to
a serial run) and completed cells are memoized under ``--cache-dir``, so
rerunning any figure with a warm cache is near-instant.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.cache import ResultCache, default_cache_dir
from repro.experiments.figures import FIGURES, build_figure
from repro.experiments.sweeps import ExperimentScale, default_workers


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the figures of Adelberg et al. (SIGMOD 1995).",
    )
    parser.add_argument(
        "--figure",
        action="append",
        default=None,
        metavar="ID",
        help=f"figure to build (repeatable); one of: {', '.join(FIGURES)}",
    )
    parser.add_argument(
        "--all", action="store_true", help="build every figure and ablation"
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's 1000-second runs (same as REPRO_FULL=1)",
    )
    parser.add_argument(
        "--charts",
        action="store_true",
        help="also render each panel as an ASCII line chart",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="also write the full report to this file",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="processes for the simulation fan-out "
        "(default: $REPRO_WORKERS or the CPU count); results are "
        "identical to --workers 1",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every cell instead of using the persistent cache",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="persistent result-cache directory "
        "(default: $REPRO_CACHE_DIR or .repro_cache)",
    )
    args = parser.parse_args(argv)

    workers = args.workers if args.workers is not None else default_workers()
    if workers < 1:
        parser.error(f"--workers must be >= 1, got {workers}")
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())

    if args.all:
        figure_ids = list(FIGURES)
    elif args.figure:
        figure_ids = args.figure
    else:
        parser.error("pass --figure ID (repeatable) or --all")

    scale = ExperimentScale.paper() if args.paper_scale else ExperimentScale.from_env()
    header = (
        f"scale: {scale.label} ({scale.duration:g}s/point, "
        f"{scale.warmup:g}s warmup); workers: {workers}; cache: "
        + (str(cache.root) if cache is not None else "off")
    )
    print(header)

    report_lines = [header]
    failures = 0
    for figure_id in figure_ids:
        start = time.time()
        figure = build_figure(figure_id, scale, workers=workers, cache=cache)
        block = figure.render()
        if args.charts:
            from repro.experiments.plots import render_figure

            block += "\n\n" + render_figure(figure)
        print()
        print(block)
        print(f"[figure {figure_id} built in {time.time() - start:.1f}s]")
        report_lines.append("")
        report_lines.append(block)
        failures += len(figure.failed_checks())

    if cache is not None:
        print(f"[cache {cache.root}: {cache.hits} hit(s), {cache.misses} miss(es)]")
    verdict = (
        f"{failures} shape check(s) FAILED" if failures else "all shape checks passed"
    )
    report_lines.append("")
    report_lines.append(verdict)
    if args.output:
        from pathlib import Path

        Path(args.output).write_text("\n".join(report_lines) + "\n")
        print(f"[report written to {args.output}]")
    if failures:
        print(f"\n{verdict}", file=sys.stderr)
        return 1
    print(f"\n{verdict}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
