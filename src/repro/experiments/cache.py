"""Persistent, content-addressed cache of simulation results.

Every sweep cell is a pure function of ``(config, algorithm,
algorithm_kwargs, shard topology, package version)`` — simulations are
deterministic by construction (common random numbers, seeded streams).  That makes results
perfectly memoizable: this module stores each cell's
:class:`~repro.metrics.results.SimulationResult` as one JSON file named by
the SHA-256 of a canonical encoding of everything that determines it.

Re-running any figure with a warm cache is then near-instant, and the
baseline λ_t sweep shared by Figures 3/4/5/6/12/13 runs once ever per
scale.  The cache is safe for concurrent writers (atomic rename) and
degrades gracefully: a corrupted or incompatible entry produces a warning
and a recompute, never a wrong result.

The version string participates in the fingerprint, so upgrading the
package invalidates every entry automatically.
"""

from __future__ import annotations

import enum
import hashlib
import json
import os
import warnings
from dataclasses import asdict
from pathlib import Path

from repro import __version__
from repro.config import SimulationConfig
from repro.db.sharding import ROUTER_VERSION
from repro.metrics.results import SimulationResult
from repro.metrics.storage import result_from_dict, result_to_dict

#: Environment variable overriding the default on-disk cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default on-disk cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro_cache"


def default_cache_dir() -> Path:
    """The cache directory: ``$REPRO_CACHE_DIR`` or ``.repro_cache``."""
    override = os.environ.get(CACHE_DIR_ENV, "").strip()
    return Path(override) if override else Path(DEFAULT_CACHE_DIR)


def _canonical(value):
    """A JSON-encodable canonical form of a config/kwargs fragment."""
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {
            str(key): _canonical(val)
            for key, val in sorted(value.items(), key=lambda item: str(item[0]))
        }
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    # Anything exotic (e.g. a callable in algorithm kwargs) still gets a
    # deterministic-enough spelling; collisions would need two objects with
    # identical reprs AND identical surrounding payloads.
    return repr(value)


def fingerprint(
    config: SimulationConfig,
    algorithm: str,
    kwargs: dict | None = None,
    extra: str = "",
    version: str | None = None,
    shards: int = 1,
) -> str:
    """Content address of one simulation cell.

    Args:
        config: The full (validated) simulation configuration.
        algorithm: Algorithm registry name.
        kwargs: Algorithm constructor arguments, if any.
        extra: Free-form tag for run-time state the config cannot capture
            (e.g. an installed update transformer).
        version: Package version; defaults to the running one.  Any change
            invalidates the address.
        shards: Shard topology the cell was run under.  The router version
            rides along, so a change to the keyspace hash also invalidates
            every sharded entry (single-shard entries never route and are
            unaffected by the router, but share the addressing for
            uniformity).
    """
    payload = {
        "config": _canonical(asdict(config)),
        "algorithm": algorithm,
        "kwargs": _canonical(kwargs or {}),
        "extra": extra,
        "version": __version__ if version is None else version,
        "topology": {"shards": int(shards), "router_version": ROUTER_VERSION},
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Content-addressed store of simulation results under one directory.

    Attributes:
        root: Directory holding one ``<sha256>.json`` file per cell.
        hits / misses: Lookup counters for this process.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(
        self,
        config: SimulationConfig,
        algorithm: str,
        kwargs: dict | None = None,
        extra: str = "",
        shards: int = 1,
    ) -> SimulationResult | None:
        """The cached result for a cell, or None (corruption counts as a
        miss and emits a warning — the caller recomputes)."""
        key = fingerprint(config, algorithm, kwargs, extra, shards=shards)
        path = self.path_for(key)
        try:
            blob = path.read_text()
        except OSError:
            self.misses += 1
            return None
        try:
            payload = json.loads(blob)
            if not isinstance(payload, dict) or payload.get("key") != key:
                raise ValueError("fingerprint mismatch or malformed payload")
            result = result_from_dict(payload["result"])
        except (ValueError, KeyError, TypeError) as exc:
            warnings.warn(
                f"corrupted cache entry {path} ({exc}); recomputing",
                stacklevel=2,
            )
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(
        self,
        config: SimulationConfig,
        algorithm: str,
        result: SimulationResult,
        kwargs: dict | None = None,
        extra: str = "",
        shards: int = 1,
    ) -> Path:
        """Store one cell's result; atomic against concurrent writers."""
        key = fingerprint(config, algorithm, kwargs, extra, shards=shards)
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        payload = {
            "key": key,
            "algorithm": algorithm,
            "version": __version__,
            "result": result_to_dict(result),
        }
        tmp = self.root / f".{key}.{os.getpid()}.tmp"
        tmp.write_text(json.dumps(payload, sort_keys=True))
        os.replace(tmp, path)
        return path

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of stored entries."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))

    def clear(self) -> int:
        """Delete every stored entry; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            for path in self.root.glob(".*.tmp"):
                try:
                    path.unlink()
                except OSError:
                    pass
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ResultCache {self.root} entries={len(self)} "
            f"hits={self.hits} misses={self.misses}>"
        )
