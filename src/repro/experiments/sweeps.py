"""Parameter sweeps across scheduling algorithms.

A sweep runs one simulation per (x-value, algorithm) pair, holding the
random seed fixed so every algorithm sees the identical workload at every
point (the paper's methodology, made noise-free with common random
numbers).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from repro.config import SimulationConfig, baseline_config
from repro.core.simulator import run_simulation
from repro.metrics.results import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.experiments.cache import ResultCache

#: Environment variable that switches every experiment to the paper's full
#: scale (1000 simulated seconds per point).
FULL_SCALE_ENV = "REPRO_FULL"

#: Environment variable overriding the default process count for parallel
#: sweeps (the CLIs fall back to ``os.cpu_count()``).
WORKERS_ENV = "REPRO_WORKERS"


def default_workers() -> int:
    """Worker count for the CLIs: ``$REPRO_WORKERS`` or ``os.cpu_count()``."""
    override = os.environ.get(WORKERS_ENV, "").strip()
    if override:
        try:
            workers = int(override)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV} must be an integer >= 1, got {override!r}"
            ) from None
        if workers < 1:
            raise ValueError(f"{WORKERS_ENV} must be >= 1, got {workers}")
        return workers
    return os.cpu_count() or 1


@dataclass(frozen=True)
class ExperimentScale:
    """How long each simulated point runs.

    The paper simulates 1000 seconds per data point.  The default "quick"
    scale uses shorter runs with a warmup window (the database starts
    all-fresh, so the first ``max_age`` seconds understate staleness);
    Poisson statistics at 400 updates/second converge well within it.
    """

    duration: float
    warmup: float
    label: str

    @classmethod
    def quick(cls) -> "ExperimentScale":
        return cls(duration=60.0, warmup=12.0, label="quick")

    @classmethod
    def paper(cls) -> "ExperimentScale":
        return cls(duration=1000.0, warmup=20.0, label="paper")

    @classmethod
    def from_env(cls) -> "ExperimentScale":
        """Paper scale when ``REPRO_FULL`` is set, quick otherwise."""
        if os.environ.get(FULL_SCALE_ENV, "").strip() not in ("", "0"):
            return cls.paper()
        return cls.quick()

    def apply(self, config: SimulationConfig) -> SimulationConfig:
        """Copy ``config`` with this scale's duration/warmup."""
        return config.replace(duration=self.duration, warmup=self.warmup)


@dataclass(frozen=True)
class SweepPoint:
    """One simulation inside a sweep."""

    x: float
    algorithm: str
    result: SimulationResult


@dataclass
class Sweep:
    """All runs of one experiment.

    Lookups go through a dict index maintained incrementally over
    ``points`` (appends are detected by length), so :meth:`result` is O(1)
    and :meth:`xs` is O(distinct x) instead of the linear/quadratic scans
    a big sweep cannot afford.
    """

    x_label: str
    algorithms: tuple[str, ...]
    points: list[SweepPoint] = field(default_factory=list)
    _index: dict = field(default_factory=dict, repr=False, compare=False)
    _indexed: int = field(default=0, repr=False, compare=False)

    def _ensure_index(self) -> dict:
        points = self.points
        if self._indexed > len(points):
            # Points were removed/replaced wholesale; rebuild from scratch.
            self._index.clear()
            self._indexed = 0
        if self._indexed < len(points):
            index = self._index
            for point in points[self._indexed:]:
                index[(point.x, point.algorithm)] = point.result
            self._indexed = len(points)
        return self._index

    def xs(self) -> list[float]:
        """Distinct x values in run order."""
        return list(dict.fromkeys(x for x, _ in self._ensure_index()))

    def result(self, x: float, algorithm: str) -> SimulationResult:
        """The result at one grid point."""
        try:
            return self._ensure_index()[(x, algorithm)]
        except KeyError:
            raise KeyError(f"no point at x={x} for {algorithm}") from None

    def series(
        self, algorithm: str, metric: str | Callable[[SimulationResult], float]
    ) -> list[tuple[float, float]]:
        """(x, metric) pairs for one algorithm, in x order."""
        getter = (
            metric if callable(metric) else lambda result: getattr(result, metric)
        )
        return [
            (point.x, getter(point.result))
            for point in self.points
            if point.algorithm == algorithm
        ]

    def values(
        self, algorithm: str, metric: str | Callable[[SimulationResult], float]
    ) -> list[float]:
        """Just the metric values for one algorithm, in x order."""
        return [y for _, y in self.series(algorithm, metric)]


def _run_cell(args: tuple) -> SweepPoint:
    """Worker entry for one (x, algorithm) sweep cell (picklable)."""
    x, config, name, kwargs = args
    return SweepPoint(x=x, algorithm=name,
                      result=run_simulation(config, name, **kwargs))


def map_cells(worker: Callable, cells: Sequence, workers: int = 1) -> list:
    """Map a picklable worker over independent cells, in cell order.

    With ``workers > 1`` the cells fan out over a process pool; results
    come back in submission order regardless of completion order, so a
    parallel map is indistinguishable from a serial one.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if workers == 1 or len(cells) <= 1:
        return [worker(cell) for cell in cells]
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=min(workers, len(cells))) as pool:
        return list(pool.map(worker, cells))


def run_sweep(
    base_config: SimulationConfig,
    x_label: str,
    xs: Sequence[float],
    configure: Callable[[SimulationConfig, float], SimulationConfig],
    algorithms: Sequence[str],
    algorithm_kwargs: dict[str, dict] | None = None,
    workers: int = 1,
    cache: "ResultCache | None" = None,
) -> Sweep:
    """Run ``configure(base, x)`` for every x and algorithm.

    Args:
        base_config: Template configuration (already scaled).
        x_label: Name of the swept parameter, for reports.
        xs: Grid of parameter values.
        configure: Pure function producing the config for one x.
        algorithms: Algorithm registry names to compare.
        algorithm_kwargs: Optional per-algorithm constructor arguments.
        workers: Process count; > 1 fans the independent cells out over a
            process pool.  Results are identical to a serial run (every
            cell is seeded independently of execution order).
        cache: Optional persistent result cache; hits skip the simulation
            entirely and misses are stored after running.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    sweep = Sweep(x_label=x_label, algorithms=tuple(algorithms))
    kwargs_by_name = algorithm_kwargs or {}
    cells = []
    for x in xs:
        config = configure(base_config, x).validate()
        for name in algorithms:
            cells.append((x, config, name, kwargs_by_name.get(name, {})))
    points: list[SweepPoint | None] = [None] * len(cells)
    misses = []
    if cache is not None:
        for position, (x, config, name, kwargs) in enumerate(cells):
            result = cache.get(config, name, kwargs)
            if result is not None:
                points[position] = SweepPoint(x=x, algorithm=name, result=result)
            else:
                misses.append(position)
    else:
        misses = list(range(len(cells)))
    if misses:
        computed = map_cells(_run_cell, [cells[i] for i in misses], workers)
        for position, point in zip(misses, computed):
            points[position] = point
            if cache is not None:
                _, config, name, kwargs = cells[position]
                cache.put(config, name, point.result, kwargs)
    sweep.points.extend(points)
    return sweep


def scaled_baseline(scale: ExperimentScale, **overrides) -> SimulationConfig:
    """The paper's baseline config at the requested scale."""
    return scale.apply(baseline_config(**overrides))
