"""Parameter sweeps across scheduling algorithms.

A sweep runs one simulation per (x-value, algorithm) pair, holding the
random seed fixed so every algorithm sees the identical workload at every
point (the paper's methodology, made noise-free with common random
numbers).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.config import SimulationConfig, baseline_config
from repro.core.simulator import run_simulation
from repro.metrics.results import SimulationResult

#: Environment variable that switches every experiment to the paper's full
#: scale (1000 simulated seconds per point).
FULL_SCALE_ENV = "REPRO_FULL"


@dataclass(frozen=True)
class ExperimentScale:
    """How long each simulated point runs.

    The paper simulates 1000 seconds per data point.  The default "quick"
    scale uses shorter runs with a warmup window (the database starts
    all-fresh, so the first ``max_age`` seconds understate staleness);
    Poisson statistics at 400 updates/second converge well within it.
    """

    duration: float
    warmup: float
    label: str

    @classmethod
    def quick(cls) -> "ExperimentScale":
        return cls(duration=60.0, warmup=12.0, label="quick")

    @classmethod
    def paper(cls) -> "ExperimentScale":
        return cls(duration=1000.0, warmup=20.0, label="paper")

    @classmethod
    def from_env(cls) -> "ExperimentScale":
        """Paper scale when ``REPRO_FULL`` is set, quick otherwise."""
        if os.environ.get(FULL_SCALE_ENV, "").strip() not in ("", "0"):
            return cls.paper()
        return cls.quick()

    def apply(self, config: SimulationConfig) -> SimulationConfig:
        """Copy ``config`` with this scale's duration/warmup."""
        return config.replace(duration=self.duration, warmup=self.warmup)


@dataclass(frozen=True)
class SweepPoint:
    """One simulation inside a sweep."""

    x: float
    algorithm: str
    result: SimulationResult


@dataclass
class Sweep:
    """All runs of one experiment."""

    x_label: str
    algorithms: tuple[str, ...]
    points: list[SweepPoint] = field(default_factory=list)

    def xs(self) -> list[float]:
        """Distinct x values in run order."""
        seen: list[float] = []
        for point in self.points:
            if point.x not in seen:
                seen.append(point.x)
        return seen

    def result(self, x: float, algorithm: str) -> SimulationResult:
        """The result at one grid point."""
        for point in self.points:
            if point.x == x and point.algorithm == algorithm:
                return point.result
        raise KeyError(f"no point at x={x} for {algorithm}")

    def series(
        self, algorithm: str, metric: str | Callable[[SimulationResult], float]
    ) -> list[tuple[float, float]]:
        """(x, metric) pairs for one algorithm, in x order."""
        getter = (
            metric if callable(metric) else lambda result: getattr(result, metric)
        )
        return [
            (point.x, getter(point.result))
            for point in self.points
            if point.algorithm == algorithm
        ]

    def values(
        self, algorithm: str, metric: str | Callable[[SimulationResult], float]
    ) -> list[float]:
        """Just the metric values for one algorithm, in x order."""
        return [y for _, y in self.series(algorithm, metric)]


def _run_cell(args: tuple) -> SweepPoint:
    """Worker entry for one (x, algorithm) sweep cell (picklable)."""
    x, config, name, kwargs = args
    return SweepPoint(x=x, algorithm=name,
                      result=run_simulation(config, name, **kwargs))


def run_sweep(
    base_config: SimulationConfig,
    x_label: str,
    xs: Sequence[float],
    configure: Callable[[SimulationConfig, float], SimulationConfig],
    algorithms: Sequence[str],
    algorithm_kwargs: dict[str, dict] | None = None,
    workers: int = 1,
) -> Sweep:
    """Run ``configure(base, x)`` for every x and algorithm.

    Args:
        base_config: Template configuration (already scaled).
        x_label: Name of the swept parameter, for reports.
        xs: Grid of parameter values.
        configure: Pure function producing the config for one x.
        algorithms: Algorithm registry names to compare.
        algorithm_kwargs: Optional per-algorithm constructor arguments.
        workers: Process count; > 1 fans the independent cells out over a
            process pool.  Results are identical to a serial run (every
            cell is seeded independently of execution order).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    sweep = Sweep(x_label=x_label, algorithms=tuple(algorithms))
    kwargs_by_name = algorithm_kwargs or {}
    cells = []
    for x in xs:
        config = configure(base_config, x).validate()
        for name in algorithms:
            cells.append((x, config, name, kwargs_by_name.get(name, {})))
    if workers == 1:
        sweep.points.extend(_run_cell(cell) for cell in cells)
    else:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=workers) as pool:
            sweep.points.extend(pool.map(_run_cell, cells))
    return sweep


def scaled_baseline(scale: ExperimentScale, **overrides) -> SimulationConfig:
    """The paper's baseline config at the requested scale."""
    return scale.apply(baseline_config(**overrides))
