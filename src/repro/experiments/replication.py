"""Replicated runs and summary statistics.

The paper reports one 1000-second run per data point.  For shorter runs —
or to put error bars on any comparison — this module runs independent
replications (each with a seed derived from the root seed, so replication
``i`` of algorithm A and of algorithm B still share a workload) and
summarizes every numeric metric with mean, standard deviation, and a
t-distribution confidence interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Sequence

from repro.config import SimulationConfig
from repro.core.simulator import run_simulation
from repro.experiments.sweeps import map_cells
from repro.metrics.results import SimulationResult
from repro.sim.streams import derive_seed

#: Two-sided Student-t 97.5% quantiles for small sample sizes (df = 1..30);
#: beyond 30 the normal approximation is used.
_T_975 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
)


def t_quantile_975(degrees_of_freedom: int) -> float:
    """Two-sided 95% Student-t critical value."""
    if degrees_of_freedom < 1:
        raise ValueError("need at least one degree of freedom")
    if degrees_of_freedom <= len(_T_975):
        return _T_975[degrees_of_freedom - 1]
    return 1.96


@dataclass(frozen=True)
class MetricSummary:
    """Mean and spread of one metric across replications."""

    name: str
    mean: float
    stdev: float
    ci_halfwidth: float
    minimum: float
    maximum: float
    samples: int

    @property
    def ci_low(self) -> float:
        return self.mean - self.ci_halfwidth

    @property
    def ci_high(self) -> float:
        return self.mean + self.ci_halfwidth

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.mean:.4f} ± {self.ci_halfwidth:.4f} "
            f"(sd {self.stdev:.4f}, n={self.samples})"
        )


def summarize(name: str, values: Sequence[float]) -> MetricSummary:
    """Mean / stdev / 95% CI of a sample."""
    if not values:
        raise ValueError(f"no samples for {name}")
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        variance = sum((v - mean) ** 2 for v in values) / (n - 1)
        stdev = math.sqrt(variance)
        half = t_quantile_975(n - 1) * stdev / math.sqrt(n)
    else:
        stdev = 0.0
        half = 0.0
    return MetricSummary(
        name=name,
        mean=mean,
        stdev=stdev,
        ci_halfwidth=half,
        minimum=min(values),
        maximum=max(values),
        samples=n,
    )


#: SimulationResult fields that are meaningful to average.
NUMERIC_METRICS = (
    "p_md",
    "p_success",
    "p_suc_nontardy",
    "average_value",
    "fold_low",
    "fold_high",
    "rho_transactions",
    "rho_updates",
    "mean_update_queue_length",
)


@dataclass(frozen=True)
class ReplicatedResult:
    """All replications of one (config, algorithm) cell plus summaries."""

    algorithm: str
    replications: tuple[SimulationResult, ...]
    summaries: dict[str, MetricSummary]

    def metric(self, name: str) -> MetricSummary:
        summary = self.summaries.get(name)
        if summary is None:
            known = ", ".join(sorted(self.summaries))
            raise KeyError(f"unknown metric {name!r}; known: {known}")
        return summary

    def mean(self, name: str) -> float:
        return self.metric(name).mean


def _run_replica(args: tuple) -> SimulationResult:
    """Worker entry for one replication (picklable)."""
    config, algorithm, kwargs = args
    return run_simulation(config, algorithm, **kwargs)


def run_replicated(
    config: SimulationConfig,
    algorithm: str,
    replications: int = 5,
    workers: int = 1,
    **algorithm_kwargs,
) -> ReplicatedResult:
    """Run ``replications`` independent copies of one simulation cell.

    Replication ``i`` uses ``derive_seed(config.seed, "replication:i")``,
    so the i-th replication of every *algorithm* under the same base config
    still shares its workload (paired comparisons stay noise-free).

    ``workers > 1`` fans the replications out over a process pool; each
    replication is independently seeded, so results are identical to the
    serial run.
    """
    if replications < 1:
        raise ValueError(f"need at least 1 replication, got {replications}")
    cells = [
        (
            config.replace(seed=derive_seed(config.seed, f"replication:{index}")),
            algorithm,
            algorithm_kwargs,
        )
        for index in range(replications)
    ]
    results = map_cells(_run_replica, cells, workers)
    summaries = {
        name: summarize(name, [getattr(r, name) for r in results])
        for name in NUMERIC_METRICS
    }
    return ReplicatedResult(
        algorithm=results[0].algorithm,
        replications=tuple(results),
        summaries=summaries,
    )


def compare_algorithms(
    config: SimulationConfig,
    algorithms: Sequence[str],
    metric: str,
    replications: int = 5,
    workers: int = 1,
) -> dict[str, MetricSummary]:
    """Replicated paired comparison of one metric across algorithms."""
    return {
        name: run_replicated(config, name, replications, workers=workers).metric(
            metric
        )
        for name in algorithms
    }
