"""One-at-a-time parameter sensitivity analysis.

The paper notes that it "performed sensitivity analysis on simulation
parameters" (section 5).  This module systematizes that: perturb each
parameter of interest one at a time around the baseline, re-run, and
report the normalized elasticity of any metric —

    elasticity = (Δmetric / metric_baseline) / (Δparam / param_baseline)

An elasticity near 0 means the conclusion is robust to that parameter; a
large magnitude flags a parameter whose calibration matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.config import SimulationConfig
from repro.core.simulator import run_simulation
from repro.metrics.report import format_table

#: A parameter handle: (name, getter, setter-returning-new-config).
ParamSpec = tuple[
    str,
    Callable[[SimulationConfig], float],
    Callable[[SimulationConfig, float], SimulationConfig],
]

#: The tunable scalar parameters of Tables 1-3 most sweeps care about.
STANDARD_PARAMETERS: tuple[ParamSpec, ...] = (
    (
        "lambda_u",
        lambda c: c.updates.arrival_rate,
        lambda c, v: c.with_updates(arrival_rate=v),
    ),
    (
        "lambda_t",
        lambda c: c.transactions.arrival_rate,
        lambda c, v: c.with_transactions(arrival_rate=v),
    ),
    (
        "mean_update_age",
        lambda c: c.updates.mean_age,
        lambda c, v: c.with_updates(mean_age=v),
    ),
    (
        "max_age",
        lambda c: c.transactions.max_age,
        lambda c, v: c.with_transactions(max_age=v),
    ),
    (
        "compute_mean",
        lambda c: c.transactions.compute_mean,
        lambda c, v: c.with_transactions(compute_mean=v),
    ),
    (
        "slack_max",
        lambda c: c.transactions.slack_max,
        lambda c, v: c.with_transactions(slack_max=v),
    ),
    (
        "x_update",
        lambda c: float(c.system.x_update),
        lambda c, v: c.with_system(x_update=int(v)),
    ),
    (
        "x_lookup",
        lambda c: float(c.system.x_lookup),
        lambda c, v: c.with_system(x_lookup=int(v)),
    ),
)


@dataclass(frozen=True)
class SensitivityRow:
    """Effect of perturbing one parameter on one metric."""

    parameter: str
    baseline_value: float
    perturbed_value: float
    metric_baseline: float
    metric_perturbed: float
    elasticity: float


def analyze_sensitivity(
    config: SimulationConfig,
    algorithm: str,
    metric: str,
    parameters: Sequence[ParamSpec] = STANDARD_PARAMETERS,
    relative_step: float = 0.25,
) -> list[SensitivityRow]:
    """Perturb each parameter by ``relative_step`` and measure the metric.

    Args:
        config: The baseline configuration.
        algorithm: Algorithm under study.
        metric: SimulationResult attribute name (e.g. ``"p_success"``).
        parameters: Parameter handles to perturb (defaults to the Table
            1-3 scalars).
        relative_step: Fractional perturbation (0.25 = +25%).

    Returns:
        One row per parameter, ordered by descending |elasticity|.
    """
    if relative_step <= 0:
        raise ValueError(f"relative_step must be > 0, got {relative_step}")
    baseline_result = run_simulation(config, algorithm)
    metric_baseline = getattr(baseline_result, metric)
    rows = []
    for name, get, put in parameters:
        base_value = get(config)
        if base_value == 0:
            continue  # relative perturbation undefined
        perturbed_value = base_value * (1.0 + relative_step)
        perturbed = put(config, perturbed_value).validate()
        result = run_simulation(perturbed, algorithm)
        metric_perturbed = getattr(result, metric)
        if metric_baseline != 0:
            relative_change = (metric_perturbed - metric_baseline) / abs(
                metric_baseline
            )
            elasticity = relative_change / relative_step
        else:
            elasticity = float("inf") if metric_perturbed != 0 else 0.0
        rows.append(
            SensitivityRow(
                parameter=name,
                baseline_value=base_value,
                perturbed_value=perturbed_value,
                metric_baseline=metric_baseline,
                metric_perturbed=metric_perturbed,
                elasticity=elasticity,
            )
        )
    rows.sort(key=lambda row: abs(row.elasticity), reverse=True)
    return rows


def format_sensitivity(
    rows: Sequence[SensitivityRow],
    metric: str,
    algorithm: str,
) -> str:
    """Render a sensitivity table."""
    return format_table(
        ("parameter", "baseline", "+25%", f"{metric} base", f"{metric} new",
         "elasticity"),
        [
            (
                row.parameter,
                row.baseline_value,
                row.perturbed_value,
                row.metric_baseline,
                row.metric_perturbed,
                row.elasticity,
            )
            for row in rows
        ],
        title=f"Sensitivity of {algorithm}'s {metric} to Table 1-3 parameters",
    )
