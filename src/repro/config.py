"""Simulation configuration — the paper's Tables 1, 2, and 3 as dataclasses.

Every parameter keeps the paper's symbol in its docstring so experiment code
reads like the evaluation section.  Field defaults are exactly the baseline
values of the tables; :func:`SimulationConfig.validate` enforces the model's
domain constraints (probabilities sum to one, rates positive, ...).
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field


class StalenessPolicy(enum.Enum):
    """Which definition of "stale" the run uses (paper section 2).

    * MAX_AGE — a value is stale when ``now - generation_ts > max_age``
      (the paper's MA, based on generation time).
    * MAX_AGE_ARRIVAL — MA variant using arrival time at the RTDB instead of
      generation time (sketched in section 2).
    * UNAPPLIED_UPDATE — a value is stale while a newer update sits in the
      update queue (the paper's UU).
    * COMBINED — stale under either MA or UU (sketched in section 2).
    """

    MAX_AGE = "ma"
    MAX_AGE_ARRIVAL = "ma-arrival"
    UNAPPLIED_UPDATE = "uu"
    COMBINED = "ma+uu"

    @property
    def uses_max_age(self) -> bool:
        return self in (
            StalenessPolicy.MAX_AGE,
            StalenessPolicy.MAX_AGE_ARRIVAL,
            StalenessPolicy.COMBINED,
        )

    @property
    def uses_queue(self) -> bool:
        return self in (StalenessPolicy.UNAPPLIED_UPDATE, StalenessPolicy.COMBINED)


class StaleReadAction(enum.Enum):
    """What a transaction does upon reading stale data (paper section 2).

    IGNORE — complete normally; staleness is only recorded for metrics.
    WARN — complete, but flag the transaction (the "red light" option).
    ABORT — abort immediately (sections 6.2's scenario).
    """

    IGNORE = "ignore"
    WARN = "warn"
    ABORT = "abort"


class QueueDiscipline(enum.Enum):
    """Service order of the update queue (paper section 4.2).

    FIFO installs the oldest queued update first (generation order);
    LIFO installs the newest first.
    """

    FIFO = "fifo"
    LIFO = "lifo"


class UpdatePattern(enum.Enum):
    """Arrival pattern of the external stream (paper section 2).

    The paper's experiments use APERIODIC; PERIODIC is the extension the
    paper describes for sensor-style feeds (every object refreshed on a
    fixed period, phases staggered uniformly).  BURSTY models the paper's
    motivating market feed more faithfully ("up to 500 updates/second
    during peak time"): a two-state Markov-modulated Poisson process that
    alternates between a peak rate and an off-peak rate.
    """

    APERIODIC = "aperiodic"
    PERIODIC = "periodic"
    BURSTY = "bursty"


@dataclass
class UpdateStreamParams:
    """Table 1 — scheduler baseline settings for data and updates."""

    arrival_rate: float = 400.0
    """lambda_u — update arrival rate (updates/second)."""

    p_low: float = 0.5
    """p_ul — probability that an update targets low-importance data."""

    mean_age: float = 0.1
    """a_update — mean transit age (seconds) of an update on arrival."""

    n_low: int = 500
    """N_l — number of low-importance view objects."""

    n_high: int = 500
    """N_h — number of high-importance view objects."""

    pattern: UpdatePattern = UpdatePattern.APERIODIC
    """Arrival pattern; the paper's experiments are aperiodic."""

    partial_probability: float = 0.0
    """Extension: probability an update is partial (updates a single
    attribute rather than the full object).  0.0 reproduces the paper's
    complete-update model."""

    burst_peak_factor: float = 3.0
    """BURSTY pattern: the peak-state rate is ``arrival_rate * factor``;
    the off-peak rate is scaled down so the long-run mean stays at
    ``arrival_rate``."""

    burst_peak_fraction: float = 0.25
    """BURSTY pattern: long-run fraction of time spent in the peak state."""

    burst_dwell_mean: float = 2.0
    """BURSTY pattern: mean seconds per visit to the peak state (off-peak
    dwell follows from ``burst_peak_fraction``)."""

    attributes_per_object: int = 4
    """Extension: number of attributes per view object (only observable when
    partial updates are enabled)."""

    def validate(self) -> None:
        if self.arrival_rate <= 0:
            raise ValueError(f"update arrival rate must be > 0, got {self.arrival_rate}")
        if not 0.0 <= self.p_low <= 1.0:
            raise ValueError(f"p_low out of [0,1]: {self.p_low}")
        if self.mean_age < 0:
            raise ValueError(f"mean update age must be >= 0, got {self.mean_age}")
        if self.n_low < 0 or self.n_high < 0:
            raise ValueError("object counts must be >= 0")
        if self.n_low + self.n_high == 0:
            raise ValueError("need at least one view object")
        if self.n_low == 0 and self.p_low > 0:
            raise ValueError("p_low > 0 requires low-importance objects")
        if self.n_high == 0 and self.p_low < 1:
            raise ValueError("p_high > 0 requires high-importance objects")
        if not 0.0 <= self.partial_probability <= 1.0:
            raise ValueError(f"partial_probability out of [0,1]: {self.partial_probability}")
        if self.attributes_per_object < 1:
            raise ValueError("objects need at least one attribute")
        if self.burst_peak_factor < 1.0:
            raise ValueError(
                f"burst_peak_factor must be >= 1, got {self.burst_peak_factor}"
            )
        if not 0.0 < self.burst_peak_fraction < 1.0:
            raise ValueError(
                f"burst_peak_fraction must be in (0,1): {self.burst_peak_fraction}"
            )
        if self.burst_dwell_mean <= 0:
            raise ValueError(
                f"burst_dwell_mean must be > 0, got {self.burst_dwell_mean}"
            )
        off_rate = self._off_peak_rate()
        if off_rate < 0:
            raise ValueError(
                "bursty parameters give a negative off-peak rate; lower "
                "burst_peak_factor or burst_peak_fraction"
            )

    @property
    def p_high(self) -> float:
        """p_uh = 1 - p_ul."""
        return 1.0 - self.p_low

    @property
    def peak_rate(self) -> float:
        """BURSTY: arrival rate while in the peak state."""
        return self.arrival_rate * self.burst_peak_factor

    def _off_peak_rate(self) -> float:
        # Solve mean = f*peak + (1-f)*off for the off-peak rate.
        f = self.burst_peak_fraction
        return (self.arrival_rate - f * self.peak_rate) / (1.0 - f)

    @property
    def off_peak_rate(self) -> float:
        """BURSTY: arrival rate while in the off-peak state (chosen so the
        long-run mean equals ``arrival_rate``)."""
        return self._off_peak_rate()


@dataclass
class TransactionParams:
    """Table 2 — scheduler baseline settings for transactions."""

    arrival_rate: float = 10.0
    """lambda_t — transaction arrival rate (transactions/second)."""

    p_low: float = 0.5
    """p_tl — probability that a transaction is low-value."""

    slack_min: float = 0.1
    """S_min — minimum slack (seconds)."""

    slack_max: float = 1.0
    """S_max — maximum slack (seconds)."""

    value_low_mean: float = 1.0
    """v_l — mean value of a low-value transaction."""

    value_high_mean: float = 2.0
    """v_h — mean value of a high-value transaction."""

    value_low_stdev: float = 0.5
    """sigma_vl — standard deviation of low values."""

    value_high_stdev: float = 0.5
    """sigma_vh — standard deviation of high values."""

    reads_mean: float = 2.0
    """r — mean number of view objects read."""

    reads_stdev: float = 1.0
    """sigma_r — standard deviation of the read-set size."""

    max_age: float = 7.0
    """alpha — maximum age (seconds) before view data counts as stale
    under the MA definition."""

    compute_mean: float = 0.12
    """x̄ — mean computation time (seconds)."""

    compute_stdev: float = 0.01
    """sigma_x — standard deviation of computation time."""

    p_view: float = 0.0
    """p_view — fraction of the computation performed *before* the view
    reads (step 1 of the transaction pattern)."""

    stale_read_action: StaleReadAction = StaleReadAction.IGNORE
    """Behaviour upon reading stale data (section 6.1 vs 6.2 scenarios)."""

    def validate(self) -> None:
        if self.arrival_rate <= 0:
            raise ValueError(f"transaction arrival rate must be > 0, got {self.arrival_rate}")
        if not 0.0 <= self.p_low <= 1.0:
            raise ValueError(f"p_low out of [0,1]: {self.p_low}")
        if self.slack_min < 0 or self.slack_max < self.slack_min:
            raise ValueError(
                f"slack range invalid: [{self.slack_min}, {self.slack_max}]"
            )
        for name in ("value_low_stdev", "value_high_stdev", "reads_stdev", "compute_stdev"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.value_low_mean < 0 or self.value_high_mean < 0:
            raise ValueError("mean transaction values must be >= 0")
        if self.reads_mean < 0:
            raise ValueError("mean read count must be >= 0")
        if self.max_age <= 0:
            raise ValueError(f"max_age must be > 0, got {self.max_age}")
        if self.compute_mean < 0:
            raise ValueError("mean compute time must be >= 0")
        if not 0.0 <= self.p_view <= 1.0:
            raise ValueError(f"p_view out of [0,1]: {self.p_view}")

    @property
    def p_high(self) -> float:
        """p_th = 1 - p_tl."""
        return 1.0 - self.p_low


@dataclass
class SystemParams:
    """Table 3 — scheduler baseline settings for the system."""

    ips: float = 50e6
    """ips — CPU instructions per second."""

    x_lookup: int = 4000
    """x_lookup — instructions to find a data object (index probe)."""

    x_update: int = 20000
    """x_update — instructions to apply an update to a data object."""

    x_switch: int = 0
    """x_switch — instructions per context switch."""

    x_queue: int = 0
    """x_queue — proportionality constant of the update-queue insert/remove
    cost, charged as x_queue * ln(n)."""

    x_scan: int = 0
    """x_scan — instructions to examine one queued update during a scan."""

    x_transform: int = 0
    """Extension (paper §2 "view complexity"): extra instructions per
    applied install into a partition that has an update transformer
    registered (running averages, unit conversions, ...)."""

    x_view_refresh: int = 0
    """Extension (paper §3.2 derived data): instructions to apply one
    delta to one registered derived view (``repro.db.views``).  An eager
    view charges this inside every applied install; a deferred view
    charges it per buffered delta at refresh time."""

    os_queue_max: int = 4000
    """OS_max — maximum size of the OS (kernel) message queue."""

    update_queue_max: int = 5600
    """UQ_max — maximum size of the internal update queue."""

    feasible_deadline: bool = True
    """feasible_dl — abort transactions that can no longer meet their
    deadlines at scheduling points."""

    transaction_preemption: bool = False
    """preemption — whether a newly arrived transaction with higher value
    density may preempt the running one (FALSE in the paper's baseline)."""

    queue_discipline: QueueDiscipline = QueueDiscipline.FIFO
    """queue policy — FIFO (oldest generation first) or LIFO (newest)."""

    indexed_update_queue: bool = False
    """Extension (paper sections 4.2/4.4 future work): maintain a hash index
    on the update queue keyed by object, keeping only the newest update per
    object and making OD lookups O(1)."""

    history_depth: int = 0
    """Extension (paper section 7 future work): retain up to this many past
    versions of every view object for as-of queries.  0 (the paper's
    snapshot-view model) disables history entirely."""

    def validate(self) -> None:
        if self.ips <= 0:
            raise ValueError(f"ips must be > 0, got {self.ips}")
        for name in ("x_lookup", "x_update", "x_switch", "x_queue", "x_scan",
                     "x_transform", "x_view_refresh"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.os_queue_max < 1:
            raise ValueError("OS queue must hold at least one update")
        if self.update_queue_max < 1:
            raise ValueError("update queue must hold at least one update")
        if self.history_depth < 0:
            raise ValueError(f"history_depth must be >= 0, got {self.history_depth}")

    def seconds(self, instructions: float) -> float:
        """Convert an instruction count to seconds of CPU time."""
        return instructions / self.ips


@dataclass
class SimulationConfig:
    """Complete configuration of one simulation run."""

    updates: UpdateStreamParams = field(default_factory=UpdateStreamParams)
    transactions: TransactionParams = field(default_factory=TransactionParams)
    system: SystemParams = field(default_factory=SystemParams)

    staleness: StalenessPolicy = StalenessPolicy.MAX_AGE
    """Which staleness definition the run uses."""

    duration: float = 1000.0
    """Simulated seconds per run (the paper uses 1000)."""

    warmup: float = 0.0
    """Simulated seconds to run before measurement starts.  The database
    begins all-fresh, so short runs understate steady-state staleness
    unless the first ``max_age`` seconds or so are excluded.  Metrics are
    reported over ``[warmup, duration]``."""

    seed: int = 1995
    """Root seed for all random streams."""

    def validate(self) -> "SimulationConfig":
        """Check all domain constraints; returns self for chaining."""
        self.updates.validate()
        self.transactions.validate()
        self.system.validate()
        if self.duration <= 0:
            raise ValueError(f"duration must be > 0, got {self.duration}")
        if not 0.0 <= self.warmup < self.duration:
            raise ValueError(
                f"warmup must lie in [0, duration): {self.warmup} vs {self.duration}"
            )
        return self

    def replace(self, **overrides) -> "SimulationConfig":
        """A deep-copied config with top-level fields replaced."""
        return dataclasses.replace(self.copy(), **overrides)

    def copy(self) -> "SimulationConfig":
        """An independent deep copy (nested dataclasses included)."""
        return SimulationConfig(
            updates=dataclasses.replace(self.updates),
            transactions=dataclasses.replace(self.transactions),
            system=dataclasses.replace(self.system),
            staleness=self.staleness,
            duration=self.duration,
            warmup=self.warmup,
            seed=self.seed,
        )

    def with_updates(self, **overrides) -> "SimulationConfig":
        """Copy with update-stream parameters replaced."""
        config = self.copy()
        config.updates = dataclasses.replace(config.updates, **overrides)
        return config

    def with_transactions(self, **overrides) -> "SimulationConfig":
        """Copy with transaction parameters replaced."""
        config = self.copy()
        config.transactions = dataclasses.replace(config.transactions, **overrides)
        return config

    def with_system(self, **overrides) -> "SimulationConfig":
        """Copy with system parameters replaced."""
        config = self.copy()
        config.system = dataclasses.replace(config.system, **overrides)
        return config


def baseline_config(**overrides) -> SimulationConfig:
    """The paper's baseline configuration (Tables 1-3), optionally adjusted.

    Keyword overrides apply to the *top-level* fields of
    :class:`SimulationConfig` (``duration``, ``seed``, ``staleness``); use
    the ``with_*`` helpers for nested parameters.
    """
    return SimulationConfig(**overrides).validate()
