"""The transaction workload (paper sections 3.4 and 5.2).

Transactions arrive as a Poisson process with rate ``lambda_t``.  Each is
low-value (probability ``p_tl``, reading low-importance view objects) or
high-value (reading high-importance objects); its value, computation time,
read-set size, and slack are drawn per Table 2.  The execution pattern is
the paper's three steps: ``p_view`` of the computation, then the view reads
with staleness checks, then the rest of the computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.config import SimulationConfig
from repro.db.objects import ObjectClass
from repro.sim.engine import Engine
from repro.sim.streams import StreamFamily


@dataclass(frozen=True)
class TransactionSpec:
    """Immutable description of one arriving transaction.

    All stochastic choices are made at generation time so the spec is
    identical across scheduling algorithms under a shared seed.

    Attributes:
        seq: Arrival sequence number.
        arrival_time: Simulated arrival time.
        high_value: True for the high-value class.
        value: Reward for committing before the deadline.
        compute_time: Total computation seconds (general-data access
            included, per the paper's model).
        reads: View objects to read (all from the class's partition).
        slack: Scheduling slack (seconds); the deadline is
            ``arrival + execution_estimate + slack``.
    """

    seq: int
    arrival_time: float
    high_value: bool
    value: float
    compute_time: float
    reads: tuple[int, ...]
    slack: float

    @property
    def view_class(self) -> ObjectClass:
        """Partition this transaction reads from."""
        return ObjectClass.VIEW_HIGH if self.high_value else ObjectClass.VIEW_LOW

    def execution_estimate(self, x_lookup: int, ips: float) -> float:
        """Perfect execution-time estimate (paper section 3.4).

        Computation plus one index probe per view read.  On-demand scan and
        apply costs are excluded: they depend on run-time queue state no
        estimator could know.
        """
        return self.compute_time + len(self.reads) * (x_lookup / ips)

    def deadline(self, x_lookup: int, ips: float) -> float:
        """Firm deadline: arrival + execution estimate + slack."""
        return self.arrival_time + self.execution_estimate(x_lookup, ips) + self.slack


TransactionSink = Callable[[TransactionSpec], None]


class TransactionGenerator:
    """Feeds the transaction workload into the simulation."""

    STREAM_ARRIVALS = "transactions.arrivals"
    STREAM_SHAPE = "transactions.shape"

    def __init__(
        self,
        config: SimulationConfig,
        engine: Engine,
        streams: StreamFamily,
        sink: TransactionSink,
    ) -> None:
        self.params = config.transactions
        self.n_low = config.updates.n_low
        self.n_high = config.updates.n_high
        self.engine = engine
        self.sink = sink
        self._arrivals = streams.stream(self.STREAM_ARRIVALS)
        self._shape = streams.stream(self.STREAM_SHAPE)
        self._next_seq = 0
        self.generated = 0

    def start(self) -> None:
        """Schedule the first arrival."""
        self.engine.schedule(
            self._arrivals.interarrival(self.params.arrival_rate), self._arrive
        )

    def _arrive(self) -> None:
        spec = self.draw_spec(self.engine.now)
        self.generated += 1
        self.sink(spec)
        self.engine.schedule(
            self._arrivals.interarrival(self.params.arrival_rate), self._arrive
        )

    def next_interarrival(self) -> float:
        """Draw the next inter-arrival gap (public for loadgen pacing)."""
        return self._arrivals.interarrival(self.params.arrival_rate)

    def draw_spec(self, arrival_time: float) -> TransactionSpec:
        """Draw one transaction per Table 2 (public for trace tooling)."""
        params = self.params
        shape = self._shape
        low = shape.bernoulli(params.p_low)
        if low:
            value = shape.truncated_normal(params.value_low_mean, params.value_low_stdev)
            pool = self.n_low
        else:
            value = shape.truncated_normal(params.value_high_mean, params.value_high_stdev)
            pool = self.n_high
        compute = shape.truncated_normal(params.compute_mean, params.compute_stdev)
        read_count = shape.normal_count(params.reads_mean, params.reads_stdev)
        reads = tuple(shape.choose_index(pool) for _ in range(read_count)) if pool else ()
        slack = shape.uniform(params.slack_min, params.slack_max)
        spec = TransactionSpec(
            seq=self._next_seq,
            arrival_time=arrival_time,
            high_value=not low,
            value=value,
            compute_time=compute,
            reads=reads,
            slack=slack,
        )
        self._next_seq += 1
        return spec
