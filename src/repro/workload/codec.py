"""Schema-specialized fast codec for the trace/wire JSONL format.

The on-disk trace format and the live wire protocol are the same JSONL
schema (:mod:`repro.workload.trace`): one JSON object per line, tagged
``"kind": "update" | "transaction"``.  The generic path — a dict build
plus one ``json.dumps`` per record on the way out, one ``json.loads``
plus an ``Enum`` call per record on the way in — is the per-record tax
this module removes:

* **Encode** (:func:`encode_item`, :func:`encode_lines`): each line is
  assembled directly from the record's fields with ``repr`` formatting.
  ``json.dumps`` serializes floats with ``float.__repr__`` and this
  schema contains no strings that need escaping (the only string field
  is the closed ``klass`` vocabulary), so the output is byte-identical
  to ``json.dumps(item_to_dict(item))`` — asserted by the test suite —
  at roughly a third of the cost.
* **Decode** (:func:`decode_lines`): a batch of lines is wrapped in one
  JSON array and parsed with a *single* ``json.loads`` call, instead of
  one call (and its setup cost) per line.  A malformed line falls back
  to per-line parsing so the error stays attributable to the offending
  record.
* **Rebuild** (:func:`item_from_record`): dict → object with the
  ``klass`` enum resolved through a reused lookup table instead of an
  ``Enum.__call__`` per record.

Shared by :func:`repro.workload.trace.save_trace`, the live
:class:`~repro.live.server.IngestServer`, and the
:class:`~repro.live.cluster.ShardCluster` router.

Alongside the JSONL functions lives :class:`BinaryCodec`: a
length-prefixed, ``struct``-packed binary frame format for the same two
fixed wire schemas.  A binary session starts with a 5-byte preamble
(magic + schema version) that can never begin a JSONL session, so the
two protocols negotiate per connection (see :mod:`repro.live.wire`) and
interoperate behind one server socket.  Every field round-trips
bit-exactly — IEEE-754 doubles travel as themselves instead of through
``repr``/``float()`` — which the parity suite asserts field by field.
"""

from __future__ import annotations

import json
import struct
from typing import Iterable

from repro.db.objects import ObjectClass, Update
from repro.workload.transactions import TransactionSpec

#: Reused key table: wire ``klass`` value -> enum member (Enum.__call__ is
#: an order of magnitude slower than a dict hit).
CLASS_BY_VALUE = {klass.value: klass for klass in ObjectClass}


# ----------------------------------------------------------------------
# Encode
# ----------------------------------------------------------------------
def encode_update(update: Update) -> str:
    """One update as a JSON line, byte-identical to the generic encoder."""
    head = (
        f'{{"kind": "update", "seq": {update.seq!r}, '
        f'"klass": "{update.klass.value}", '
        f'"object_id": {update.object_id!r}, "value": {update.value!r}, '
        f'"generation_time": {update.generation_time!r}, '
        f'"arrival_time": {update.arrival_time!r}'
    )
    if update.partial:
        return head + f', "partial": true, "attribute": {update.attribute!r}}}'
    return head + "}"


def encode_spec(spec: TransactionSpec) -> str:
    """One transaction spec as a JSON line, byte-identical to the generic
    encoder."""
    reads = ", ".join([repr(gid) for gid in spec.reads])
    return (
        f'{{"kind": "transaction", "seq": {spec.seq!r}, '
        f'"arrival_time": {spec.arrival_time!r}, '
        f'"high_value": {"true" if spec.high_value else "false"}, '
        f'"value": {spec.value!r}, "compute_time": {spec.compute_time!r}, '
        f'"reads": [{reads}], "slack": {spec.slack!r}}}'
    )


def encode_item(item) -> str:
    """Serialize an update or transaction spec by type (no newline)."""
    if isinstance(item, Update):
        return encode_update(item)
    if isinstance(item, TransactionSpec):
        return encode_spec(item)
    raise TypeError(f"cannot serialize {type(item).__name__} into a trace")


def encode_lines(items: Iterable) -> bytes:
    """A batch of items as one newline-delimited wire payload.

    The payload is exactly the concatenation of the records' individual
    lines: a batch on the wire is indistinguishable from the same records
    written one at a time.
    """
    return "".join([encode_item(item) + "\n" for item in items]).encode("utf-8")


# ----------------------------------------------------------------------
# Decode
# ----------------------------------------------------------------------
def decode_lines(lines: "list[bytes]") -> list:
    """Parse a batch of JSONL lines with one ``json.loads`` call.

    The lines are joined into a JSON array and parsed together.  When any
    line is not valid JSON (or is a fragment that would change the
    element count, e.g. ``b"1, 2"``), the batch falls back to per-line
    parsing and the offending entries come back as ``ValueError``
    instances in place of records, so the caller can report each bad line
    individually while still processing its neighbors.
    """
    if not lines:
        return []
    try:
        records = json.loads(b"[" + b",".join(lines) + b"]")
        if len(records) == len(lines):
            return records
    except ValueError:
        pass
    out: list = []
    for line in lines:
        try:
            out.append(json.loads(line))
        except ValueError as exc:
            out.append(exc)
    return out


def update_from_record(record: dict) -> Update:
    """Rebuild an :class:`Update`; ``klass`` resolves via the key table."""
    return Update(
        seq=record["seq"],
        klass=CLASS_BY_VALUE[record["klass"]],
        object_id=record["object_id"],
        value=record["value"],
        generation_time=record["generation_time"],
        arrival_time=record["arrival_time"],
        partial=record.get("partial", False),
        attribute=record.get("attribute", 0),
    )


def spec_from_record(record: dict) -> TransactionSpec:
    """Rebuild a :class:`TransactionSpec` from a decoded wire record."""
    return TransactionSpec(
        seq=record["seq"],
        arrival_time=record["arrival_time"],
        high_value=record["high_value"],
        value=record["value"],
        compute_time=record["compute_time"],
        reads=tuple(record["reads"]),
        slack=record["slack"],
    )


def item_from_record(record):
    """Deserialize one decoded record by its ``kind`` tag.

    Raises:
        ValueError: for an unknown/missing kind or a non-object record.
        KeyError: for a record missing schema fields.
    """
    if not isinstance(record, dict):
        raise ValueError(f"trace record is not an object: {record!r}")
    kind = record.get("kind")
    if kind == "update":
        return update_from_record(record)
    if kind == "transaction":
        return spec_from_record(record)
    raise ValueError(f"unknown trace record kind: {kind!r}")


# ----------------------------------------------------------------------
# Binary wire format
# ----------------------------------------------------------------------
#: First bytes of a binary session.  0xB7 is not valid UTF-8 and no JSONL
#: record line can start with it, so one peeked byte tells the two
#: protocols apart (see repro.live.wire.negotiate_protocol).
WIRE_MAGIC = b"\xb7RBW"

#: Bumped when a frame layout changes; a server refuses a preamble whose
#: version it does not speak, so a stale peer fails fast and typed instead
#: of desynchronizing mid-stream.
WIRE_SCHEMA_VERSION = 1

#: What a binary client writes before its first frame: magic + version.
WIRE_PREAMBLE = WIRE_MAGIC + bytes([WIRE_SCHEMA_VERSION])

#: Frame tags.  TAG_JSON carries one UTF-8 JSON record (snapshot requests,
#: outcome/error/snapshot replies) so everything that is not on the two
#: hot fixed schemas still crosses a binary session unchanged.
TAG_UPDATE = 0x01
TAG_SPEC = 0x02
TAG_JSON = 0x1F

#: Frame header: tag byte + little-endian uint32 body length.
FRAME_HEADER = struct.Struct("<BI")

#: Update body: seq, klass code, object_id, value, generation_time,
#: arrival_time, partial flag, attribute.
_UPDATE_BODY = struct.Struct("<qBqdddBi")

#: Spec body head: seq, arrival_time, high_value flag, value,
#: compute_time, slack, read count — followed by ``count`` int64 reads.
_SPEC_HEAD = struct.Struct("<qdBdddI")

#: A frame body longer than this means a corrupt or hostile header; the
#: stream cannot be resynchronized, so the decoder raises (session-fatal).
MAX_FRAME_BODY = 16 * 1024 * 1024

#: Stable klass <-> wire code tables (pinned by the codec tests; the enum
#: definition order is not part of the wire contract, this table is).
CLASS_CODES = {
    ObjectClass.VIEW_LOW: 0,
    ObjectClass.VIEW_HIGH: 1,
    ObjectClass.GENERAL: 2,
}
CLASS_BY_CODE = {code: klass for klass, code in CLASS_CODES.items()}

#: The routing fields of an update body — klass code + object id — sit at
#: a fixed offset (past the 8-byte seq), so a router can resolve a raw
#: frame's shard without materializing an :class:`Update`.
_UPDATE_ROUTE = struct.Struct("<Bq")
_UPDATE_ROUTE_AT = FRAME_HEADER.size + 8
_UPDATE_OBJECT_ID_AT = _UPDATE_ROUTE_AT + 1


def peek_update_route(frame: bytes) -> "tuple[ObjectClass, int]":
    """(klass, global object id) of a raw update frame, without decoding.

    Raises:
        ValueError: unknown klass code (the frame would not decode either).
    """
    klass_code, object_id = _UPDATE_ROUTE.unpack_from(frame, _UPDATE_ROUTE_AT)
    klass = CLASS_BY_CODE.get(klass_code)
    if klass is None:
        raise ValueError(f"unknown klass code {klass_code} in update frame")
    return klass, object_id


def reroute_update_frame(frame: bytes, local_id: int) -> bytes:
    """The same update frame with its object id rewritten to ``local_id``.

    This is the router's whole per-update transform: every other field —
    seq, value, times, partial/attribute — is forwarded byte-identical to
    what the client sent.
    """
    patched = bytearray(frame)
    struct.pack_into("<q", patched, _UPDATE_OBJECT_ID_AT, local_id)
    return bytes(patched)


#: A spec body's routing fields sit at fixed offsets too (layout
#: ``<qdBdddI`` + packed int64 reads): seq at body offset 0, the
#: high_value flag at 16, compute_time + slack at 25, the read count at
#: 41, and the reads immediately after the 45-byte head.
_SPEC_SEQ_AT = FRAME_HEADER.size
_SPEC_FLAG_AT = FRAME_HEADER.size + 16
_SPEC_BUDGET = struct.Struct("<dd")
_SPEC_BUDGET_AT = FRAME_HEADER.size + 25
_SPEC_COUNT_AT = FRAME_HEADER.size + 41
_SPEC_READS_AT = FRAME_HEADER.size + _SPEC_HEAD.size


def peek_spec_route(frame: bytes) -> "tuple[ObjectClass, int, tuple[int, ...]]":
    """(klass, seq, global reads) of a raw spec frame, without decoding.

    The scatter router resolves every read's owning shard from this —
    the spec analogue of :func:`peek_update_route`.

    Raises:
        ValueError: when the declared read count disagrees with the frame
            length (the frame would not decode either).
    """
    (count,) = struct.unpack_from("<I", frame, _SPEC_COUNT_AT)
    if len(frame) != _SPEC_READS_AT + 8 * count:
        raise ValueError(
            f"spec frame declares {count} reads but carries "
            f"{len(frame) - _SPEC_READS_AT} read bytes"
        )
    (seq,) = struct.unpack_from("<q", frame, _SPEC_SEQ_AT)
    klass = ObjectClass.VIEW_HIGH if frame[_SPEC_FLAG_AT] else ObjectClass.VIEW_LOW
    reads = struct.unpack_from(f"<{count}q", frame, _SPEC_READS_AT)
    return klass, seq, reads


def peek_spec_budget(frame: bytes) -> "tuple[float, float]":
    """(compute_time, slack) of a raw spec frame, without decoding.

    What the scatter router needs to bound a fanned-out sub-read's
    deadline without materializing the spec.
    """
    compute_time, slack = _SPEC_BUDGET.unpack_from(frame, _SPEC_BUDGET_AT)
    return compute_time, slack


def reroute_spec_frame(frame: bytes, seq: int, reads: "Iterable[int]") -> bytes:
    """The same spec frame with its seq and read-set rewritten.

    When the read count is unchanged (a transaction whose reads all land
    on one shard) this is an in-place patch, like
    :func:`reroute_update_frame`.  A changed count — a fanned-out
    sub-read carrying one shard's slice — rebuilds the header and read
    block while forwarding the other five head fields (arrival_time,
    high_value, value, compute_time, slack) byte-identical.
    """
    reads = tuple(reads)
    (count,) = struct.unpack_from("<I", frame, _SPEC_COUNT_AT)
    n = len(reads)
    if n == count:
        patched = bytearray(frame)
        struct.pack_into("<q", patched, _SPEC_SEQ_AT, seq)
        struct.pack_into(f"<{n}q", patched, _SPEC_READS_AT, *reads)
        return bytes(patched)
    mid = frame[FRAME_HEADER.size + 8:_SPEC_COUNT_AT]
    return b"".join((
        FRAME_HEADER.pack(TAG_SPEC, _SPEC_HEAD.size + 8 * n),
        struct.pack("<q", seq),
        mid,
        struct.pack("<I", n),
        struct.pack(f"<{n}q", *reads),
    ))


def encode_update_frame(update: Update) -> bytes:
    """One update as a length-prefixed binary frame."""
    body = _UPDATE_BODY.pack(
        update.seq,
        CLASS_CODES[update.klass],
        update.object_id,
        update.value,
        update.generation_time,
        update.arrival_time,
        1 if update.partial else 0,
        update.attribute,
    )
    return FRAME_HEADER.pack(TAG_UPDATE, len(body)) + body


def encode_spec_frame(spec: TransactionSpec) -> bytes:
    """One transaction spec as a length-prefixed binary frame."""
    reads = spec.reads
    body = _SPEC_HEAD.pack(
        spec.seq,
        spec.arrival_time,
        1 if spec.high_value else 0,
        spec.value,
        spec.compute_time,
        spec.slack,
        len(reads),
    ) + struct.pack(f"<{len(reads)}q", *reads)
    return FRAME_HEADER.pack(TAG_SPEC, len(body)) + body


def encode_json_frame(payload: bytes) -> bytes:
    """Wrap one pre-encoded JSON record (no newline) in a binary frame."""
    return FRAME_HEADER.pack(TAG_JSON, len(payload)) + payload


def encode_frame(item) -> bytes:
    """Serialize an update or transaction spec as one binary frame."""
    if isinstance(item, Update):
        return encode_update_frame(item)
    if isinstance(item, TransactionSpec):
        return encode_spec_frame(item)
    raise TypeError(f"cannot serialize {type(item).__name__} onto the wire")


def encode_frames(items: Iterable) -> bytes:
    """A batch of items as one contiguous binary payload.

    Exactly the concatenation of the records' individual frames — the
    binary analogue of :func:`encode_lines`: a batch on the wire is
    indistinguishable from the same frames written one at a time.
    """
    out = []
    append = out.append
    for item in items:
        if isinstance(item, Update):
            append(encode_update_frame(item))
        elif isinstance(item, TransactionSpec):
            append(encode_spec_frame(item))
        else:
            raise TypeError(
                f"cannot serialize {type(item).__name__} onto the wire"
            )
    return b"".join(out)


def _update_from_body(body) -> Update:
    (seq, klass_code, object_id, value, generation_time, arrival_time,
     partial, attribute) = _UPDATE_BODY.unpack(body)
    return Update(
        seq=seq,
        klass=CLASS_BY_CODE[klass_code],
        object_id=object_id,
        value=value,
        generation_time=generation_time,
        arrival_time=arrival_time,
        partial=bool(partial),
        attribute=attribute,
    )


def _spec_from_body(body) -> TransactionSpec:
    (seq, arrival_time, high_value, value, compute_time, slack,
     count) = _SPEC_HEAD.unpack_from(body, 0)
    expected = _SPEC_HEAD.size + 8 * count
    if len(body) != expected:
        raise ValueError(
            f"spec frame declares {count} reads but carries "
            f"{len(body) - _SPEC_HEAD.size} read bytes"
        )
    reads = struct.unpack_from(f"<{count}q", body, _SPEC_HEAD.size)
    return TransactionSpec(
        seq=seq,
        arrival_time=arrival_time,
        high_value=bool(high_value),
        value=value,
        compute_time=compute_time,
        reads=tuple(reads),
        slack=slack,
    )


class FrameDecoder:
    """Incremental decoder for a binary frame stream.

    Feed it arbitrary byte chunks as they arrive; it returns every record
    completed by the chunk and buffers the partial tail frame for the
    next feed — the binary analogue of line reassembly.  A malformed
    frame *body* comes back as a ``ValueError`` entry in the batch (its
    length prefix still delimits it, so neighbors keep decoding, same
    error isolation as :func:`decode_lines`); a malformed *header* —
    unknown tag with an absurd length — raises, because past a broken
    header there is no resynchronization point.

    Args:
        parse_json: Parse TAG_JSON bodies into dicts (the ingest
            direction).  ``False`` returns the raw JSON bytes instead —
            reply pumps re-frame them without a decode/encode round trip.
        raw_updates: Return well-formed update frames as their raw bytes
            (header included) instead of :class:`Update` instances — the
            router's fast path, which routes via :func:`peek_update_route`
            and forwards the frame without ever building the object.
            Specs and JSON frames are unaffected.
        raw_specs: The same fast path for well-formed spec frames — the
            scatter router splits their read-sets via
            :func:`peek_spec_route` and re-ids sub-reads with
            :func:`reroute_spec_frame` without materializing a
            :class:`TransactionSpec`.  Updates and JSON frames are
            unaffected.
        max_body: Body-length cap above which a header is treated as
            corrupt and the session aborted.  Live sessions keep the
            default (:data:`MAX_FRAME_BODY`); the durability log reader
            lowers it to its largest legal record so a garbage length in
            a torn tail frame stops replay instead of waiting on 16 MiB
            of bytes that will never arrive.
    """

    __slots__ = (
        "_buffer", "_parse_json", "_raw_updates", "_raw_specs", "_max_body"
    )

    def __init__(
        self,
        *,
        parse_json: bool = True,
        raw_updates: bool = False,
        raw_specs: bool = False,
        max_body: int = MAX_FRAME_BODY,
    ) -> None:
        self._buffer = bytearray()
        self._parse_json = parse_json
        self._raw_updates = raw_updates
        self._raw_specs = raw_specs
        self._max_body = max_body

    @property
    def pending_bytes(self) -> int:
        """Bytes of an incomplete tail frame awaiting the next feed."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list:
        """Consume one chunk; return the records it completed, in order."""
        buffer = self._buffer
        buffer += data
        header_size = FRAME_HEADER.size
        if len(buffer) < header_size:
            return []
        out: list = []
        view = memoryview(buffer)
        offset = 0
        total = len(buffer)
        unpack_header = FRAME_HEADER.unpack_from
        while total - offset >= header_size:
            tag, length = unpack_header(view, offset)
            if length > self._max_body:
                view.release()
                del buffer[:]
                raise ValueError(
                    f"binary frame header declares {length} body bytes "
                    f"(tag {tag:#x}); stream is corrupt"
                )
            if total - offset - header_size < length:
                break  # partial tail frame: wait for the next feed
            start = offset + header_size
            end = start + length
            try:
                if tag == TAG_UPDATE:
                    if self._raw_updates:
                        if length != _UPDATE_BODY.size:
                            raise ValueError(
                                f"update frame body is {length} bytes, "
                                f"expected {_UPDATE_BODY.size}"
                            )
                        out.append(bytes(view[offset:end]))
                    else:
                        out.append(_update_from_body(view[start:end]))
                elif tag == TAG_SPEC:
                    if self._raw_specs:
                        if length < _SPEC_HEAD.size:
                            raise ValueError(
                                f"spec frame body is {length} bytes, "
                                f"shorter than the {_SPEC_HEAD.size}-byte head"
                            )
                        (count,) = struct.unpack_from(
                            "<I", view, offset + _SPEC_COUNT_AT
                        )
                        if length != _SPEC_HEAD.size + 8 * count:
                            raise ValueError(
                                f"spec frame declares {count} reads but "
                                f"carries {length - _SPEC_HEAD.size} "
                                "read bytes"
                            )
                        out.append(bytes(view[offset:end]))
                    else:
                        out.append(_spec_from_body(view[start:end]))
                elif tag == TAG_JSON:
                    payload = bytes(view[start:end])
                    out.append(
                        json.loads(payload) if self._parse_json else payload
                    )
                else:
                    raise ValueError(f"unknown binary frame tag {tag:#x}")
            except (ValueError, KeyError, struct.error) as exc:
                # Rebuild rather than keep `exc`: its traceback pins a
                # memoryview over the buffer we are about to compact.
                out.append(ValueError(str(exc)))
            offset = end
        view.release()
        del buffer[:offset]
        return out


class BinaryCodec:
    """The binary wire codec, bundled: magic, version, encode, decode.

    The module-level functions are the hot path (no attribute hops); this
    class is the discoverable front door and the unit the negotiation
    layer versions against.
    """

    MAGIC = WIRE_MAGIC
    VERSION = WIRE_SCHEMA_VERSION
    PREAMBLE = WIRE_PREAMBLE

    encode_item = staticmethod(encode_frame)
    encode_batch = staticmethod(encode_frames)
    encode_json = staticmethod(encode_json_frame)

    @staticmethod
    def decoder(*, parse_json: bool = True) -> FrameDecoder:
        """A fresh incremental decoder for one session."""
        return FrameDecoder(parse_json=parse_json)

    @staticmethod
    def decode(payload: bytes) -> list:
        """Decode one complete payload (tests, ring blobs, traces).

        Raises:
            ValueError: when the payload ends mid-frame — a complete
                payload that does not parse completely is corrupt.
        """
        decoder = FrameDecoder()
        records = decoder.feed(payload)
        if decoder.pending_bytes:
            raise ValueError(
                f"payload ends mid-frame ({decoder.pending_bytes} "
                "trailing bytes)"
            )
        return records
