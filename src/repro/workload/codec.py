"""Schema-specialized fast codec for the trace/wire JSONL format.

The on-disk trace format and the live wire protocol are the same JSONL
schema (:mod:`repro.workload.trace`): one JSON object per line, tagged
``"kind": "update" | "transaction"``.  The generic path — a dict build
plus one ``json.dumps`` per record on the way out, one ``json.loads``
plus an ``Enum`` call per record on the way in — is the per-record tax
this module removes:

* **Encode** (:func:`encode_item`, :func:`encode_lines`): each line is
  assembled directly from the record's fields with ``repr`` formatting.
  ``json.dumps`` serializes floats with ``float.__repr__`` and this
  schema contains no strings that need escaping (the only string field
  is the closed ``klass`` vocabulary), so the output is byte-identical
  to ``json.dumps(item_to_dict(item))`` — asserted by the test suite —
  at roughly a third of the cost.
* **Decode** (:func:`decode_lines`): a batch of lines is wrapped in one
  JSON array and parsed with a *single* ``json.loads`` call, instead of
  one call (and its setup cost) per line.  A malformed line falls back
  to per-line parsing so the error stays attributable to the offending
  record.
* **Rebuild** (:func:`item_from_record`): dict → object with the
  ``klass`` enum resolved through a reused lookup table instead of an
  ``Enum.__call__`` per record.

Shared by :func:`repro.workload.trace.save_trace`, the live
:class:`~repro.live.server.IngestServer`, and the
:class:`~repro.live.cluster.ShardCluster` router.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.db.objects import ObjectClass, Update
from repro.workload.transactions import TransactionSpec

#: Reused key table: wire ``klass`` value -> enum member (Enum.__call__ is
#: an order of magnitude slower than a dict hit).
CLASS_BY_VALUE = {klass.value: klass for klass in ObjectClass}


# ----------------------------------------------------------------------
# Encode
# ----------------------------------------------------------------------
def encode_update(update: Update) -> str:
    """One update as a JSON line, byte-identical to the generic encoder."""
    head = (
        f'{{"kind": "update", "seq": {update.seq!r}, '
        f'"klass": "{update.klass.value}", '
        f'"object_id": {update.object_id!r}, "value": {update.value!r}, '
        f'"generation_time": {update.generation_time!r}, '
        f'"arrival_time": {update.arrival_time!r}'
    )
    if update.partial:
        return head + f', "partial": true, "attribute": {update.attribute!r}}}'
    return head + "}"


def encode_spec(spec: TransactionSpec) -> str:
    """One transaction spec as a JSON line, byte-identical to the generic
    encoder."""
    reads = ", ".join([repr(gid) for gid in spec.reads])
    return (
        f'{{"kind": "transaction", "seq": {spec.seq!r}, '
        f'"arrival_time": {spec.arrival_time!r}, '
        f'"high_value": {"true" if spec.high_value else "false"}, '
        f'"value": {spec.value!r}, "compute_time": {spec.compute_time!r}, '
        f'"reads": [{reads}], "slack": {spec.slack!r}}}'
    )


def encode_item(item) -> str:
    """Serialize an update or transaction spec by type (no newline)."""
    if isinstance(item, Update):
        return encode_update(item)
    if isinstance(item, TransactionSpec):
        return encode_spec(item)
    raise TypeError(f"cannot serialize {type(item).__name__} into a trace")


def encode_lines(items: Iterable) -> bytes:
    """A batch of items as one newline-delimited wire payload.

    The payload is exactly the concatenation of the records' individual
    lines: a batch on the wire is indistinguishable from the same records
    written one at a time.
    """
    return "".join([encode_item(item) + "\n" for item in items]).encode("utf-8")


# ----------------------------------------------------------------------
# Decode
# ----------------------------------------------------------------------
def decode_lines(lines: "list[bytes]") -> list:
    """Parse a batch of JSONL lines with one ``json.loads`` call.

    The lines are joined into a JSON array and parsed together.  When any
    line is not valid JSON (or is a fragment that would change the
    element count, e.g. ``b"1, 2"``), the batch falls back to per-line
    parsing and the offending entries come back as ``ValueError``
    instances in place of records, so the caller can report each bad line
    individually while still processing its neighbors.
    """
    if not lines:
        return []
    try:
        records = json.loads(b"[" + b",".join(lines) + b"]")
        if len(records) == len(lines):
            return records
    except ValueError:
        pass
    out: list = []
    for line in lines:
        try:
            out.append(json.loads(line))
        except ValueError as exc:
            out.append(exc)
    return out


def update_from_record(record: dict) -> Update:
    """Rebuild an :class:`Update`; ``klass`` resolves via the key table."""
    return Update(
        seq=record["seq"],
        klass=CLASS_BY_VALUE[record["klass"]],
        object_id=record["object_id"],
        value=record["value"],
        generation_time=record["generation_time"],
        arrival_time=record["arrival_time"],
        partial=record.get("partial", False),
        attribute=record.get("attribute", 0),
    )


def spec_from_record(record: dict) -> TransactionSpec:
    """Rebuild a :class:`TransactionSpec` from a decoded wire record."""
    return TransactionSpec(
        seq=record["seq"],
        arrival_time=record["arrival_time"],
        high_value=record["high_value"],
        value=record["value"],
        compute_time=record["compute_time"],
        reads=tuple(record["reads"]),
        slack=record["slack"],
    )


def item_from_record(record):
    """Deserialize one decoded record by its ``kind`` tag.

    Raises:
        ValueError: for an unknown/missing kind or a non-object record.
        KeyError: for a record missing schema fields.
    """
    if not isinstance(record, dict):
        raise ValueError(f"trace record is not an object: {record!r}")
    kind = record.get("kind")
    if kind == "update":
        return update_from_record(record)
    if kind == "transaction":
        return spec_from_record(record)
    raise ValueError(f"unknown trace record kind: {kind!r}")
