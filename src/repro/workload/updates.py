"""The external update stream (paper section 5.1).

Arrivals form a Poisson process with rate ``lambda_u``.  Each update targets
a uniformly chosen object of the low-importance view (with probability
``p_ul``) or the high-importance view, and has already aged in the network:
its generation timestamp is ``arrival - age`` with ``age ~ Exp(a_update)``.

Two extensions the paper lists as future work are available:

* ``UpdatePattern.PERIODIC`` — every view object is refreshed on a fixed
  period (``(N_l + N_h) / lambda_u``), with phases staggered uniformly; this
  models sensor scan cycles (the plant-control example uses it).
* ``partial_probability > 0`` — an update refreshes a single attribute
  rather than the whole object.
"""

from __future__ import annotations

from typing import Callable

from repro.config import SimulationConfig, UpdatePattern
from repro.db.objects import ObjectClass, Update
from repro.sim.engine import Engine
from repro.sim.streams import StreamFamily

UpdateSink = Callable[[Update], None]


class UpdateStreamGenerator:
    """Feeds the update stream into the simulation.

    The generator schedules one arrival at a time (lazy generation), so
    memory stays constant for arbitrarily long runs while the draw sequence
    stays independent of anything the scheduler does.
    """

    STREAM_ARRIVALS = "updates.arrivals"
    STREAM_SHAPE = "updates.shape"

    def __init__(
        self,
        config: SimulationConfig,
        engine: Engine,
        streams: StreamFamily,
        sink: UpdateSink,
    ) -> None:
        self.params = config.updates
        self.engine = engine
        self.sink = sink
        self._arrivals = streams.stream(self.STREAM_ARRIVALS)
        self._shape = streams.stream(self.STREAM_SHAPE)
        self._next_seq = 0
        self.generated = 0
        # Periodic mode state: one slot per view object, visited round-robin.
        self._periodic_order: list[tuple[ObjectClass, int]] | None = None
        self._periodic_cursor = 0
        # Bursty mode state (Markov-modulated Poisson).
        self._in_peak = False
        self._pending_arrival = None

    def start(self) -> None:
        """Schedule the first arrival."""
        if self.params.pattern is UpdatePattern.PERIODIC:
            self._start_periodic()
        elif self.params.pattern is UpdatePattern.BURSTY:
            self._start_bursty()
        else:
            self.engine.schedule(
                self._arrivals.interarrival(self.params.arrival_rate),
                self._arrive_aperiodic,
            )

    # ------------------------------------------------------------------
    # Aperiodic (paper baseline)
    # ------------------------------------------------------------------
    def _arrive_aperiodic(self) -> None:
        update = self.draw_update(self.engine.now)
        self.generated += 1
        self.sink(update)
        self.engine.schedule(
            self._arrivals.interarrival(self.params.arrival_rate),
            self._arrive_aperiodic,
        )

    def next_interarrival(self) -> float:
        """Draw the next aperiodic inter-arrival gap (public for loadgen).

        The live load generator paces itself on the wall clock instead of
        the engine, but draws gaps and update shapes from the same streams,
        so a live run and a simulated run with the same seed see the same
        update sequence.
        """
        return self._arrivals.interarrival(self.params.arrival_rate)

    def draw_update(self, arrival_time: float) -> Update:
        """Draw one update per Table 1 (public for trace/loadgen tooling)."""
        shape = self._shape
        if shape.bernoulli(self.params.p_low):
            klass = ObjectClass.VIEW_LOW
            object_id = shape.choose_index(self.params.n_low)
        else:
            klass = ObjectClass.VIEW_HIGH
            object_id = shape.choose_index(self.params.n_high)
        age = shape.exponential(self.params.mean_age)
        value = shape.uniform(0.0, 100.0)
        partial = (
            self.params.partial_probability > 0
            and shape.bernoulli(self.params.partial_probability)
        )
        attribute = (
            shape.choose_index(self.params.attributes_per_object) if partial else 0
        )
        update = Update(
            seq=self._next_seq,
            klass=klass,
            object_id=object_id,
            value=value,
            generation_time=max(0.0, arrival_time - age),
            arrival_time=arrival_time,
            partial=partial,
            attribute=attribute,
        )
        self._next_seq += 1
        return update

    # ------------------------------------------------------------------
    # Bursty extension (Markov-modulated Poisson)
    # ------------------------------------------------------------------
    def _start_bursty(self) -> None:
        self._in_peak = False
        self._pending_arrival = None
        self._schedule_state_change()
        self._schedule_bursty_arrival()

    def _current_rate(self) -> float:
        if self._in_peak:
            return self.params.peak_rate
        return self.params.off_peak_rate

    def _schedule_bursty_arrival(self) -> None:
        rate = self._current_rate()
        if rate <= 0:
            self._pending_arrival = None  # silent until the state flips
            return
        self._pending_arrival = self.engine.schedule(
            self._arrivals.interarrival(rate), self._arrive_bursty
        )

    def _arrive_bursty(self) -> None:
        update = self.draw_update(self.engine.now)
        self.generated += 1
        self.sink(update)
        self._schedule_bursty_arrival()

    def _schedule_state_change(self) -> None:
        # Exponential dwell times; off-peak dwell keeps the long-run peak
        # fraction at burst_peak_fraction.
        params = self.params
        if self._in_peak:
            dwell_mean = params.burst_dwell_mean
        else:
            dwell_mean = params.burst_dwell_mean * (
                (1.0 - params.burst_peak_fraction) / params.burst_peak_fraction
            )
        self.engine.schedule(
            self._arrivals.exponential(dwell_mean), self._flip_state
        )

    def _flip_state(self) -> None:
        self._in_peak = not self._in_peak
        # The exponential clock is memoryless, so cancelling the pending
        # arrival and redrawing at the new rate is statistically exact.
        if self._pending_arrival is not None:
            self._pending_arrival.cancel()
        self._schedule_bursty_arrival()
        self._schedule_state_change()

    # ------------------------------------------------------------------
    # Periodic extension
    # ------------------------------------------------------------------
    def _start_periodic(self) -> None:
        order = [
            (ObjectClass.VIEW_LOW, i) for i in range(self.params.n_low)
        ] + [
            (ObjectClass.VIEW_HIGH, i) for i in range(self.params.n_high)
        ]
        self._periodic_order = order
        # Spread the first refresh of each object uniformly over one period
        # by visiting objects round-robin at the aggregate rate.
        self.engine.schedule(
            1.0 / self.params.arrival_rate, self._arrive_periodic
        )

    def _arrive_periodic(self) -> None:
        assert self._periodic_order is not None
        klass, object_id = self._periodic_order[self._periodic_cursor]
        self._periodic_cursor = (self._periodic_cursor + 1) % len(self._periodic_order)
        shape = self._shape
        arrival_time = self.engine.now
        age = shape.exponential(self.params.mean_age)
        update = Update(
            seq=self._next_seq,
            klass=klass,
            object_id=object_id,
            value=shape.uniform(0.0, 100.0),
            generation_time=max(0.0, arrival_time - age),
            arrival_time=arrival_time,
        )
        self._next_seq += 1
        self.generated += 1
        self.sink(update)
        self.engine.schedule(1.0 / self.params.arrival_rate, self._arrive_periodic)
