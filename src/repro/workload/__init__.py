"""Stochastic workload generation (paper sections 5.1 and 5.2).

Generators draw from dedicated random streams and push arrivals into the
simulation engine, so every scheduling algorithm under comparison sees a
bit-identical workload for a given seed.
"""

from repro.workload.transactions import TransactionGenerator, TransactionSpec
from repro.workload.updates import UpdateStreamGenerator
from repro.workload.trace import TraceRecorder, replay_updates

__all__ = [
    "TraceRecorder",
    "TransactionGenerator",
    "TransactionSpec",
    "UpdateStreamGenerator",
    "replay_updates",
]
