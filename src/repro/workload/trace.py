"""Workload trace record / replay.

A :class:`TraceRecorder` can be interposed in front of any sink to capture
the exact arrival sequence of a run; :func:`replay_updates` feeds a captured
(or hand-written) sequence back through the engine.  Tests use this to prove
common-random-number equality across algorithms, and examples use it to run
the simulator on deterministic, human-readable workloads.

Traces round-trip through JSONL (:meth:`TraceRecorder.save`,
:func:`save_trace`, :func:`load_trace`) bit-for-bit: floats are serialized
with ``repr`` precision, so a recorded simulator workload replayed through
the live runtime (or another simulator run) sees numerically identical
arrivals.  One line per item::

    {"kind": "update", "seq": 0, "klass": "view-low", "object_id": 3, ...}
    {"kind": "transaction", "seq": 0, "arrival_time": 0.07, "reads": [1, 4], ...}
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Generic, Iterable, Sequence, TypeVar

from repro.db.objects import ObjectClass, Update
from repro.sim.engine import Engine
from repro.workload.codec import decode_lines, encode_item, item_from_record
from repro.workload.transactions import TransactionSpec

T = TypeVar("T")


class TraceRecorder(Generic[T]):
    """A pass-through sink that remembers everything it forwards."""

    def __init__(self, sink: Callable[[T], None] | None = None) -> None:
        self.items: list[T] = []
        self.sink = sink

    def __call__(self, item: T) -> None:
        self.items.append(item)
        if self.sink is not None:
            self.sink(item)

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    def save(self, path) -> int:
        """Write the recorded items to ``path`` as JSONL; returns the count."""
        return save_trace(path, self.items)


def replay_updates(
    engine: Engine,
    updates: Iterable[Update],
    sink: Callable[[Update], None],
) -> int:
    """Schedule a recorded update sequence for delivery at its arrival times.

    Returns:
        The number of updates scheduled.

    Raises:
        ValueError: if an update's arrival time precedes the engine clock.
    """
    count = 0
    for update in updates:
        if update.arrival_time < engine.now:
            raise ValueError(
                f"update #{update.seq} arrives at {update.arrival_time}, "
                f"before engine time {engine.now}"
            )
        engine.schedule_at(update.arrival_time, sink, update)
        count += 1
    return count


# ----------------------------------------------------------------------
# JSONL persistence
# ----------------------------------------------------------------------
def update_to_dict(update: Update) -> dict:
    """Serialize one update to a plain JSON-compatible dict."""
    record = {
        "kind": "update",
        "seq": update.seq,
        "klass": update.klass.value,
        "object_id": update.object_id,
        "value": update.value,
        "generation_time": update.generation_time,
        "arrival_time": update.arrival_time,
    }
    if update.partial:
        record["partial"] = True
        record["attribute"] = update.attribute
    return record


def update_from_dict(record: dict) -> Update:
    """Rebuild an :class:`Update` from :func:`update_to_dict` output."""
    return Update(
        seq=record["seq"],
        klass=ObjectClass(record["klass"]),
        object_id=record["object_id"],
        value=record["value"],
        generation_time=record["generation_time"],
        arrival_time=record["arrival_time"],
        partial=record.get("partial", False),
        attribute=record.get("attribute", 0),
    )


def spec_to_dict(spec: TransactionSpec) -> dict:
    """Serialize one transaction spec to a plain JSON-compatible dict."""
    return {
        "kind": "transaction",
        "seq": spec.seq,
        "arrival_time": spec.arrival_time,
        "high_value": spec.high_value,
        "value": spec.value,
        "compute_time": spec.compute_time,
        "reads": list(spec.reads),
        "slack": spec.slack,
    }


def spec_from_dict(record: dict) -> TransactionSpec:
    """Rebuild a :class:`TransactionSpec` from :func:`spec_to_dict` output."""
    return TransactionSpec(
        seq=record["seq"],
        arrival_time=record["arrival_time"],
        high_value=record["high_value"],
        value=record["value"],
        compute_time=record["compute_time"],
        reads=tuple(record["reads"]),
        slack=record["slack"],
    )


def item_to_dict(item) -> dict:
    """Serialize an update or transaction spec by type."""
    if isinstance(item, Update):
        return update_to_dict(item)
    if isinstance(item, TransactionSpec):
        return spec_to_dict(item)
    raise TypeError(f"cannot serialize {type(item).__name__} into a trace")


def item_from_dict(record: dict):
    """Deserialize one trace line by its ``kind`` tag."""
    kind = record.get("kind")
    if kind == "update":
        return update_from_dict(record)
    if kind == "transaction":
        return spec_from_dict(record)
    raise ValueError(f"unknown trace record kind: {kind!r}")


#: Lines buffered between ``writelines`` calls in :func:`save_trace` —
#: large enough to amortize the I/O call, small enough to keep the buffer
#: from holding a whole multi-million-record trace in memory.
_SAVE_CHUNK = 4096


def save_trace(path, items: Iterable) -> int:
    """Write updates and/or transaction specs to ``path`` as JSONL.

    Lines are buffered and flushed through ``writelines`` in chunks of
    :data:`_SAVE_CHUNK` instead of one ``write`` call per record, and
    each line comes from the specialized
    :func:`repro.workload.codec.encode_item` (byte-identical to the
    generic ``json.dumps(item_to_dict(item))``).

    Returns:
        The number of items written.
    """
    count = 0
    chunk: list[str] = []
    with Path(path).open("w", encoding="utf-8") as handle:
        for item in items:
            chunk.append(encode_item(item) + "\n")
            count += 1
            if len(chunk) >= _SAVE_CHUNK:
                handle.writelines(chunk)
                chunk.clear()
        if chunk:
            handle.writelines(chunk)
    return count


def load_trace(path) -> "list[Update | TransactionSpec]":
    """Read a JSONL trace back; items come out in file order.

    Each call builds fresh objects, so one file can seed several runs
    without sharing mutable :class:`Update` state between them.  The
    whole file is decoded with one batched
    :func:`repro.workload.codec.decode_lines` call.
    """
    with Path(path).open("rb") as handle:
        lines = [line for line in handle.read().split(b"\n") if line.strip()]
    items = []
    for record in decode_lines(lines):
        if isinstance(record, Exception):
            raise record
        items.append(item_from_record(record))
    return items


def split_trace(items: Iterable) -> "tuple[list[Update], list[TransactionSpec]]":
    """Partition a mixed trace into (updates, transaction specs)."""
    updates: list[Update] = []
    specs: list[TransactionSpec] = []
    for item in items:
        if isinstance(item, Update):
            updates.append(item)
        elif isinstance(item, TransactionSpec):
            specs.append(item)
        else:
            raise TypeError(f"unexpected trace item: {type(item).__name__}")
    return updates, specs


def synthetic_updates(
    specs: Sequence[tuple[float, float]],
    klass,
    object_id: int = 0,
) -> list[Update]:
    """Build a hand-written update trace from (arrival, age) pairs.

    A convenience for tests and examples: update ``i`` targets
    ``(klass, object_id)`` and arrives at ``arrival`` with generation
    timestamp ``arrival - age``.
    """
    updates = []
    for seq, (arrival, age) in enumerate(specs):
        if age < 0 or arrival < age:
            raise ValueError(f"invalid (arrival, age) pair: {(arrival, age)}")
        updates.append(
            Update(
                seq=seq,
                klass=klass,
                object_id=object_id,
                value=float(seq),
                generation_time=arrival - age,
                arrival_time=arrival,
            )
        )
    return updates
