"""Workload trace record / replay.

A :class:`TraceRecorder` can be interposed in front of any sink to capture
the exact arrival sequence of a run; :func:`replay_updates` feeds a captured
(or hand-written) sequence back through the engine.  Tests use this to prove
common-random-number equality across algorithms, and examples use it to run
the simulator on deterministic, human-readable workloads.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterable, Sequence, TypeVar

from repro.db.objects import Update
from repro.sim.engine import Engine

T = TypeVar("T")


class TraceRecorder(Generic[T]):
    """A pass-through sink that remembers everything it forwards."""

    def __init__(self, sink: Callable[[T], None] | None = None) -> None:
        self.items: list[T] = []
        self.sink = sink

    def __call__(self, item: T) -> None:
        self.items.append(item)
        if self.sink is not None:
            self.sink(item)

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)


def replay_updates(
    engine: Engine,
    updates: Iterable[Update],
    sink: Callable[[Update], None],
) -> int:
    """Schedule a recorded update sequence for delivery at its arrival times.

    Returns:
        The number of updates scheduled.

    Raises:
        ValueError: if an update's arrival time precedes the engine clock.
    """
    count = 0
    for update in updates:
        if update.arrival_time < engine.now:
            raise ValueError(
                f"update #{update.seq} arrives at {update.arrival_time}, "
                f"before engine time {engine.now}"
            )
        engine.schedule_at(update.arrival_time, sink, update)
        count += 1
    return count


def synthetic_updates(
    specs: Sequence[tuple[float, float]],
    klass,
    object_id: int = 0,
) -> list[Update]:
    """Build a hand-written update trace from (arrival, age) pairs.

    A convenience for tests and examples: update ``i`` targets
    ``(klass, object_id)`` and arrives at ``arrival`` with generation
    timestamp ``arrival - age``.
    """
    updates = []
    for seq, (arrival, age) in enumerate(specs):
        if age < 0 or arrival < age:
            raise ValueError(f"invalid (arrival, age) pair: {(arrival, age)}")
        updates.append(
            Update(
                seq=seq,
                klass=klass,
                object_id=object_id,
                value=float(seq),
                generation_time=arrival - age,
                arrival_time=arrival,
            )
        )
    return updates
