"""Historical views (paper section 7 future work).

The paper studies only *snapshot* views — installing an update loses the
previous value forever.  Section 2 defines the alternative and section 7
lists it as future work: a *historical* view keeps past values so
transactions can ask "what was the DM/Y rate as of 10 seconds ago?".

:class:`HistoryStore` implements that extension as a bounded per-object
ring buffer of applied versions with as-of lookups.  It is wired into
:class:`~repro.db.database.Database` when ``SystemParams.history_depth``
is positive and costs nothing when disabled.
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import Iterator

from repro.db.update_queue import ObjectKey


class Version:
    """One historical value of a view object."""

    __slots__ = ("value", "generation_time", "install_time")

    def __init__(self, value: float, generation_time: float, install_time: float) -> None:
        self.value = value
        self.generation_time = generation_time
        self.install_time = install_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Version gen={self.generation_time:.3f} value={self.value}>"


class HistoryStore:
    """Bounded version history for every view object.

    Versions are appended in installation order; because the database's
    worthiness check guarantees strictly increasing generation timestamps
    per object, each object's history is sorted by generation time and
    as-of lookups can bisect.

    Attributes:
        depth: Maximum versions retained per object (oldest evicted first).
        recorded: Total versions ever recorded.
        evicted: Versions dropped because a ring buffer was full.
    """

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise ValueError(f"history depth must be >= 1, got {depth}")
        self.depth = depth
        self._versions: dict[ObjectKey, deque[Version]] = {}
        self.recorded = 0
        self.evicted = 0

    def record(
        self,
        key: ObjectKey,
        value: float,
        generation_time: float,
        install_time: float,
    ) -> None:
        """Append a newly installed version for ``key``."""
        bucket = self._versions.get(key)
        if bucket is None:
            bucket = deque(maxlen=self.depth)
            self._versions[key] = bucket
        if len(bucket) == self.depth:
            self.evicted += 1
        bucket.append(Version(value, generation_time, install_time))
        self.recorded += 1

    def versions(self, key: ObjectKey) -> tuple[Version, ...]:
        """All retained versions of ``key``, oldest first."""
        return tuple(self._versions.get(key, ()))

    def version_count(self, key: ObjectKey) -> int:
        return len(self._versions.get(key, ()))

    def value_as_of(self, key: ObjectKey, timestamp: float) -> Version | None:
        """The version current at ``timestamp`` by generation time.

        Returns the newest retained version generated at or before
        ``timestamp``, or None when the object has no retained version that
        old (either never updated or already evicted).
        """
        bucket = self._versions.get(key)
        if not bucket:
            return None
        generations = [version.generation_time for version in bucket]
        index = bisect.bisect_right(generations, timestamp)
        if index == 0:
            return None
        return bucket[index - 1]

    def objects_tracked(self) -> int:
        """Number of objects with at least one retained version."""
        return len(self._versions)

    def __iter__(self) -> Iterator[ObjectKey]:
        return iter(self._versions)
