"""Keyspace partitioning for sharded pipelines.

A shard owns a hash-partitioned slice of the view keyspace.  The
:class:`ShardRouter` maps every global view object id onto its owning
shard with a *stable* integer hash (splitmix64) — deliberately not
Python's built-in ``hash``, which is randomized per process for strings
and would make routing disagree between the processes of a multi-core
deployment.  The router also precomputes dense shard-local object ids, so
each shard's :class:`~repro.db.database.Database` can be built with plain
``n_low``/``n_high`` counts, and splits the global ``OSmax``/``UQmax``
buffer budgets across shards.

Routing accounting (how many updates/transactions each shard received,
how many cross-shard reads had to be remapped, how many records were
unroutable) lives here too, so a merged report can attribute load and
drops per shard.
"""

from __future__ import annotations

from repro.db.objects import ObjectClass

#: Version of the routing function.  Participates in cache fingerprints:
#: changing the hash or the budget split must invalidate every cached
#: sharded result.
ROUTER_VERSION = 1

_MASK64 = (1 << 64) - 1


def stable_hash(value: int) -> int:
    """splitmix64 finalizer: a stable, well-mixed 64-bit hash of an int.

    Process- and platform-independent (unlike ``hash(str)`` under hash
    randomization), so every worker of a sharded deployment routes the
    same object to the same shard.
    """
    z = (value + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def _class_bit(klass: ObjectClass) -> int:
    if klass is ObjectClass.VIEW_LOW:
        return 0
    if klass is ObjectClass.VIEW_HIGH:
        return 1
    raise ValueError(f"only view objects are sharded, got {klass}")


class ShardRouter:
    """Stable hash partitioning of the view keyspace over N shards.

    Args:
        n_low: Global number of low-importance view objects.
        n_high: Global number of high-importance view objects.
        shards: Number of shards (>= 1).

    Raises:
        ValueError: for a degenerate topology — fewer objects than shards
            or a shard that ends up owning zero view objects (its pipeline
            would have nothing to do and its ``Database`` cannot be built).

    Attributes:
        updates_routed: Per-shard count of updates routed through
            :meth:`note_update_routed`.
        transactions_routed: Per-shard count of routed transactions.
        remapped_reads: Cross-shard view reads approximated onto an
            owner-local object (see ``docs/SCALING.md``).
        routing_errors: Records that could not be routed (unknown object).
    """

    def __init__(self, n_low: int, n_high: int, shards: int) -> None:
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        if n_low < 0 or n_high < 0:
            raise ValueError("object counts must be >= 0")
        if n_low + n_high < shards:
            raise ValueError(
                f"cannot spread {n_low + n_high} view objects over "
                f"{shards} shards"
            )
        self.n_low = n_low
        self.n_high = n_high
        self.shards = shards

        # Dense global-id -> (shard, local-id) maps, one per view class.
        self._shard_low = [self._hash_shard_of(0, gid) for gid in range(n_low)]
        self._shard_high = [self._hash_shard_of(1, gid) for gid in range(n_high)]
        self._local_low = [0] * n_low
        self._local_high = [0] * n_high
        self._counts_low = [0] * shards
        self._counts_high = [0] * shards
        for gid, shard in enumerate(self._shard_low):
            self._local_low[gid] = self._counts_low[shard]
            self._counts_low[shard] += 1
        for gid, shard in enumerate(self._shard_high):
            self._local_high[gid] = self._counts_high[shard]
            self._counts_high[shard] += 1
        empty = [
            shard for shard in range(shards)
            if self._counts_low[shard] + self._counts_high[shard] == 0
        ]
        if empty:
            raise ValueError(
                f"shards {empty} own no view objects with n_low={n_low}, "
                f"n_high={n_high}; use fewer shards"
            )

        self.updates_routed = [0] * shards
        self.transactions_routed = [0] * shards
        self.remapped_reads = 0
        self.routing_errors = 0

    def _hash_shard_of(self, class_bit: int, gid: int) -> int:
        return stable_hash((gid << 1) | class_bit) % self.shards

    # ------------------------------------------------------------------
    # Topology queries
    # ------------------------------------------------------------------
    def shard_of(self, klass: ObjectClass, object_id: int) -> int:
        """Owning shard of a global view object id."""
        table = self._shard_low if _class_bit(klass) == 0 else self._shard_high
        return table[object_id]

    def local_id(self, klass: ObjectClass, object_id: int) -> int:
        """Dense shard-local id of a global view object id."""
        table = self._local_low if _class_bit(klass) == 0 else self._local_high
        return table[object_id]

    def counts(self, shard: int) -> tuple[int, int]:
        """(owned low objects, owned high objects) of one shard."""
        return self._counts_low[shard], self._counts_high[shard]

    def count_for(self, shard: int, klass: ObjectClass) -> int:
        """Owned objects of one view class on one shard."""
        low, high = self.counts(shard)
        return low if _class_bit(klass) == 0 else high

    def global_ids(self, shard: int, klass: ObjectClass) -> "list[int]":
        """Global object ids one shard owns, indexed by dense local id.

        Local ids are assigned in global-id order, so the returned list is
        the exact inverse of :meth:`local_id` for this shard: entry ``i``
        is the global id of the shard's local object ``i``.  Used by the
        view registry to compute group keys from global ids, so per-shard
        view states merge without collisions.
        """
        table = self._shard_low if _class_bit(klass) == 0 else self._shard_high
        return [gid for gid, owner in enumerate(table) if owner == shard]

    def hash_shard(self, value: int) -> int:
        """A stable shard choice for values that are not object ids
        (e.g. the sequence number of a transaction with no reads)."""
        return stable_hash(value) % self.shards

    def split_reads(
        self, klass: ObjectClass, reads: "tuple[int, ...]"
    ) -> "dict[int, list[int]]":
        """Group a global read-set by owning shard, as shard-local ids.

        The scatter half of a cross-shard transaction: each entry of the
        returned (insertion-ordered) dict is one shard's slice of the
        read-set, translated to that shard's dense local ids with the
        read order preserved within the slice.
        """
        shard_table = (
            self._shard_low if _class_bit(klass) == 0 else self._shard_high
        )
        local_table = (
            self._local_low if _class_bit(klass) == 0 else self._local_high
        )
        by_shard: dict[int, list[int]] = {}
        for gid in reads:
            shard = shard_table[gid]
            bucket = by_shard.get(shard)
            if bucket is None:
                by_shard[shard] = [local_table[gid]]
            else:
                bucket.append(local_table[gid])
        return by_shard

    # ------------------------------------------------------------------
    # Buffer budgets
    # ------------------------------------------------------------------
    def os_budget(self, shard: int, os_queue_max: int) -> int:
        """This shard's slice of the global ``OSmax`` kernel buffer."""
        return max(1, self._split(shard, os_queue_max))

    def uq_budget(self, shard: int, update_queue_max: int) -> int:
        """This shard's slice of the global ``UQmax`` update-queue bound.

        Clamped to 2 so a partitioned (TF-SPLIT) queue can always be
        built on every shard.
        """
        return max(2, self._split(shard, update_queue_max))

    def _split(self, shard: int, total: int) -> int:
        base, remainder = divmod(total, self.shards)
        return base + (1 if shard < remainder else 0)

    # ------------------------------------------------------------------
    # Routing accounting
    # ------------------------------------------------------------------
    def note_update_routed(self, shard: int, count: int = 1) -> None:
        self.updates_routed[shard] += count

    def note_transaction_routed(self, shard: int, count: int = 1) -> None:
        self.transactions_routed[shard] += count

    def note_remapped_read(self, count: int = 1) -> None:
        self.remapped_reads += count

    def note_routing_error(self) -> None:
        self.routing_errors += 1

    def accounting(self) -> dict:
        """Routing counters in report/extras form."""
        return {
            "shards": self.shards,
            "router_version": ROUTER_VERSION,
            "updates_routed": list(self.updates_routed),
            "transactions_routed": list(self.transactions_routed),
            "remapped_reads": self.remapped_reads,
            "routing_errors": self.routing_errors,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        owned = [self.counts(shard) for shard in range(self.shards)]
        return f"<ShardRouter shards={self.shards} owned={owned}>"


# ----------------------------------------------------------------------
# Topology control records
# ----------------------------------------------------------------------
def topology_record(
    *,
    shards: int,
    n_low: int,
    n_high: int,
    epoch: int,
    workers: "list[dict]",
) -> dict:
    """The ``{"kind": "topology"}`` control record served to smart clients.

    Carries everything a client needs to rebuild the exact routing
    function locally (the router is deterministic from ``n_low`` /
    ``n_high`` / ``shards``) plus the per-worker endpoints and the
    topology ``epoch``, which advances whenever a worker endpoint
    changes.  Each ``workers`` entry is
    ``{"shard": i, "host": h, "port": p, "status": s}``.
    """
    return {
        "kind": "topology",
        "router_version": ROUTER_VERSION,
        "shards": shards,
        "n_low": n_low,
        "n_high": n_high,
        "epoch": epoch,
        "workers": list(workers),
    }


def router_from_topology(record: dict) -> ShardRouter:
    """Rebuild the cluster's exact :class:`ShardRouter` from a topology
    record, refusing records produced by an incompatible hash version."""
    if record.get("kind") != "topology":
        raise ValueError(f"not a topology record: {record.get('kind')!r}")
    version = record.get("router_version")
    if version != ROUTER_VERSION:
        raise ValueError(
            f"topology router_version {version} != {ROUTER_VERSION}; "
            "client and cluster disagree on the routing function"
        )
    return ShardRouter(
        int(record["n_low"]), int(record["n_high"]), int(record["shards"])
    )
