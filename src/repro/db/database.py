"""The main-memory database (paper sections 3.2 and 3.3).

Holds the two view partitions (low/high importance) plus a general-data
store, and implements update installation with the paper's *worthiness*
check: an update whose generation timestamp is not newer than the installed
value is skipped (it can only arise when updates are applied out of order —
LIFO service or On-Demand pulls).

The database itself is policy-free: all CPU cost accounting and scheduling
lives in :mod:`repro.core`.  A freshness ledger may subscribe to installs to
maintain exact staleness integrals.
"""

from __future__ import annotations

from typing import Protocol

from repro.config import SimulationConfig
from repro.db.objects import DataObject, ObjectClass, Update
from repro.db.transforms import Transformer


class InstallListener(Protocol):
    """Callback protocol for observers of update installation."""

    def note_install(
        self,
        obj: DataObject,
        old_generation: float,
        old_arrival_time: float,
        old_install_time: float,
        now: float,
    ) -> None:
        """Called after an update is applied to ``obj``."""


class GeneralStore:
    """General (non-view) data: read and written only by transactions.

    The paper folds the cost of general-data access into transaction compute
    time and general data never goes stale, so this store only needs to be
    functionally correct: a keyed record table with access counters, used by
    the examples to model derived data such as composite indices.
    """

    def __init__(self) -> None:
        self._records: dict[int, float] = {}
        self.reads = 0
        self.writes = 0

    def read(self, key: int) -> float:
        """Read a record (0.0 for never-written keys)."""
        self.reads += 1
        return self._records.get(key, 0.0)

    def write(self, key: int, value: float) -> None:
        """Write a record."""
        self.writes += 1
        self._records[key] = value

    def __len__(self) -> int:
        return len(self._records)


class Database:
    """The partitioned main-memory store.

    Attributes:
        low: Low-importance view objects (``N_l`` of them).
        high: High-importance view objects (``N_h`` of them).
        general: The general-data store.
        installs_applied: Updates actually applied.
        installs_skipped: Updates skipped by the worthiness check.
    """

    def __init__(
        self,
        n_low: int,
        n_high: int,
        attributes_per_object: int = 1,
        install_listener: InstallListener | None = None,
        history_depth: int = 0,
    ) -> None:
        if n_low < 0 or n_high < 0 or n_low + n_high == 0:
            raise ValueError(f"invalid view sizes: n_low={n_low}, n_high={n_high}")
        self.low = [
            DataObject(ObjectClass.VIEW_LOW, i, attributes_per_object)
            for i in range(n_low)
        ]
        self.high = [
            DataObject(ObjectClass.VIEW_HIGH, i, attributes_per_object)
            for i in range(n_high)
        ]
        self.general = GeneralStore()
        self.install_listener = install_listener
        # Derived-view hook (repro.db.views.ViewRegistry); attached only
        # when a view is registered, unlike the swap-prone install_listener.
        self.views = None
        self.installs_applied = 0
        self.installs_skipped = 0
        if history_depth > 0:
            from repro.db.history import HistoryStore

            self.history: "HistoryStore | None" = HistoryStore(history_depth)
        else:
            self.history = None
        # View-complexity extension (paper §2): per-partition update
        # transformers applied before the value is stored.
        self._transformers: dict[ObjectClass, "Transformer"] = {}

    @classmethod
    def from_config(
        cls,
        config: SimulationConfig,
        install_listener: InstallListener | None = None,
    ) -> "Database":
        """Build the database Table 1 describes."""
        updates = config.updates
        return cls(
            updates.n_low,
            updates.n_high,
            attributes_per_object=(
                updates.attributes_per_object if updates.partial_probability > 0 else 1
            ),
            install_listener=install_listener,
            history_depth=config.system.history_depth,
        )

    # ------------------------------------------------------------------
    # Access paths
    # ------------------------------------------------------------------
    def view_object(self, klass: ObjectClass, object_id: int) -> DataObject:
        """Fetch a view object by partition and index."""
        if klass is ObjectClass.VIEW_LOW:
            return self.low[object_id]
        if klass is ObjectClass.VIEW_HIGH:
            return self.high[object_id]
        raise ValueError(f"{klass} is not a view partition")

    def partition(self, klass: ObjectClass) -> list[DataObject]:
        """All objects of a view partition."""
        if klass is ObjectClass.VIEW_LOW:
            return self.low
        if klass is ObjectClass.VIEW_HIGH:
            return self.high
        raise ValueError(f"{klass} is not a view partition")

    def view_objects(self):
        """Iterate every view object (low then high)."""
        yield from self.low
        yield from self.high

    @property
    def view_size(self) -> int:
        return len(self.low) + len(self.high)

    # ------------------------------------------------------------------
    # View complexity (paper §2 extension)
    # ------------------------------------------------------------------
    def set_transformer(self, klass: ObjectClass, transformer: Transformer | None) -> None:
        """Install (or clear, with None) an update transformer for a partition."""
        if not klass.is_view:
            raise ValueError("transformers apply to view partitions only")
        if transformer is None:
            self._transformers.pop(klass, None)
        else:
            self._transformers[klass] = transformer

    def has_transformer(self, klass: ObjectClass) -> bool:
        """True when installs into ``klass`` run a transformer (costing
        ``x_transform`` extra instructions in the controller's model)."""
        return klass in self._transformers

    # ------------------------------------------------------------------
    # Update installation
    # ------------------------------------------------------------------
    def would_apply(self, update: Update) -> bool:
        """Would :meth:`install` apply this update (the worthiness check)?

        The controller uses this to size the install burst: a skipped update
        pays only the lookup cost, not ``x_update``.
        """
        obj = self.view_object(update.klass, update.object_id)
        if update.partial and obj.attribute_generations is not None:
            slot = update.attribute % len(obj.attribute_generations)
            return update.generation_time > obj.attribute_generations[slot]
        return update.generation_time > obj.generation_time

    def install(self, update: Update, now: float) -> bool:
        """Apply an update if it is worthy.

        Returns:
            True when the update was applied; False when the worthiness
            check skipped it because the database already holds an equal or
            newer value (paper section 3.3, step 4).
        """
        obj = self.view_object(update.klass, update.object_id)
        if update.partial and obj.attribute_generations is not None:
            # A partial update is worthless only relative to the attribute
            # it refreshes, not the whole object.
            slot = update.attribute % len(obj.attribute_generations)
            if update.generation_time <= obj.attribute_generations[slot]:
                self.installs_skipped += 1
                return False
        elif update.generation_time <= obj.generation_time:
            self.installs_skipped += 1
            return False
        old_generation = obj.generation_time
        old_arrival_time = obj.arrival_time
        old_install_time = obj.install_time
        old_value = obj.value
        transformer = self._transformers.get(update.klass)
        stored_value = (
            update.value
            if transformer is None
            else transformer(obj.value, update.value)
        )
        if update.partial:
            obj.apply_partial(
                stored_value,
                update.generation_time,
                update.arrival_time,
                now,
                update.attribute,
            )
        else:
            obj.apply_full(
                stored_value, update.generation_time, update.arrival_time, now
            )
        self.installs_applied += 1
        if self.history is not None:
            self.history.record(
                obj.key, stored_value, update.generation_time, now
            )
        if self.install_listener is not None:
            self.install_listener.note_install(
                obj, old_generation, old_arrival_time, old_install_time, now
            )
        if self.views is not None:
            self.views.note_base_install(obj, old_value, now)
        return True
