"""A small schema'd main-memory table with hash indexes.

The paper's STRIP system provides "traditional database services" for
*general* data — derived values such as composite indices and position
tables that transactions read and write.  The simulation folds the CPU
cost of general-data access into transaction compute time (section 5.2),
but the examples still need a functionally real store, so this module
provides one: typed columns, a primary-key hash index, optional secondary
hash indexes, and predicate scans.

It is deliberately minimal — no persistence, no concurrency control
(the paper argues main-memory RTDBs run essentially one transaction at a
time, section 5.2) — but it is exact about schema validation and index
maintenance, and the test suite holds it to that.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping


class SchemaError(ValueError):
    """Raised for rows that do not match the table schema."""


class Row:
    """An immutable stored row; column access by name."""

    __slots__ = ("_values",)

    def __init__(self, values: dict[str, Any]) -> None:
        self._values = values

    def __getitem__(self, column: str) -> Any:
        try:
            return self._values[column]
        except KeyError:
            raise KeyError(f"no column {column!r}") from None

    def as_dict(self) -> dict[str, Any]:
        """A copy of the row's values."""
        return dict(self._values)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Row) and self._values == other._values

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Row({self._values!r})"


class Table:
    """A main-memory table with a primary key and hash secondary indexes.

    Args:
        name: Table name (reports and error messages).
        columns: Ordered column names.
        key: The primary-key column (must be one of ``columns``).

    Example:
        >>> holdings = Table("holdings", ("symbol", "shares", "desk"), key="symbol")
        >>> holdings.upsert({"symbol": "HP", "shares": 100, "desk": "arb"})
        >>> holdings.get("HP")["shares"]
        100
    """

    def __init__(self, name: str, columns: Iterable[str], key: str) -> None:
        self.name = name
        self.columns = tuple(columns)
        if len(set(self.columns)) != len(self.columns):
            raise SchemaError(f"duplicate columns in {name}: {self.columns}")
        if not self.columns:
            raise SchemaError(f"table {name} needs at least one column")
        if key not in self.columns:
            raise SchemaError(f"key {key!r} is not a column of {name}")
        self.key = key
        self._rows: dict[Any, Row] = {}
        self._secondary: dict[str, dict[Any, set[Any]]] = {}
        self._listeners: list[Callable[[Row | None, Row | None], None]] = []
        self.reads = 0
        self.writes = 0

    def add_listener(
        self, listener: Callable[[Row | None, Row | None], None]
    ) -> None:
        """Subscribe to mutations as ``(old_row, new_row)`` pairs.

        ``old_row`` is None for inserts, ``new_row`` is None for deletes;
        both are set for replacements.  Derived views
        (:mod:`repro.db.views`) use this to maintain exact deltas.
        """
        self._listeners.append(listener)

    def _notify(self, old_row: Row | None, new_row: Row | None) -> None:
        for listener in self._listeners:
            listener(old_row, new_row)

    # ------------------------------------------------------------------
    # Index management
    # ------------------------------------------------------------------
    def create_index(self, column: str) -> None:
        """Build (or rebuild) a secondary hash index on ``column``."""
        if column not in self.columns:
            raise SchemaError(f"cannot index unknown column {column!r}")
        if column == self.key:
            raise SchemaError("the primary key is always indexed")
        index: dict[Any, set[Any]] = {}
        for key_value, row in self._rows.items():
            index.setdefault(row[column], set()).add(key_value)
        self._secondary[column] = index

    def indexed_columns(self) -> tuple[str, ...]:
        return tuple(self._secondary)

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def upsert(self, values: Mapping[str, Any]) -> None:
        """Insert a row, or replace the row with the same primary key."""
        self._check_schema(values)
        row = Row(dict(values))
        key_value = row[self.key]
        old = self._rows.get(key_value)
        if old is not None:
            self._unindex(key_value, old)
        self._rows[key_value] = row
        for column, index in self._secondary.items():
            index.setdefault(row[column], set()).add(key_value)
        self.writes += 1
        self._notify(old, row)

    def delete(self, key_value: Any) -> bool:
        """Delete by primary key; returns True if a row was removed."""
        row = self._rows.pop(key_value, None)
        if row is None:
            return False
        self._unindex(key_value, row)
        self.writes += 1
        self._notify(row, None)
        return True

    def update_where(
        self,
        predicate: Callable[[Row], bool],
        changes: Mapping[str, Any],
    ) -> int:
        """Apply column changes to every row matching ``predicate``.

        Only indexes on columns named in ``changes`` (and whose values
        actually change) are touched; buckets for the other indexed
        columns keep their identity.
        """
        bad = set(changes) - set(self.columns)
        if bad:
            raise SchemaError(f"unknown columns in update: {sorted(bad)}")
        if self.key in changes:
            raise SchemaError("cannot change the primary key in update_where")
        changed_indexes = [c for c in self._secondary if c in changes]
        touched = 0
        for key_value, row in list(self._rows.items()):
            if not predicate(row):
                continue
            merged = row.as_dict()
            merged.update(changes)
            new_row = Row(merged)
            for column in changed_indexes:
                old_value, new_value = row[column], new_row[column]
                if old_value == new_value:
                    continue
                index = self._secondary[column]
                bucket = index.get(old_value)
                if bucket is not None:
                    bucket.discard(key_value)
                    if not bucket:
                        del index[old_value]
                index.setdefault(new_value, set()).add(key_value)
            self._rows[key_value] = new_row
            self.writes += 1
            self._notify(row, new_row)
            touched += 1
        return touched

    # ------------------------------------------------------------------
    # Access paths
    # ------------------------------------------------------------------
    def get(self, key_value: Any) -> Row | None:
        """Primary-key point lookup."""
        self.reads += 1
        return self._rows.get(key_value)

    def lookup(self, column: str, value: Any) -> list[Row]:
        """Equality lookup; uses a secondary index when one exists."""
        self.reads += 1
        if column == self.key:
            row = self._rows.get(value)
            return [row] if row is not None else []
        index = self._secondary.get(column)
        if index is not None:
            return [self._rows[key] for key in sorted(index.get(value, ()), key=repr)]
        if column not in self.columns:
            raise SchemaError(f"unknown column {column!r}")
        return [row for row in self._rows.values() if row[column] == value]

    def scan(self, predicate: Callable[[Row], bool] | None = None) -> Iterator[Row]:
        """Full scan, optionally filtered.

        The read is counted when ``scan()`` is called — not lazily on
        first consumption of the iterator — so an abandoned scan still
        shows up in the counters.
        """
        self.reads += 1
        return self._scan_iter(predicate)

    def _scan_iter(
        self, predicate: Callable[[Row], bool] | None
    ) -> Iterator[Row]:
        for row in self._rows.values():
            if predicate is None or predicate(row):
                yield row

    def aggregate(
        self,
        column: str,
        fold: Callable[[float, float], float],
        initial: float = 0.0,
        predicate: Callable[[Row], bool] | None = None,
    ) -> float:
        """Fold a numeric column over (optionally filtered) rows."""
        if column not in self.columns:
            raise SchemaError(f"unknown column {column!r}")
        value = initial
        for row in self.scan(predicate):
            value = fold(value, row[column])
        return value

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, key_value: Any) -> bool:
        return key_value in self._rows

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_schema(self, values: Mapping[str, Any]) -> None:
        provided = set(values)
        expected = set(self.columns)
        if provided != expected:
            missing = sorted(expected - provided)
            extra = sorted(provided - expected)
            raise SchemaError(
                f"row does not match schema of {self.name}: "
                f"missing={missing} extra={extra}"
            )

    def _unindex(self, key_value: Any, row: Row) -> None:
        for column, index in self._secondary.items():
            bucket = index.get(row[column])
            if bucket is not None:
                bucket.discard(key_value)
                if not bucket:
                    del index[row[column]]
