"""The application-level update queue (paper sections 3.3 and 4.2).

The controller buffers received-but-not-yet-installed updates here.  The
queue is maintained in order of update *generation* time (not arrival), which
lets the system:

* install updates in generation order even when the network reorders them,
* discard expired updates (older than the MA maximum age) in constant time
  from the front, and
* serve either FIFO (oldest generation first) or LIFO (newest first).

The queue is bounded by ``UQmax``; when full, the oldest update is discarded
to admit a new one.

Two structural extensions from the paper's future-work list are provided:

* ``indexed=True`` builds a hash index keyed by target object and keeps only
  the newest update per object (valid for complete updates to snapshot
  views, where all but the newest update are worthless) — this bounds the
  queue naturally and makes per-object lookups O(1).
* an ``observer`` callback fires whenever the set of queued updates for an
  object changes, which the freshness ledger uses to maintain exact
  Unapplied-Update staleness intervals.

Internally the queue is a generation-sorted array with lazy deletion
(tombstones) plus a per-object dictionary, so pushes are ``O(log n)`` search
+ ``O(n)`` memmove (C speed), end pops are amortized ``O(1)``, and arbitrary
removals are ``O(1)`` flag writes.
"""

from __future__ import annotations

import bisect
from typing import Callable, Iterator

from repro.db.objects import ObjectClass, Update

ObjectKey = tuple[ObjectClass, int]
QueueObserver = Callable[[ObjectKey, float], None]


class UpdateQueue:
    """Bounded, generation-ordered queue of unapplied updates.

    Attributes:
        capacity: Maximum number of live queued updates (``UQmax``).
        indexed: Whether the newest-per-object hash index is active.
        total_pushed: Updates accepted into the queue.
        overflow_discards: Updates discarded to make room (oldest-first).
        expired_discards: Updates discarded because they exceeded max age.
        superseded_discards: Updates discarded by the index because a newer
            update for the same object was already queued or arrived.
    """

    # Compact the tombstone-laden arrays when dead entries outnumber live
    # ones and the queue is big enough for the rebuild to pay off.
    _COMPACT_THRESHOLD = 64

    def __init__(
        self,
        capacity: int,
        indexed: bool = False,
        observer: QueueObserver | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"update queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.indexed = indexed
        self.observer = observer
        self._keys: list[tuple[float, int]] = []
        self._items: list[Update] = []
        # Index of the first physically present entry; front pops advance
        # this pointer instead of shifting the arrays, and the consumed
        # prefix is trimmed in bulk once it grows large.
        self._head = 0
        self._by_object: dict[ObjectKey, list[Update]] = {}
        self._live = 0
        self.total_pushed = 0
        self.overflow_discards = 0
        self.expired_discards = 0
        self.superseded_discards = 0

    def reset_counters(self) -> None:
        """Zero the discard counters (warmup boundary); content stays."""
        self.total_pushed = 0
        self.overflow_discards = 0
        self.expired_discards = 0
        self.superseded_discards = 0

    # ------------------------------------------------------------------
    # Core mutations
    # ------------------------------------------------------------------
    def push(self, update: Update, now: float) -> list[Update]:
        """Enqueue an update, evicting as needed.

        Returns:
            Updates discarded to admit this one (overflow victims and, in
            indexed mode, superseded duplicates).  The incoming update itself
            appears in the list when the index proves it already worthless.
        """
        discarded: list[Update] = []
        key = update.key
        if self.indexed:
            newest = self.newest_for(key)
            if newest is not None and newest.generation_time >= update.generation_time:
                # A strictly fresher (or equal) update is already queued; the
                # newcomer is worthless for a snapshot view.
                self.superseded_discards += 1
                discarded.append(update)
                return discarded
            if newest is not None:
                # Replace every older queued update for this object.
                for old in list(self._by_object.get(key, ())):
                    self._remove_update(old)
                    self.superseded_discards += 1
                    discarded.append(old)

        while self._live >= self.capacity:
            victim = self._pop_front()
            if victim is None:  # pragma: no cover - capacity >= 1 guards this
                break
            self.overflow_discards += 1
            discarded.append(victim)
            self._notify(victim.key, now)

        sort_key = (update.generation_time, update.seq)
        index = bisect.bisect_right(self._keys, sort_key, self._head)
        self._keys.insert(index, sort_key)
        self._items.insert(index, update)
        update.queued = True
        self._live += 1
        self.total_pushed += 1
        self._by_object.setdefault(key, []).append(update)
        self._notify(key, now)
        return discarded

    def pop_next(self, lifo: bool, now: float) -> Update | None:
        """Dequeue per the service discipline (paper section 4.2)."""
        update = self._pop_back() if lifo else self._pop_front()
        if update is not None:
            self._notify(update.key, now)
        return update

    def remove(self, update: Update, now: float) -> None:
        """Remove a specific queued update (used by OD after applying it)."""
        if not update.queued:
            raise KeyError(f"update {update.seq} is not queued")
        self._remove_update(update)
        self._notify(update.key, now)

    def expire_older_than(self, cutoff_generation: float, now: float) -> list[Update]:
        """Discard every update generated before ``cutoff_generation``.

        Because the queue is generation-ordered this touches only the front
        (the paper's constant-time expiry check per scheduling point).
        """
        expired: list[Update] = []
        items = self._items
        while self._head < len(items):
            head = items[self._head]
            if not head.queued:
                self._head += 1
                continue
            if head.generation_time >= cutoff_generation:
                break
            self._head += 1
            head.queued = False
            self._live -= 1
            self._drop_from_object(head)
            self.expired_discards += 1
            expired.append(head)
            self._notify(head.key, now)
        self._maybe_trim()
        return expired

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def newest_for(self, key: ObjectKey) -> Update | None:
        """Newest queued update targeting ``key`` (O(k) in queued-per-object,
        O(1) when the queue is small per object, as it is in practice)."""
        candidates = self._by_object.get(key)
        if not candidates:
            return None
        return max(candidates, key=lambda u: (u.generation_time, u.seq))

    def newest_generation_for(self, key: ObjectKey) -> float | None:
        """Generation timestamp of the newest queued update for ``key``."""
        newest = self.newest_for(key)
        return None if newest is None else newest.generation_time

    def pending_for(self, key: ObjectKey) -> int:
        """Number of queued updates targeting ``key``."""
        return len(self._by_object.get(key, ()))

    def oldest(self) -> Update | None:
        """The queued update with the oldest generation, without removing."""
        items = self._items
        for index in range(self._head, len(items)):
            update = items[index]
            if update.queued:
                return update
        return None

    def newest(self) -> Update | None:
        """The queued update with the newest generation, without removing."""
        items = self._items
        for index in range(len(items) - 1, self._head - 1, -1):
            update = items[index]
            if update.queued:
                return update
        return None

    def peek_next(self, lifo: bool) -> Update | None:
        """The update :meth:`pop_next` would return, without removing it."""
        return self.newest() if lifo else self.oldest()

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def __iter__(self) -> Iterator[Update]:
        """Iterate live updates in generation order (inspection/testing)."""
        return (update for update in self._items if update.queued)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _notify(self, key: ObjectKey, now: float) -> None:
        if self.observer is not None:
            self.observer(key, now)

    def _pop_front(self) -> Update | None:
        items = self._items
        while self._head < len(items):
            update = items[self._head]
            self._head += 1
            if update.queued:
                update.queued = False
                self._live -= 1
                self._drop_from_object(update)
                self._maybe_trim()
                return update
        self._maybe_trim()
        return None

    def _pop_back(self) -> Update | None:
        keys, items = self._keys, self._items
        while len(items) > self._head:
            update = items[-1]
            keys.pop()
            items.pop()
            if update.queued:
                update.queued = False
                self._live -= 1
                self._drop_from_object(update)
                return update
        return None

    def _maybe_trim(self) -> None:
        """Physically discard the consumed prefix once it dominates."""
        head = self._head
        if head > self._COMPACT_THRESHOLD and head * 2 > len(self._items):
            del self._items[:head]
            del self._keys[:head]
            self._head = 0

    def _remove_update(self, update: Update) -> None:
        """Tombstone an update anywhere in the queue (O(1))."""
        update.queued = False
        self._live -= 1
        self._drop_from_object(update)
        dead = len(self._items) - self._live
        if dead > self._live and dead > self._COMPACT_THRESHOLD:
            self._compact()

    def _drop_from_object(self, update: Update) -> None:
        bucket = self._by_object.get(update.key)
        if bucket is None:  # pragma: no cover - internal invariant
            return
        bucket.remove(update)
        if not bucket:
            del self._by_object[update.key]

    def _compact(self) -> None:
        live_items = [update for update in self._items if update.queued]
        self._items = live_items
        self._keys = [(update.generation_time, update.seq) for update in live_items]
        self._head = 0


class PartitionedUpdateQueue:
    """Update queue split by importance (paper section 4.2 future work).

    Presents the same interface as :class:`UpdateQueue` but internally keeps
    one queue per view partition; :meth:`pop_next` serves the
    high-importance queue first.  Capacity is split evenly.
    """

    def __init__(
        self,
        capacity: int,
        indexed: bool = False,
        observer: QueueObserver | None = None,
    ) -> None:
        if capacity < 2:
            raise ValueError(f"partitioned queue needs capacity >= 2, got {capacity}")
        half = capacity // 2
        self.capacity = capacity
        self.indexed = indexed
        self.high = UpdateQueue(capacity - half, indexed=indexed, observer=observer)
        self.low = UpdateQueue(half, indexed=indexed, observer=observer)

    # -- observer must reach both halves ---------------------------------
    @property
    def observer(self) -> QueueObserver | None:
        return self.high.observer

    @observer.setter
    def observer(self, value: QueueObserver | None) -> None:
        self.high.observer = value
        self.low.observer = value

    def _part(self, klass: ObjectClass) -> UpdateQueue:
        return self.high if klass is ObjectClass.VIEW_HIGH else self.low

    def reset_counters(self) -> None:
        """Zero the discard counters of both halves (warmup boundary)."""
        self.high.reset_counters()
        self.low.reset_counters()

    def push(self, update: Update, now: float) -> list[Update]:
        return self._part(update.klass).push(update, now)

    def pop_next(self, lifo: bool, now: float) -> Update | None:
        update = self.high.pop_next(lifo, now)
        if update is not None:
            return update
        return self.low.pop_next(lifo, now)

    def peek_next(self, lifo: bool) -> Update | None:
        """The update :meth:`pop_next` would return, without removing it."""
        update = self.high.peek_next(lifo)
        if update is not None:
            return update
        return self.low.peek_next(lifo)

    def remove(self, update: Update, now: float) -> None:
        self._part(update.klass).remove(update, now)

    def expire_older_than(self, cutoff_generation: float, now: float) -> list[Update]:
        expired = self.high.expire_older_than(cutoff_generation, now)
        expired.extend(self.low.expire_older_than(cutoff_generation, now))
        return expired

    def newest_for(self, key: ObjectKey) -> Update | None:
        return self._part(key[0]).newest_for(key)

    def newest_generation_for(self, key: ObjectKey) -> float | None:
        return self._part(key[0]).newest_generation_for(key)

    def pending_for(self, key: ObjectKey) -> int:
        return self._part(key[0]).pending_for(key)

    def __len__(self) -> int:
        return len(self.high) + len(self.low)

    def __bool__(self) -> bool:
        return bool(self.high) or bool(self.low)

    def __iter__(self) -> Iterator[Update]:
        yield from self.high
        yield from self.low

    # -- aggregated counters ------------------------------------------------
    @property
    def total_pushed(self) -> int:
        return self.high.total_pushed + self.low.total_pushed

    @property
    def overflow_discards(self) -> int:
        return self.high.overflow_discards + self.low.overflow_discards

    @property
    def expired_discards(self) -> int:
        return self.high.expired_discards + self.low.expired_discards

    @property
    def superseded_discards(self) -> int:
        return self.high.superseded_discards + self.low.superseded_discards
