"""The OS (kernel) message queue (paper section 3.3).

Updates arrive over the network and sit in a small kernel-space FIFO until
the controller actively receives them.  The queue is bounded (``OSmax``);
messages arriving while it is full are dropped by the "kernel" — dropped
updates never become visible to the database, which under the MA staleness
definition lets view data go stale.

Only FIFO access is possible (the paper's justification for maintaining a
separate application-level update queue): the application can receive the
head message but cannot search or reorder.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from repro.db.objects import Update


class OSQueue:
    """Bounded kernel FIFO of undelivered updates.

    Attributes:
        capacity: Maximum number of buffered messages (``OSmax``).
        dropped: Count of messages discarded because the queue was full.
        total_enqueued: Count of messages accepted.
    """

    __slots__ = ("capacity", "_queue", "dropped", "total_enqueued")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"OS queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._queue: deque[Update] = deque()
        self.dropped = 0
        self.total_enqueued = 0

    def reset_counters(self) -> None:
        """Zero the drop/accept counters (warmup boundary); content stays."""
        self.dropped = 0
        self.total_enqueued = 0

    def offer(self, update: Update) -> bool:
        """Deliver an update from the network.

        Returns:
            True if buffered, False if dropped because the queue was full.
        """
        if len(self._queue) >= self.capacity:
            self.dropped += 1
            return False
        self._queue.append(update)
        self.total_enqueued += 1
        return True

    def receive(self) -> Update | None:
        """Receive (and remove) the head message, or None when empty."""
        if not self._queue:
            return None
        return self._queue.popleft()

    def receive_all(self) -> list[Update]:
        """Receive every buffered message at once (paper section 3.3)."""
        drained = list(self._queue)
        self._queue.clear()
        return drained

    def peek(self) -> Update | None:
        """The head message without removing it, or None when empty."""
        return self._queue[0] if self._queue else None

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    def __iter__(self) -> Iterator[Update]:
        """Iterate without consuming (test/inspection helper; a real kernel
        queue would not allow this — production code must not rely on it)."""
        return iter(self._queue)
