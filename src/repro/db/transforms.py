"""View complexity: transforming updates before installation (paper §2).

"In other cases, the update values must be transformed or combined with
other values before being stored.  For example, company names may have to
be changed to match local conventions, and running averages may have to
be computed.  Hence, the cost of installing a single update can vary..."

A *transformer* is a callable ``(previous_value, update_value) -> stored``
registered per view partition on the :class:`~repro.db.database.Database`.
Its CPU cost is modeled by ``SystemParams.x_transform`` instructions added
to every applied install in a transformed partition.
"""

from __future__ import annotations

from typing import Callable

Transformer = Callable[[float, float], float]


def identity() -> Transformer:
    """Store the update value as-is (the paper's simple case)."""

    def transform(previous: float, update: float) -> float:
        return update

    return transform


def scale(factor: float) -> Transformer:
    """Store ``factor * update`` — unit or currency conversion."""

    def transform(previous: float, update: float) -> float:
        return factor * update

    return transform


def exponential_average(alpha: float) -> Transformer:
    """Exponentially weighted running average of the stream.

    ``stored = alpha * update + (1 - alpha) * previous`` — the paper's
    "running averages may have to be computed" example.

    Args:
        alpha: Weight of the newest value, in (0, 1].
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")

    def transform(previous: float, update: float) -> float:
        return alpha * update + (1.0 - alpha) * previous

    return transform


def clamp(low: float, high: float) -> Transformer:
    """Clamp updates into a sanity range — sensor deglitching."""
    if high < low:
        raise ValueError(f"clamp range inverted: [{low}, {high}]")

    def transform(previous: float, update: float) -> float:
        if update < low:
            return low
        if update > high:
            return high
        return update

    return transform
