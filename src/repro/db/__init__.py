"""Main-memory real-time database substrate.

The portion of the STRIP system the paper's model depends on: a
partitioned object store (view data split into low/high importance, plus
general data), a bounded OS message queue, the generation-ordered update
queue, and the staleness definitions of paper section 2.
"""

from repro.db.database import Database
from repro.db.history import HistoryStore, Version
from repro.db.objects import DataObject, ObjectClass, Update
from repro.db.os_queue import OSQueue
from repro.db.sharding import ROUTER_VERSION, ShardRouter, stable_hash
from repro.db.staleness import (
    CombinedStaleness,
    MaxAgeArrivalStaleness,
    MaxAgeStaleness,
    StalenessChecker,
    UnappliedUpdateStaleness,
    make_staleness_checker,
)
from repro.db.table import Row, SchemaError, Table
from repro.db.transforms import clamp, exponential_average, identity, scale
from repro.db.update_queue import PartitionedUpdateQueue, UpdateQueue

__all__ = [
    "CombinedStaleness",
    "Database",
    "DataObject",
    "HistoryStore",
    "Version",
    "MaxAgeArrivalStaleness",
    "MaxAgeStaleness",
    "ObjectClass",
    "OSQueue",
    "PartitionedUpdateQueue",
    "ROUTER_VERSION",
    "ShardRouter",
    "Row",
    "SchemaError",
    "StalenessChecker",
    "Table",
    "UnappliedUpdateStaleness",
    "Update",
    "UpdateQueue",
    "clamp",
    "exponential_average",
    "identity",
    "make_staleness_checker",
    "scale",
    "stable_hash",
]
