"""Staleness definitions (paper section 2).

A staleness checker answers two questions the scheduler needs:

* ``is_stale(obj, now)`` — is this view object's current value stale?
* ``freshens(update, obj, now)`` — would applying this queued update make
  the object fresh (used by the On-Demand algorithm to decide whether a
  queue hit is worth applying)?

Four definitions are provided:

* :class:`MaxAgeStaleness` — the paper's MA: stale when the *generation*
  timestamp is older than ``max_age``.
* :class:`MaxAgeArrivalStaleness` — the MA variant the paper sketches where
  the RTDB *arrival* timestamp replaces the generation timestamp.
* :class:`UnappliedUpdateStaleness` — the paper's UU: stale while a newer
  update sits in the update queue.
* :class:`CombinedStaleness` — stale under either MA or UU (also sketched
  in section 2).
"""

from __future__ import annotations

from repro.config import SimulationConfig, StalenessPolicy
from repro.db.objects import DataObject, Update
from repro.db.update_queue import UpdateQueue


class StalenessChecker:
    """Interface shared by the staleness definitions."""

    #: True when the definition needs the update queue to answer
    #: ``is_stale`` (the UU family); the On-Demand algorithm must then scan
    #: the queue on *every* read (paper section 6.3).
    requires_queue_check = False

    def is_stale(self, obj: DataObject, now: float) -> bool:
        raise NotImplementedError

    def freshens(self, update: Update, obj: DataObject, now: float) -> bool:
        """Would installing ``update`` make ``obj`` fresh at ``now``?"""
        raise NotImplementedError


class MaxAgeStaleness(StalenessChecker):
    """MA — stale when ``now - generation_time > max_age``."""

    def __init__(self, max_age: float) -> None:
        if max_age <= 0:
            raise ValueError(f"max_age must be > 0, got {max_age}")
        self.max_age = max_age

    def is_stale(self, obj: DataObject, now: float) -> bool:
        return now - obj.generation_time > self.max_age

    def freshens(self, update: Update, obj: DataObject, now: float) -> bool:
        if update.generation_time <= obj.generation_time:
            return False  # not newer than what the database already holds
        return now - update.generation_time <= self.max_age


class MaxAgeArrivalStaleness(StalenessChecker):
    """MA variant — stale when the current value *arrived* too long ago.

    Under this definition an update always resets the clock on arrival, so
    any queued update freshens the object provided it is newer than the
    installed value.
    """

    def __init__(self, max_age: float) -> None:
        if max_age <= 0:
            raise ValueError(f"max_age must be > 0, got {max_age}")
        self.max_age = max_age

    def is_stale(self, obj: DataObject, now: float) -> bool:
        return now - obj.arrival_time > self.max_age

    def freshens(self, update: Update, obj: DataObject, now: float) -> bool:
        if update.generation_time <= obj.generation_time:
            return False
        return now - update.arrival_time <= self.max_age


class UnappliedUpdateStaleness(StalenessChecker):
    """UU — stale while the update queue holds a newer value for the object.

    "Newer" means a queued generation timestamp strictly greater than the
    installed one: an out-of-order straggler that the worthiness check would
    skip does not make the database value obsolete.
    """

    requires_queue_check = True

    def __init__(self, queue: UpdateQueue) -> None:
        self.queue = queue

    def is_stale(self, obj: DataObject, now: float) -> bool:
        newest = self.queue.newest_generation_for(obj.key)
        return newest is not None and newest > obj.generation_time

    def freshens(self, update: Update, obj: DataObject, now: float) -> bool:
        if update.generation_time <= obj.generation_time:
            return False
        # Applying anything but the newest queued update leaves the object
        # stale (a newer value would still be pending).
        newest = self.queue.newest_generation_for(obj.key)
        return newest is None or update.generation_time >= newest


class CombinedStaleness(StalenessChecker):
    """Stale under either the MA or the UU definition."""

    requires_queue_check = True

    def __init__(self, max_age: float, queue: UpdateQueue) -> None:
        self.by_age = MaxAgeStaleness(max_age)
        self.by_queue = UnappliedUpdateStaleness(queue)

    def is_stale(self, obj: DataObject, now: float) -> bool:
        return self.by_age.is_stale(obj, now) or self.by_queue.is_stale(obj, now)

    def freshens(self, update: Update, obj: DataObject, now: float) -> bool:
        return self.by_age.freshens(update, obj, now) and self.by_queue.freshens(
            update, obj, now
        )


def make_staleness_checker(
    config: SimulationConfig,
    queue: UpdateQueue,
) -> StalenessChecker:
    """Build the checker the configuration asks for."""
    policy = config.staleness
    max_age = config.transactions.max_age
    if policy is StalenessPolicy.MAX_AGE:
        return MaxAgeStaleness(max_age)
    if policy is StalenessPolicy.MAX_AGE_ARRIVAL:
        return MaxAgeArrivalStaleness(max_age)
    if policy is StalenessPolicy.UNAPPLIED_UPDATE:
        return UnappliedUpdateStaleness(queue)
    if policy is StalenessPolicy.COMBINED:
        return CombinedStaleness(max_age, queue)
    raise ValueError(f"unknown staleness policy: {policy!r}")
