"""Data objects and update records (paper sections 3.2 and 3.3).

The database holds two kinds of objects: *view* objects (imported
materialized views, refreshed only by the external update stream and split
into low/high importance sets) and *general* objects (read and written by
transactions, never stale in the paper's model).

An :class:`Update` is one message of the external stream: it carries the new
value of exactly one view object, a generation timestamp assigned at the
external source, and the arrival timestamp at the RTDB.
"""

from __future__ import annotations

import enum


class ObjectClass(enum.Enum):
    """Partition an object belongs to (paper Figure 1)."""

    VIEW_LOW = "view-low"
    VIEW_HIGH = "view-high"
    GENERAL = "general"

    @property
    def is_view(self) -> bool:
        return self is not ObjectClass.GENERAL


class DataObject:
    """One database object.

    View objects carry freshness bookkeeping: the generation timestamp of
    the current value (assigned by the external source), the time that value
    arrived at the RTDB, and the time it was installed.  For the partial-
    update extension each attribute keeps its own generation timestamp and
    the object's *effective* generation is the minimum (an object is only as
    fresh as its stalest attribute).

    Attributes:
        klass: Partition the object belongs to.
        object_id: Index within its partition.
        value: Current payload (opaque float in the simulation).
        generation_time: Effective generation timestamp of the current value.
        arrival_time: RTDB arrival timestamp of the current value (for the
            MA-arrival staleness variant).
        install_time: Simulated time the current value was installed.
        installs: Number of updates applied to this object.
    """

    __slots__ = (
        "klass",
        "object_id",
        "value",
        "generation_time",
        "arrival_time",
        "install_time",
        "installs",
        "attribute_generations",
    )

    def __init__(
        self,
        klass: ObjectClass,
        object_id: int,
        attribute_count: int = 1,
    ) -> None:
        if attribute_count < 1:
            raise ValueError("objects need at least one attribute")
        self.klass = klass
        self.object_id = object_id
        self.value = 0.0
        self.generation_time = 0.0
        self.arrival_time = 0.0
        self.install_time = 0.0
        self.installs = 0
        # Only allocate the per-attribute vector when it can diverge.
        if attribute_count > 1:
            self.attribute_generations: list[float] | None = [0.0] * attribute_count
        else:
            self.attribute_generations = None

    @property
    def key(self) -> tuple[ObjectClass, int]:
        """Hashable identity of the object."""
        return (self.klass, self.object_id)

    def age(self, now: float) -> float:
        """Age of the current value relative to its generation time."""
        return now - self.generation_time

    def apply_full(self, value: float, generation: float, arrival: float, now: float) -> None:
        """Install a complete update (all attributes refreshed)."""
        self.value = value
        self.generation_time = generation
        self.arrival_time = arrival
        self.install_time = now
        self.installs += 1
        if self.attribute_generations is not None:
            for index in range(len(self.attribute_generations)):
                self.attribute_generations[index] = generation

    def apply_partial(
        self,
        value: float,
        generation: float,
        arrival: float,
        now: float,
        attribute: int,
    ) -> None:
        """Install a partial update refreshing a single attribute.

        The effective generation becomes the minimum attribute generation,
        so a partial update only advances freshness once every attribute has
        been refreshed past the old value.
        """
        if self.attribute_generations is None:
            # Single-attribute objects degrade to full updates.
            self.apply_full(value, generation, arrival, now)
            return
        self.value = value
        self.attribute_generations[attribute % len(self.attribute_generations)] = generation
        self.generation_time = min(self.attribute_generations)
        self.arrival_time = arrival
        self.install_time = now
        self.installs += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DataObject {self.klass.value}#{self.object_id} "
            f"gen={self.generation_time:.3f} installs={self.installs}>"
        )


class Update:
    """One message of the external update stream (paper Figure 2).

    Attributes:
        seq: Globally unique arrival sequence number.
        klass: Target partition (always a view partition).
        object_id: Target object within the partition.
        value: New payload value.
        generation_time: Timestamp assigned at the external source.
        arrival_time: Time the update arrived at the RTDB (generation time
            plus network transit age).
        partial: True for the partial-update extension (refreshes one
            attribute instead of the whole object).
        attribute: Attribute index targeted by a partial update.
    """

    __slots__ = (
        "seq",
        "klass",
        "object_id",
        "value",
        "generation_time",
        "arrival_time",
        "partial",
        "attribute",
        "queued",
    )

    def __init__(
        self,
        seq: int,
        klass: ObjectClass,
        object_id: int,
        value: float,
        generation_time: float,
        arrival_time: float,
        partial: bool = False,
        attribute: int = 0,
    ) -> None:
        if not klass.is_view:
            raise ValueError("updates target view objects only")
        if arrival_time < generation_time:
            raise ValueError(
                f"update arrived ({arrival_time}) before it was generated "
                f"({generation_time})"
            )
        self.seq = seq
        self.klass = klass
        self.object_id = object_id
        self.value = value
        self.generation_time = generation_time
        self.arrival_time = arrival_time
        self.partial = partial
        self.attribute = attribute
        self.queued = False

    @property
    def key(self) -> tuple[ObjectClass, int]:
        """Hashable identity of the target object."""
        return (self.klass, self.object_id)

    def transit_age(self) -> float:
        """Network transit time (arrival minus generation)."""
        return self.arrival_time - self.generation_time

    def age(self, now: float) -> float:
        """Age relative to generation time."""
        return now - self.generation_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Update #{self.seq} {self.klass.value}#{self.object_id} "
            f"gen={self.generation_time:.3f}>"
        )
