"""Incremental derived views maintained by delta application (DBSP-style).

The paper's §3.2 motivates derived data — composite indices, position
tables, "running averages" — kept fresh by the update stream.  This module
supplies that layer: aggregate/group-by views declared over the base view
partitions (or over :class:`~repro.db.table.Table` rows), maintained
*incrementally*: every base install contributes a delta (``new - old``) to
per-group partial aggregates, so a single update touches O(1) view state.
Full recomputation survives only as a parity oracle
(:meth:`ViewRegistry.expected_values`).

Exactness is load-bearing.  Partial sums are kept as
:class:`fractions.Fraction` — every float is a dyadic rational, so
``Fraction(x)`` is exact and Fraction addition is associative — which makes
delta-maintained values *bit-identical* to a full recompute regardless of
the order installs arrived in, per shard and across shard merges
(:func:`merge_view_reports` ships partials as ``"num/den"`` strings).

Views are first-class stale-able objects: a view is stale whenever an
admitted-but-uninstalled base update would change it (the update queue
holds a strictly newer generation than some installed member — exactly the
worthiness condition the UU ledger tracks per object) or, for a deferred
view, while buffered deltas await a refresh.  The registry keeps an exact
per-view stale-interval ledger mirroring
:class:`~repro.metrics.freshness.UnappliedUpdateLedger`, and the fold over
all registered views surfaces as ``SimulationResult.fold_views``.

Sharding: each shard maintains its views over the members it owns, with
group keys computed from *global* object ids (via the key map installed by
the shard set / cluster worker), so shard-local states merge exactly.
Table-sourced views are process-local; registering one on a sharded
registry raises :class:`CrossShardViewError`.
"""

from __future__ import annotations

import heapq
import logging
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Iterable

from repro.db.objects import DataObject, ObjectClass
from repro.db.update_queue import ObjectKey

logger = logging.getLogger(__name__)

#: Supported aggregate kinds.
VIEW_KINDS = ("sum", "count", "mean", "top_k", "window_avg")

#: Kinds a Table-sourced view supports (windowing and top-K need install
#: times / the member keyspace, which table rows do not carry).
TABLE_VIEW_KINDS = ("sum", "count", "mean")

_PARTITIONS = {
    "low": ObjectClass.VIEW_LOW,
    "high": ObjectClass.VIEW_HIGH,
}
_PARTITION_NAMES = {klass: name for name, klass in _PARTITIONS.items()}


class ViewError(ValueError):
    """A view declaration or registration problem."""


class CrossShardViewError(ViewError):
    """The view cannot be maintained shard-locally.

    Raised when a Table-sourced view is registered on a sharded registry:
    table rows live in one process and carry no stable global keyspace, so
    their aggregates cannot be merged across shards.  Partition views never
    raise this — their group keys are global object ids and merge exactly.
    """


# ----------------------------------------------------------------------
# Exact rational plumbing
# ----------------------------------------------------------------------
def _rat(value: float) -> Fraction:
    """Exact rational of a float (floats are dyadic rationals)."""
    return Fraction(value)


def rational_str(value: Fraction) -> str:
    """Wire form of an exact partial sum (JSON-safe, lossless)."""
    return f"{value.numerator}/{value.denominator}"


def parse_rational(text: str) -> Fraction:
    """Inverse of :func:`rational_str`."""
    numerator, _, denominator = text.partition("/")
    return Fraction(int(numerator), int(denominator or "1"))


# ----------------------------------------------------------------------
# Declarations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ViewSpec:
    """Declaration of one aggregate view over a base view partition.

    Attributes:
        name: Unique registry name.
        kind: One of :data:`VIEW_KINDS`.
        klass: Source partition (``VIEW_LOW`` or ``VIEW_HIGH``).
        groups: Group-by fanout; member ``gid`` lands in group
            ``gid % groups`` (sum/count/mean only; top_k and window_avg
            aggregate the whole partition).
        k: Result size for ``top_k``.
        window: Lookback seconds for ``window_avg``.
        eager: True applies deltas inside each base install; False buffers
            them until an explicit :meth:`ViewRegistry.refresh` (the
            refresh-policy axis — cheap installs, stale-until-refreshed
            views).
    """

    name: str
    kind: str
    klass: ObjectClass
    groups: int = 1
    k: int = 8
    window: float = 1.0
    eager: bool = True

    def __post_init__(self) -> None:
        if not self.name or "=" in self.name or "," in self.name:
            raise ViewError(f"bad view name {self.name!r}")
        if self.kind not in VIEW_KINDS:
            raise ViewError(
                f"unknown view kind {self.kind!r}; known: {', '.join(VIEW_KINDS)}"
            )
        if not self.klass.is_view:
            raise ViewError(f"views derive from view partitions, not {self.klass}")
        if self.groups < 1:
            raise ViewError(f"groups must be >= 1, got {self.groups}")
        if self.k < 1:
            raise ViewError(f"k must be >= 1, got {self.k}")
        if self.window <= 0:
            raise ViewError(f"window must be > 0, got {self.window}")

    @property
    def partition(self) -> str:
        return _PARTITION_NAMES[self.klass]

    @classmethod
    def parse(cls, text: str) -> "ViewSpec":
        """Parse the CLI form ``NAME=KIND:PARTITION[,opt=value|deferred]``.

        Examples: ``by8=sum:low,groups=8`` · ``hot=top_k:high,k=4`` ·
        ``ravg=window_avg:low,window=0.5,deferred``.
        """
        name, sep, rest = text.partition("=")
        if not sep or not rest:
            raise ViewError(f"bad view spec {text!r}: want NAME=KIND:PARTITION[,...]")
        head, *options = rest.split(",")
        kind, sep, partition = head.partition(":")
        if not sep or partition not in _PARTITIONS:
            raise ViewError(
                f"bad view spec {text!r}: want KIND:low or KIND:high after '='"
            )
        kwargs: dict = {}
        for option in options:
            key, sep, value = option.partition("=")
            key = key.strip()
            if key == "deferred" and not sep:
                kwargs["eager"] = False
            elif key == "groups":
                kwargs["groups"] = int(value)
            elif key == "k":
                kwargs["k"] = int(value)
            elif key == "window":
                kwargs["window"] = float(value)
            else:
                raise ViewError(f"unknown view option {option!r} in {text!r}")
        return cls(name=name.strip(), kind=kind.strip(),
                   klass=_PARTITIONS[partition], **kwargs)

    def to_record(self) -> dict:
        """Wire/JSON form (for cluster workers and control records)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "partition": self.partition,
            "groups": self.groups,
            "k": self.k,
            "window": self.window,
            "eager": self.eager,
        }

    @classmethod
    def from_record(cls, record: dict) -> "ViewSpec":
        partition = record.get("partition")
        if partition not in _PARTITIONS:
            raise ViewError(f"bad partition {partition!r} in view record")
        return cls(
            name=str(record["name"]),
            kind=str(record["kind"]),
            klass=_PARTITIONS[partition],
            groups=int(record.get("groups", 1)),
            k=int(record.get("k", 8)),
            window=float(record.get("window", 1.0)),
            eager=bool(record.get("eager", True)),
        )


# ----------------------------------------------------------------------
# Aggregates: O(1) delta application + exact state
# ----------------------------------------------------------------------
class _Aggregate:
    """One view's materialized state; subclasses define the algebra."""

    def __init__(self, spec: ViewSpec) -> None:
        self.spec = spec

    def apply(self, gid: int, old_value: float, new_value: float,
              first: bool, install_time: float) -> None:
        raise NotImplementedError

    def values(self, now: float) -> object:
        """Readout (floats/ints, JSON-safe)."""
        raise NotImplementedError

    def state(self, now: float) -> dict:
        """Readout plus exact partials, for reports and shard merges."""
        raise NotImplementedError


class _SumAggregate(_Aggregate):
    def __init__(self, spec: ViewSpec) -> None:
        super().__init__(spec)
        self.sums = [Fraction(0)] * spec.groups

    def apply(self, gid, old_value, new_value, first, install_time) -> None:
        self.sums[gid % self.spec.groups] += _rat(new_value) - _rat(old_value)

    def values(self, now):
        return [float(total) for total in self.sums]

    def state(self, now):
        return {
            "values": self.values(now),
            "partials": {"sums": [rational_str(total) for total in self.sums]},
        }


class _CountAggregate(_Aggregate):
    def __init__(self, spec: ViewSpec) -> None:
        super().__init__(spec)
        self.counts = [0] * spec.groups

    def apply(self, gid, old_value, new_value, first, install_time) -> None:
        if first:
            self.counts[gid % self.spec.groups] += 1

    def values(self, now):
        return list(self.counts)

    def state(self, now):
        return {"values": self.values(now), "partials": {"counts": list(self.counts)}}


class _MeanAggregate(_Aggregate):
    def __init__(self, spec: ViewSpec) -> None:
        super().__init__(spec)
        self.sums = [Fraction(0)] * spec.groups
        self.counts = [0] * spec.groups

    def apply(self, gid, old_value, new_value, first, install_time) -> None:
        group = gid % self.spec.groups
        self.sums[group] += _rat(new_value) - _rat(old_value)
        if first:
            self.counts[group] += 1

    def values(self, now):
        return [
            float(total / count) if count else 0.0
            for total, count in zip(self.sums, self.counts)
        ]

    def state(self, now):
        return {
            "values": self.values(now),
            "partials": {
                "sums": [rational_str(total) for total in self.sums],
                "counts": list(self.counts),
            },
        }


def top_k_of(members: Iterable[tuple[int, float]], k: int) -> list[list]:
    """Top ``k`` of (gid, value) pairs: value desc, ties to the lower gid."""
    largest = heapq.nlargest(k, members, key=lambda item: (item[1], -item[0]))
    return [[gid, value] for gid, value in largest]


class _TopKAggregate(_Aggregate):
    """Partition-wide top-K of installed member values.

    Delta maintenance keeps the member→value map current in O(1) per
    install; the K-row readout materializes lazily (O(n log k)) so base
    installs never pay a sort.
    """

    def __init__(self, spec: ViewSpec) -> None:
        super().__init__(spec)
        self.members: dict[int, float] = {}

    def apply(self, gid, old_value, new_value, first, install_time) -> None:
        self.members[gid] = new_value

    def values(self, now):
        return top_k_of(self.members.items(), self.spec.k)

    def state(self, now):
        # The global top-K of a union is contained in the union of the
        # shard-local top-Ks, so shipping K rows per shard merges exactly.
        return {"values": self.values(now), "partials": {"top": self.values(now)}}


class _WindowAverageAggregate(_Aggregate):
    """Average over members installed within the last ``window`` seconds.

    Members are kept in an insertion-ordered dict; installs happen at
    non-decreasing times, so expiry only ever pops from the front (lazy,
    at readout).  The running (sum, count) partials stay exact Fractions.
    """

    def __init__(self, spec: ViewSpec) -> None:
        super().__init__(spec)
        self.entries: dict[int, tuple[float, float]] = {}  # gid -> (value, t)
        self.total = Fraction(0)
        self.count = 0

    def apply(self, gid, old_value, new_value, first, install_time) -> None:
        previous = self.entries.pop(gid, None)
        if previous is not None:
            self.total -= _rat(previous[0])
            self.count -= 1
        self.entries[gid] = (new_value, install_time)
        self.total += _rat(new_value)
        self.count += 1

    def _expire(self, now: float) -> None:
        horizon = now - self.spec.window
        while self.entries:
            gid, (value, installed) = next(iter(self.entries.items()))
            if installed > horizon:
                break
            del self.entries[gid]
            self.total -= _rat(value)
            self.count -= 1

    def values(self, now):
        self._expire(now)
        return float(self.total / self.count) if self.count else 0.0

    def state(self, now):
        self._expire(now)
        return {
            "values": self.values(now),
            "partials": {"sum": rational_str(self.total), "count": self.count},
        }


_AGGREGATES: dict[str, type[_Aggregate]] = {
    "sum": _SumAggregate,
    "count": _CountAggregate,
    "mean": _MeanAggregate,
    "top_k": _TopKAggregate,
    "window_avg": _WindowAverageAggregate,
}


# ----------------------------------------------------------------------
# Parity oracle: full recomputation with the same exact arithmetic
# ----------------------------------------------------------------------
def recompute(
    spec: ViewSpec,
    members: Iterable[tuple[int, DataObject]],
    now: float,
) -> object:
    """Recompute the view from scratch over (global id, object) members.

    The oracle the delta path is checked against: identical Fraction
    arithmetic, so any divergence is a maintenance bug, not float noise.
    """
    if spec.kind == "sum":
        sums = [Fraction(0)] * spec.groups
        for gid, obj in members:
            sums[gid % spec.groups] += _rat(obj.value)
        return [float(total) for total in sums]
    if spec.kind == "count":
        counts = [0] * spec.groups
        for gid, obj in members:
            if obj.installs > 0:
                counts[gid % spec.groups] += 1
        return counts
    if spec.kind == "mean":
        sums = [Fraction(0)] * spec.groups
        counts = [0] * spec.groups
        for gid, obj in members:
            sums[gid % spec.groups] += _rat(obj.value)
            if obj.installs > 0:
                counts[gid % spec.groups] += 1
        return [
            float(total / count) if count else 0.0
            for total, count in zip(sums, counts)
        ]
    if spec.kind == "top_k":
        installed = [(gid, obj.value) for gid, obj in members if obj.installs > 0]
        return top_k_of(installed, spec.k)
    if spec.kind == "window_avg":
        horizon = now - spec.window
        total = Fraction(0)
        count = 0
        for gid, obj in members:
            if obj.installs > 0 and obj.install_time > horizon:
                total += _rat(obj.value)
                count += 1
        return float(total / count) if count else 0.0
    raise ViewError(f"unknown view kind {spec.kind!r}")


# ----------------------------------------------------------------------
# Table-sourced views (process-local)
# ----------------------------------------------------------------------
class TableView:
    """A sum/count/mean group-by over a :class:`~repro.db.table.Table`.

    Maintained by the table's mutation listener: every upsert / delete /
    in-place update contributes an exact delta.  Table rows are general
    data in the paper's model — written by transactions, never stale — so
    table views carry no staleness ledger.
    """

    def __init__(self, name: str, table, kind: str, value_column: str,
                 group_column: str | None = None) -> None:
        if kind not in TABLE_VIEW_KINDS:
            raise ViewError(
                f"table views support {', '.join(TABLE_VIEW_KINDS)}, not {kind!r}"
            )
        self.name = name
        self.table = table
        self.kind = kind
        self.value_column = value_column
        self.group_column = group_column
        self.sums: dict[object, Fraction] = {}
        self.counts: dict[object, int] = {}
        self.refreshes = 0
        for row in table.scan():
            self._add(row)
        table.add_listener(self._on_mutation)

    def _group_of(self, row) -> object:
        return row[self.group_column] if self.group_column else "all"

    def _add(self, row) -> None:
        group = self._group_of(row)
        self.sums[group] = self.sums.get(group, Fraction(0)) + _rat(
            float(row[self.value_column])
        )
        self.counts[group] = self.counts.get(group, 0) + 1

    def _remove(self, row) -> None:
        group = self._group_of(row)
        self.sums[group] -= _rat(float(row[self.value_column]))
        self.counts[group] -= 1
        if self.counts[group] == 0:
            del self.counts[group]
            del self.sums[group]

    def _on_mutation(self, old_row, new_row) -> None:
        if old_row is not None:
            self._remove(old_row)
        if new_row is not None:
            self._add(new_row)
        self.refreshes += 1

    def values(self) -> dict:
        if self.kind == "sum":
            return {str(g): float(total) for g, total in self.sums.items()}
        if self.kind == "count":
            return {str(g): count for g, count in self.counts.items()}
        return {
            str(g): float(self.sums[g] / self.counts[g]) for g in self.counts
        }

    def expected_values(self) -> dict:
        """Full-recompute oracle over a fresh table scan."""
        sums: dict[object, Fraction] = {}
        counts: dict[object, int] = {}
        for row in self.table.scan():
            group = self._group_of(row)
            sums[group] = sums.get(group, Fraction(0)) + _rat(
                float(row[self.value_column])
            )
            counts[group] = counts.get(group, 0) + 1
        if self.kind == "sum":
            return {str(g): float(total) for g, total in sums.items()}
        if self.kind == "count":
            return {str(g): count for g, count in counts.items()}
        return {str(g): float(sums[g] / counts[g]) for g in counts}

    def report(self) -> dict:
        return {
            "source": "table",
            "kind": self.kind,
            "stale": False,
            "refreshes": self.refreshes,
            "values": self.values(),
        }


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------
class ViewRegistry:
    """Registered views plus their delta maintenance and staleness ledger.

    One registry per pipeline (shard).  Built unconditionally by
    ``build_parts`` but completely passive — the database install hook and
    the update-queue observer are only attached when the first view is
    registered, so unregistered runs pay nothing.
    """

    def __init__(self) -> None:
        self.specs: dict[str, ViewSpec] = {}
        self.table_views: dict[str, TableView] = {}
        self._aggregates: dict[str, _Aggregate] = {}
        self._by_klass: dict[ObjectClass, list[str]] = {}
        self._pending: dict[str, list[tuple[int, float, float, bool, float]]] = {}
        # Per-view exact stale-interval ledger (mirrors UnappliedUpdateLedger).
        self.stale_seconds: dict[str, float] = {}
        self._stale_since: dict[str, float] = {}
        self._stale_keys: dict[ObjectClass, set[ObjectKey]] = {}
        self.measure_start = 0.0
        self._finalized = False
        self._final_now: float | None = None
        # Counters.
        self.refreshes = 0
        self.refresh_counts: dict[str, int] = {}
        self.deltas_buffered = 0
        # Wiring.
        self._database = None
        self._queue = None
        self._controller = None
        self._cpu = None
        self._seconds_per_refresh = 0.0
        self.x_view_refresh = 0
        self._key_map: Callable[[ObjectClass, int], int] | None = None
        self._hooked = False
        self._eager_instructions: dict[ObjectClass, int] = {}
        #: Test hook: recompute and compare after every applied delta.
        self.self_check = False

    # -- wiring ----------------------------------------------------------
    def bind(self, database, queue, *, controller=None,
             x_view_refresh: int = 0, cpu=None,
             seconds_per_refresh: float = 0.0) -> None:
        """Attach the pipeline; hooks are deferred to first registration."""
        self._database = database
        self._queue = queue
        self._controller = controller
        self.x_view_refresh = x_view_refresh
        self._cpu = cpu
        self._seconds_per_refresh = seconds_per_refresh

    def set_key_map(self, key_map: Callable[[ObjectClass, int], int] | None) -> None:
        """Install the shard-local→global id map (before registering).

        ``key_map(klass, local_id) -> global_id``; None means ids are
        already global (single pipeline).  A non-None map marks the
        registry sharded, which rejects Table-sourced views.
        """
        if self.specs or self.table_views:
            raise ViewError("set the key map before registering views")
        self._key_map = key_map

    @property
    def sharded(self) -> bool:
        return self._key_map is not None

    def _gid(self, klass: ObjectClass, local_id: int) -> int:
        if self._key_map is None:
            return local_id
        return self._key_map(klass, local_id)

    def _ensure_hooked(self) -> None:
        if self._hooked:
            return
        if self._database is None or self._queue is None:
            raise ViewError("bind() the registry before registering views")
        self._database.views = self
        previous = self._queue.observer
        if previous is None:
            self._queue.observer = self._on_queue_event
        else:
            def chained(key, now, _previous=previous):
                _previous(key, now)
                self._on_queue_event(key, now)
            self._queue.observer = chained
        if self._controller is not None:
            self._controller.views = self
        self._hooked = True

    # -- registration ----------------------------------------------------
    def __len__(self) -> int:
        return len(self.specs) + len(self.table_views)

    def register(self, spec: ViewSpec, now: float = 0.0) -> ViewSpec:
        """Register a partition view and materialize its current state."""
        if spec.name in self.specs or spec.name in self.table_views:
            raise ViewError(f"view {spec.name!r} is already registered")
        self._ensure_hooked()
        aggregate = _AGGREGATES[spec.kind](spec)
        # Materialize from the members already installed, so mid-run
        # registration starts consistent with the database.
        for obj in self._database.partition(spec.klass):
            if obj.installs > 0:
                aggregate.apply(
                    self._gid(spec.klass, obj.object_id),
                    0.0, obj.value, True, obj.install_time,
                )
        self.specs[spec.name] = spec
        self._aggregates[spec.name] = aggregate
        self._by_klass.setdefault(spec.klass, []).append(spec.name)
        if not spec.eager:
            self._pending[spec.name] = []
        self.stale_seconds[spec.name] = 0.0
        self.refresh_counts[spec.name] = 0
        self._recount_eager_instructions()
        if spec.klass not in self._stale_keys:
            self._stale_keys[spec.klass] = {
                obj.key
                for obj in self._database.partition(spec.klass)
                if self._key_is_stale(obj.key)
            }
        self._refresh_view_staleness(spec.name, now)
        return spec

    def register_table(self, name: str, table, kind: str, value_column: str,
                       group_column: str | None = None) -> TableView:
        """Register a process-local Table-sourced view."""
        if self.sharded:
            raise CrossShardViewError(
                f"table view {name!r}: Table rows are process-local and have "
                "no global keyspace; register table views on unsharded "
                "pipelines only"
            )
        if name in self.specs or name in self.table_views:
            raise ViewError(f"view {name!r} is already registered")
        view = TableView(name, table, kind, value_column, group_column)
        self.table_views[name] = view
        return view

    # -- base hooks ------------------------------------------------------
    def note_base_install(self, obj: DataObject, old_value: float,
                          now: float) -> None:
        """Called by :meth:`Database.install` after every applied update."""
        klass = obj.klass
        names = self._by_klass.get(klass)
        if names is None:
            return
        first = obj.installs == 1
        gid = self._gid(klass, obj.object_id)
        for name in names:
            spec = self.specs[name]
            if spec.eager:
                self._aggregates[name].apply(gid, old_value, obj.value, first, now)
                self.refreshes += 1
                self.refresh_counts[name] += 1
            else:
                self._pending[name].append((gid, old_value, obj.value, first, now))
                self.deltas_buffered += 1
        # The install may have caught the object up to (or past) the newest
        # queued generation — re-evaluate its contribution to staleness.
        self._note_key(obj.key, now)
        if self.self_check:
            self.assert_parity(now)

    def _on_queue_event(self, key: ObjectKey, now: float) -> None:
        if key[0] in self._stale_keys:
            self._note_key(key, now)

    def _key_is_stale(self, key: ObjectKey) -> bool:
        newest = self._queue.newest_generation_for(key)
        if newest is None:
            return False
        return newest > self._database.view_object(*key).generation_time

    def _note_key(self, key: ObjectKey, now: float) -> None:
        stale_keys = self._stale_keys.get(key[0])
        if stale_keys is None:
            return
        if self._key_is_stale(key):
            stale_keys.add(key)
        else:
            stale_keys.discard(key)
        for name in self._by_klass.get(key[0], ()):
            self._refresh_view_staleness(name, now)

    def _view_is_stale(self, name: str) -> bool:
        spec = self.specs[name]
        if self._stale_keys.get(spec.klass):
            return True
        return bool(self._pending.get(name))

    def _refresh_view_staleness(self, name: str, now: float) -> None:
        stale = self._view_is_stale(name)
        open_since = self._stale_since.get(name)
        if stale and open_since is None:
            self._stale_since[name] = now
        elif not stale and open_since is not None:
            self.stale_seconds[name] += now - open_since
            del self._stale_since[name]

    # -- refresh (deferred views) ----------------------------------------
    def pending_deltas(self, name: str | None = None) -> int:
        if name is not None:
            return len(self._pending.get(name, ()))
        return sum(len(buffered) for buffered in self._pending.values())

    def refresh(self, now: float) -> int:
        """Apply every buffered delta; returns how many were applied.

        Refresh work is charged to update CPU (rho_u) when the registry is
        bound to a cost model, mirroring the controller's eager-path charge.
        """
        applied = 0
        for name, buffered in self._pending.items():
            if not buffered:
                continue
            aggregate = self._aggregates[name]
            for gid, old_value, new_value, first, install_time in buffered:
                aggregate.apply(gid, old_value, new_value, first, install_time)
            applied += len(buffered)
            self.refreshes += len(buffered)
            self.refresh_counts[name] += len(buffered)
            buffered.clear()
            self._refresh_view_staleness(name, now)
        if applied and self._cpu is not None and self._seconds_per_refresh > 0:
            self._cpu.charge("update", applied * self._seconds_per_refresh)
        return applied

    def eager_refresh_instructions(self, klass: ObjectClass) -> int:
        """Instructions one install into ``klass`` adds for eager views."""
        return self._eager_instructions.get(klass, 0)

    def _recount_eager_instructions(self) -> None:
        counts: dict[ObjectClass, int] = {}
        for spec in self.specs.values():
            if spec.eager:
                counts[spec.klass] = counts.get(spec.klass, 0) + 1
        self._eager_instructions = {
            klass: count * self.x_view_refresh for klass, count in counts.items()
        }

    # -- measurement lifecycle (FreshnessLedger conventions) -------------
    def begin_measurement(self, now: float) -> None:
        self.measure_start = now
        for name in self.stale_seconds:
            self.stale_seconds[name] = 0.0
        for name in self._stale_since:
            self._stale_since[name] = now
        self.refreshes = 0
        self.deltas_buffered = 0
        for name in self.refresh_counts:
            self.refresh_counts[name] = 0

    def finalize(self, now: float) -> None:
        """Apply outstanding deferred deltas and close open stale intervals."""
        if self._finalized:
            return
        self.refresh(now)
        for name, since in self._stale_since.items():
            self.stale_seconds[name] += now - since
        self._stale_since.clear()
        self._finalized = True
        self._final_now = now

    def snapshot_stale_seconds(self, now: float) -> dict[str, float]:
        """Closed intervals plus open tails at ``now``, without mutating."""
        snapshot = dict(self.stale_seconds)
        for name, since in self._stale_since.items():
            snapshot[name] += now - since
        return snapshot

    def stale_fraction(self, duration: float) -> float:
        """The fold over all registered partition views (end of run)."""
        if not self.specs:
            return 0.0
        if not self._finalized:
            raise RuntimeError("call finalize() before reading stale fractions")
        if duration <= 0:
            raise ValueError(f"duration must be > 0, got {duration}")
        return sum(self.stale_seconds.values()) / (duration * len(self.specs))

    def snapshot_stale_fraction(self, now: float, duration: float) -> float:
        """Mid-run fold over all registered partition views."""
        if not self.specs or duration <= 0:
            return 0.0
        return sum(self.snapshot_stale_seconds(now).values()) / (
            duration * len(self.specs)
        )

    # -- parity oracle ---------------------------------------------------
    def _members(self, klass: ObjectClass) -> list[tuple[int, DataObject]]:
        return [
            (self._gid(klass, obj.object_id), obj)
            for obj in self._database.partition(klass)
        ]

    def expected_values(self, name: str, now: float) -> object:
        """Full recomputation of one view (the parity oracle)."""
        spec = self.specs[name]
        return recompute(spec, self._members(spec.klass), now)

    def assert_parity(self, now: float) -> None:
        """Check every *caught-up* view against full recomputation.

        Deferred views with buffered deltas are intentionally behind the
        base (that is their staleness) and are skipped until refreshed.
        """
        for name in self.specs:
            if self._pending.get(name):
                continue
            maintained = self._aggregates[name].values(now)
            expected = self.expected_values(name, now)
            if maintained != expected:
                raise AssertionError(
                    f"view {name!r} diverged from recompute at t={now}: "
                    f"delta={maintained!r} oracle={expected!r}"
                )
        for name, view in self.table_views.items():
            maintained = view.values()
            expected = view.expected_values()
            if maintained != expected:
                raise AssertionError(
                    f"table view {name!r} diverged from recompute: "
                    f"delta={maintained!r} oracle={expected!r}"
                )

    # -- reporting -------------------------------------------------------
    def report(self, now: float | None = None) -> dict:
        """Per-view state for ``extras["views"]`` (JSON-safe, mergeable)."""
        if now is None:
            now = self._final_now if self._final_now is not None else 0.0
        stale_seconds = self.snapshot_stale_seconds(now)
        out: dict[str, dict] = {}
        for name, spec in self.specs.items():
            entry = {
                "source": "partition",
                "stale": self._view_is_stale(name),
                "pending_deltas": self.pending_deltas(name),
                "refreshes": self.refresh_counts[name],
                "stale_seconds": stale_seconds[name],
                **spec.to_record(),
            }
            entry.update(self._aggregates[name].state(now))
            out[name] = entry
        for name, view in self.table_views.items():
            out[name] = view.report()
        return out


# ----------------------------------------------------------------------
# Exact cross-shard merge of view reports
# ----------------------------------------------------------------------
def merge_view_reports(reports: "list[dict]") -> dict:
    """Merge per-shard ``extras["views"]`` dicts into the global view state.

    Partial sums travel as exact rationals, so the merged values are
    bit-identical to an unsharded maintenance of the same installs.  Every
    shard registers the same view specs, so names must agree.
    """
    merged: dict[str, dict] = {}
    for report in reports:
        for name, entry in report.items():
            if entry.get("source") == "table":
                raise CrossShardViewError(
                    f"table view {name!r} leaked into a sharded merge"
                )
            if name not in merged:
                merged[name] = {
                    key: value for key, value in entry.items()
                    if key not in ("values", "partials")
                }
                merged[name]["partials"] = _copy_partials(entry["partials"])
                continue
            target = merged[name]
            if target.get("kind") != entry.get("kind"):
                raise ViewError(
                    f"view {name!r} kind disagrees across shards: "
                    f"{target.get('kind')!r} != {entry.get('kind')!r}"
                )
            target["stale"] = target["stale"] or entry["stale"]
            target["pending_deltas"] += entry["pending_deltas"]
            target["refreshes"] += entry["refreshes"]
            target["stale_seconds"] += entry["stale_seconds"]
            _merge_partials(entry["kind"], target["partials"], entry["partials"],
                            k=int(entry.get("k", 1)))
    for entry in merged.values():
        entry["values"] = _values_from_partials(entry["kind"], entry["partials"])
    return merged


def _copy_partials(partials: dict) -> dict:
    copied: dict = {}
    for key, value in partials.items():
        copied[key] = list(value) if isinstance(value, list) else value
    return copied


def _merge_partials(kind: str, target: dict, source: dict, *, k: int) -> None:
    if kind == "sum":
        target["sums"] = _sum_rationals(target["sums"], source["sums"])
    elif kind == "count":
        target["counts"] = [
            a + b for a, b in zip(target["counts"], source["counts"])
        ]
    elif kind == "mean":
        target["sums"] = _sum_rationals(target["sums"], source["sums"])
        target["counts"] = [
            a + b for a, b in zip(target["counts"], source["counts"])
        ]
    elif kind == "top_k":
        pool = [tuple(row) for row in target["top"]] + [
            tuple(row) for row in source["top"]
        ]
        target["top"] = top_k_of(pool, k)
    elif kind == "window_avg":
        total = parse_rational(target["sum"]) + parse_rational(source["sum"])
        target["sum"] = rational_str(total)
        target["count"] += source["count"]
    else:
        raise ViewError(f"unknown view kind {kind!r}")


def _sum_rationals(left: "list[str]", right: "list[str]") -> "list[str]":
    return [
        rational_str(parse_rational(a) + parse_rational(b))
        for a, b in zip(left, right)
    ]


def _values_from_partials(kind: str, partials: dict) -> object:
    if kind == "sum":
        return [float(parse_rational(total)) for total in partials["sums"]]
    if kind == "count":
        return list(partials["counts"])
    if kind == "mean":
        return [
            float(parse_rational(total) / count) if count else 0.0
            for total, count in zip(partials["sums"], partials["counts"])
        ]
    if kind == "top_k":
        return [list(row) for row in partials["top"]]
    if kind == "window_avg":
        count = partials["count"]
        return float(parse_rational(partials["sum"]) / count) if count else 0.0
    raise ViewError(f"unknown view kind {kind!r}")
