"""Traffic sources for the live runtime.

Two modes, matching the two ways the simulator gets its workload:

* **Synthesis** — Poisson update/transaction arrivals drawn from the same
  :class:`~repro.workload.updates.UpdateStreamGenerator` /
  :class:`~repro.workload.transactions.TransactionGenerator` draw methods
  the simulator uses, seeded through the same named
  :class:`~repro.sim.streams.StreamFamily`.  A live run and a simulated
  run with the same seed therefore see the same *sequence* of updates and
  transactions; only the arrival timestamps differ (wall-clock jitter vs.
  exact exponential gaps).
* **Replay** — a recorded trace (from
  :func:`repro.workload.trace.load_trace` or a ``TraceRecorder``) is
  scheduled at its recorded arrival times, bit-for-bit.

The generator paces itself on the runtime's clock, so the same code drives
a :class:`~repro.live.clock.WallClock` (real traffic) or an
:class:`~repro.sim.engine.Engine` (deterministic parity tests).
"""

from __future__ import annotations

from typing import Iterable

from repro.config import UpdatePattern
from repro.db.objects import Update
from repro.live.runtime import LiveRuntime, TransactionHandle
from repro.live.wire import DEFAULT_BATCH_MAX
from repro.sim.events import Event
from repro.sim.streams import StreamFamily
from repro.workload.transactions import TransactionGenerator, TransactionSpec
from repro.workload.updates import UpdateStreamGenerator


class LoadGenerator:
    """Feeds a :class:`LiveRuntime` synthesized or replayed traffic.

    Args:
        runtime: The runtime to drive.
        seed: Root seed for the draw streams; defaults to the runtime
            config's seed, giving draw-sequence parity with a simulator
            run of the same config.
        batch_max: Cap on how many due arrivals one catch-up delivers as
            a single :meth:`LiveRuntime.ingest_batch` call (``1`` =
            per-record delivery).  Pacing is unaffected: batching changes
            how overdue arrivals are *handed over*, never when they are
            planned.

    Attributes:
        updates_sent / updates_dropped: Ingest attempts and OS-queue drops.
        transactions_sent: Submitted transaction count.
        handles: One :class:`TransactionHandle` per submitted transaction.
    """

    def __init__(
        self,
        runtime: LiveRuntime,
        *,
        seed: int | None = None,
        batch_max: int = DEFAULT_BATCH_MAX,
    ) -> None:
        self.runtime = runtime
        self.batch_max = max(1, batch_max)
        self.clock = runtime.clock
        config = runtime.config
        if config.updates.pattern is not UpdatePattern.APERIODIC:
            raise ValueError(
                "LoadGenerator synthesizes the aperiodic Poisson baseline; "
                "for periodic/bursty patterns record a simulator trace and "
                "replay it"
            )
        streams = StreamFamily(seed if seed is not None else config.seed)
        # The generators are used purely as draw sources (draw_update /
        # draw_spec / next_interarrival); pacing stays here so stop() can
        # cancel cleanly.
        self._update_gen = UpdateStreamGenerator(
            config, self.clock, streams, runtime.ingest
        )
        self._txn_gen = TransactionGenerator(
            config, self.clock, streams, runtime.submit
        )
        self.updates_sent = 0
        self.updates_dropped = 0
        self.transactions_sent = 0
        self.handles: list[TransactionHandle] = []
        self._running = False
        self._update_event: Event | None = None
        self._txn_event: Event | None = None
        self._next_update_at = 0.0
        self._next_txn_at = 0.0

    # ------------------------------------------------------------------
    # Synthesis
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin Poisson synthesis of both arrival processes."""
        if self._running:
            raise RuntimeError("load generator is already running")
        self._running = True
        self._schedule_update()
        if self.runtime.config.transactions.arrival_rate > 0:
            self._schedule_transaction()

    def stop(self) -> None:
        """Stop generating; already-delivered traffic keeps flowing."""
        self._running = False
        if self._update_event is not None:
            self._update_event.cancel()
            self._update_event = None
        if self._txn_event is not None:
            self._txn_event.cancel()
            self._txn_event = None

    def _schedule_update(self) -> None:
        self._next_update_at = self.clock.now + self._update_gen.next_interarrival()
        self._update_event = self.clock.schedule_at(
            self._next_update_at, self._fire_update
        )

    def _fire_update(self) -> None:
        """Deliver the due arrival, then catch up on any already-late ones.

        Pacing is absolute: each planned arrival time is the previous one
        plus a drawn exponential gap, so the offered rate holds at
        ``lambda_u`` even when dispatch runs late — overdue arrivals are
        delivered in a batch from this one event instead of silently
        stretching the process.
        """
        if not self._running:
            return
        clock = self.clock
        batch: list[Update] = []
        batch_max = self.batch_max
        while True:
            batch.append(self._update_gen.draw_update(clock.now))
            self._next_update_at += self._update_gen.next_interarrival()
            if len(batch) >= batch_max:
                self._deliver(batch)
                batch = []
            if self._next_update_at > clock.now or not self._running:
                break
        if batch:
            self._deliver(batch)
        self._update_event = self.clock.schedule_at(
            self._next_update_at, self._fire_update
        )

    def _deliver(self, batch: "list[Update]") -> None:
        self.updates_sent += len(batch)
        self.updates_dropped += len(batch) - self.runtime.ingest_batch(batch)

    def _schedule_transaction(self) -> None:
        self._next_txn_at = self.clock.now + self._txn_gen.next_interarrival()
        self._txn_event = self.clock.schedule_at(
            self._next_txn_at, self._fire_transaction
        )

    def _fire_transaction(self) -> None:
        if not self._running:
            return
        clock = self.clock
        while True:
            spec = self._txn_gen.draw_spec(clock.now)
            self.transactions_sent += 1
            self.handles.append(self.runtime.submit(spec))
            self._next_txn_at += self._txn_gen.next_interarrival()
            if self._next_txn_at > clock.now or not self._running:
                break
        self._txn_event = self.clock.schedule_at(
            self._next_txn_at, self._fire_transaction
        )

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def replay(self, items: Iterable[Update | TransactionSpec]) -> int:
        """Schedule a recorded trace at its recorded arrival times.

        On a wall clock, items whose arrival time is already past fire
        immediately (late); on an engine clock the times replay exactly.

        Returns:
            The number of items scheduled.
        """
        count = 0
        for item in items:
            if isinstance(item, Update):
                self.clock.schedule_at(item.arrival_time, self._replay_update, item)
            elif isinstance(item, TransactionSpec):
                self.clock.schedule_at(item.arrival_time, self._replay_txn, item)
            else:
                raise TypeError(f"unexpected trace item: {type(item).__name__}")
            count += 1
        return count

    def _replay_update(self, update: Update) -> None:
        self.updates_sent += 1
        if not self.runtime.ingest(update):
            self.updates_dropped += 1

    def _replay_txn(self, spec: TransactionSpec) -> None:
        self.transactions_sent += 1
        self.handles.append(self.runtime.submit(spec))

    # ------------------------------------------------------------------
    # Outcome tallies
    # ------------------------------------------------------------------
    def outcome_counts(self) -> dict:
        """Tally resolved transaction outcomes (in-flight ones excluded)."""
        counts: dict[str, int] = {}
        for handle in self.handles:
            if handle.outcome is not None:
                counts[handle.outcome] = counts.get(handle.outcome, 0) + 1
        return counts
