"""Traffic sources for the live runtime.

Two modes, matching the two ways the simulator gets its workload:

* **Synthesis** — Poisson update/transaction arrivals drawn from the same
  :class:`~repro.workload.updates.UpdateStreamGenerator` /
  :class:`~repro.workload.transactions.TransactionGenerator` draw methods
  the simulator uses, seeded through the same named
  :class:`~repro.sim.streams.StreamFamily`.  A live run and a simulated
  run with the same seed therefore see the same *sequence* of updates and
  transactions; only the arrival timestamps differ (wall-clock jitter vs.
  exact exponential gaps).
* **Replay** — a recorded trace (from
  :func:`repro.workload.trace.load_trace` or a ``TraceRecorder``) is
  scheduled at its recorded arrival times, bit-for-bit.

The generator paces itself on the runtime's clock, so the same code drives
a :class:`~repro.live.clock.WallClock` (real traffic) or an
:class:`~repro.sim.engine.Engine` (deterministic parity tests).

For traffic that crosses a socket, :class:`WireClient` is the resilient
counterpart: a JSONL/TCP client (used by ``repro-live loadgen``) that
connects through :func:`~repro.live.wire.connect_with_retry` and
transparently reconnects when the server — e.g. a shard worker being
restarted by the cluster supervisor — drops the connection mid-stream.
"""

from __future__ import annotations

import asyncio
import logging
from dataclasses import replace as dc_replace
from typing import Callable, Iterable

from repro.config import UpdatePattern
from repro.db.objects import ObjectClass, Update
from repro.db.sharding import ShardRouter
from repro.live.runtime import LiveRuntime, TransactionHandle
from repro.live.wire import (
    DEFAULT_BATCH_MAX,
    DEFAULT_CONNECT_ATTEMPTS,
    DEFAULT_FLUSH_US,
    PROTOCOL_BINARY,
    PROTOCOL_JSONL,
    WIRE_PROTOCOLS,
    CoalescingWriter,
    connect_with_retry,
)
from repro.sim.events import Event
from repro.sim.streams import StreamFamily
from repro.workload.codec import (
    WIRE_PREAMBLE,
    FrameDecoder,
    encode_frame,
    encode_item,
)
from repro.workload.transactions import TransactionGenerator, TransactionSpec
from repro.workload.updates import UpdateStreamGenerator

logger = logging.getLogger(__name__)


class CrossShardSpreader:
    """Rewrites a fraction of transactions to span shard boundaries.

    The synthesized read-sets draw from the global keyspace, but with
    realistic object counts most land on a single shard's slice —
    useless for exercising the cluster's scatter-gather path.  The
    spreader deterministically rewrites ``frac`` of the multi-read
    transactions so that their second read is owned by a *different*
    shard than their first, guaranteeing a cross-shard submit, using its
    own named stream (:data:`STREAM`) so a run with ``frac=0`` (which
    never constructs one) stays draw-for-draw identical to the
    pre-spreader workload.

    Args:
        n_low / n_high: Global view-object counts (the router topology).
        streams: The load generator's stream family.
        frac: Probability that an eligible (>= 2 reads) transaction is
            rewritten to span shards.
        shards: The target deployment's shard count (the spreader builds
            its own :class:`~repro.db.sharding.ShardRouter`, which is
            deterministic, so it agrees with the cluster's routing).
    """

    #: Named stream for the rewrite draws.
    STREAM = "transactions.cross_shard"

    def __init__(
        self,
        n_low: int,
        n_high: int,
        streams: StreamFamily,
        *,
        frac: float,
        shards: int,
    ) -> None:
        if not 0.0 <= frac <= 1.0:
            raise ValueError(f"cross-shard fraction must be in [0, 1], got {frac}")
        if shards < 2:
            raise ValueError("spreading needs >= 2 shards")
        self.frac = frac
        self.shards = shards
        self.spread_count = 0
        self._stream = streams.stream(self.STREAM)
        router = ShardRouter(n_low, n_high, shards)
        # Per view class: the global ids each shard owns, so a rewrite
        # can pick a concrete foreign object rather than hunting.
        self._owned: dict = {}
        for klass, count in (
            (ObjectClass.VIEW_LOW, n_low),
            (ObjectClass.VIEW_HIGH, n_high),
        ):
            by_shard: list[list[int]] = [[] for _ in range(shards)]
            for gid in range(count):
                by_shard[router.shard_of(klass, gid)].append(gid)
            self._owned[klass] = by_shard
        self._router = router

    def spread(self, spec: TransactionSpec) -> TransactionSpec:
        """Maybe rewrite one spec's second read onto a foreign shard.

        Transactions with fewer than two reads pass through untouched
        (they cannot span anything); eligible ones consume exactly one
        uniform draw for the keep/rewrite decision and, when rewriting,
        two more for the target shard and object — a fixed draw budget,
        so the rewritten stream is deterministic under the seed.
        """
        if len(spec.reads) < 2:
            return spec
        if self._stream.uniform(0.0, 1.0) >= self.frac:
            return spec
        klass = spec.view_class
        owner = self._router.shard_of(klass, spec.reads[0])
        candidates = [
            shard for shard in range(self.shards)
            if shard != owner and self._owned[klass][shard]
        ]
        if not candidates:
            return spec  # every foreign shard owns zero objects of klass
        target = candidates[int(self._stream.uniform(0.0, len(candidates)))
                            % len(candidates)]
        pool = self._owned[klass][target]
        foreign = pool[int(self._stream.uniform(0.0, len(pool))) % len(pool)]
        reads = (spec.reads[0], foreign) + spec.reads[2:]
        self.spread_count += 1
        return dc_replace(spec, reads=reads)


class LoadGenerator:
    """Feeds a :class:`LiveRuntime` synthesized or replayed traffic.

    Args:
        runtime: The runtime to drive.
        seed: Root seed for the draw streams; defaults to the runtime
            config's seed, giving draw-sequence parity with a simulator
            run of the same config.
        batch_max: Cap on how many due arrivals one catch-up delivers as
            a single :meth:`LiveRuntime.ingest_batch` call (``1`` =
            per-record delivery).  Pacing is unaffected: batching changes
            how overdue arrivals are *handed over*, never when they are
            planned.
        cross_shard_frac: Fraction of eligible (>= 2 reads) transactions
            rewritten by a :class:`CrossShardSpreader` to span shards
            (synthesis *and* replay).  The default ``0.0`` constructs no
            spreader, keeping existing workloads draw-identical.
        shards: Target shard count for the spreader (required >= 2 when
            ``cross_shard_frac > 0``).

    Attributes:
        updates_sent / updates_dropped: Ingest attempts and OS-queue drops.
        transactions_sent: Submitted transaction count.
        handles: One :class:`TransactionHandle` per submitted transaction.
        spreader: The :class:`CrossShardSpreader`, or None.
    """

    def __init__(
        self,
        runtime: LiveRuntime,
        *,
        seed: int | None = None,
        batch_max: int = DEFAULT_BATCH_MAX,
        cross_shard_frac: float = 0.0,
        shards: int = 1,
    ) -> None:
        self.runtime = runtime
        self.batch_max = max(1, batch_max)
        self.clock = runtime.clock
        config = runtime.config
        if config.updates.pattern is not UpdatePattern.APERIODIC:
            raise ValueError(
                "LoadGenerator synthesizes the aperiodic Poisson baseline; "
                "for periodic/bursty patterns record a simulator trace and "
                "replay it"
            )
        streams = StreamFamily(seed if seed is not None else config.seed)
        # The generators are used purely as draw sources (draw_update /
        # draw_spec / next_interarrival); pacing stays here so stop() can
        # cancel cleanly.
        self._update_gen = UpdateStreamGenerator(
            config, self.clock, streams, runtime.ingest
        )
        self._txn_gen = TransactionGenerator(
            config, self.clock, streams, runtime.submit
        )
        self.spreader: CrossShardSpreader | None = None
        if cross_shard_frac > 0.0:
            self.spreader = CrossShardSpreader(
                config.updates.n_low,
                config.updates.n_high,
                streams,
                frac=cross_shard_frac,
                shards=shards,
            )
        self.updates_sent = 0
        self.updates_dropped = 0
        self.transactions_sent = 0
        self.handles: list[TransactionHandle] = []
        self._running = False
        self._update_event: Event | None = None
        self._txn_event: Event | None = None
        self._next_update_at = 0.0
        self._next_txn_at = 0.0

    # ------------------------------------------------------------------
    # Synthesis
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin Poisson synthesis of both arrival processes."""
        if self._running:
            raise RuntimeError("load generator is already running")
        self._running = True
        self._schedule_update()
        if self.runtime.config.transactions.arrival_rate > 0:
            self._schedule_transaction()

    def stop(self) -> None:
        """Stop generating; already-delivered traffic keeps flowing."""
        self._running = False
        if self._update_event is not None:
            self._update_event.cancel()
            self._update_event = None
        if self._txn_event is not None:
            self._txn_event.cancel()
            self._txn_event = None

    def _schedule_update(self) -> None:
        self._next_update_at = self.clock.now + self._update_gen.next_interarrival()
        self._update_event = self.clock.schedule_at(
            self._next_update_at, self._fire_update
        )

    def _fire_update(self) -> None:
        """Deliver the due arrival, then catch up on any already-late ones.

        Pacing is absolute: each planned arrival time is the previous one
        plus a drawn exponential gap, so the offered rate holds at
        ``lambda_u`` even when dispatch runs late — overdue arrivals are
        delivered in a batch from this one event instead of silently
        stretching the process.
        """
        if not self._running:
            return
        clock = self.clock
        batch: list[Update] = []
        batch_max = self.batch_max
        while True:
            batch.append(self._update_gen.draw_update(clock.now))
            self._next_update_at += self._update_gen.next_interarrival()
            if len(batch) >= batch_max:
                self._deliver(batch)
                batch = []
            if self._next_update_at > clock.now or not self._running:
                break
        if batch:
            self._deliver(batch)
        self._update_event = self.clock.schedule_at(
            self._next_update_at, self._fire_update
        )

    def _deliver(self, batch: "list[Update]") -> None:
        self.updates_sent += len(batch)
        self.updates_dropped += len(batch) - self.runtime.ingest_batch(batch)

    def _schedule_transaction(self) -> None:
        self._next_txn_at = self.clock.now + self._txn_gen.next_interarrival()
        self._txn_event = self.clock.schedule_at(
            self._next_txn_at, self._fire_transaction
        )

    def _fire_transaction(self) -> None:
        if not self._running:
            return
        clock = self.clock
        while True:
            spec = self._txn_gen.draw_spec(clock.now)
            if self.spreader is not None:
                spec = self.spreader.spread(spec)
            self.transactions_sent += 1
            self.handles.append(self.runtime.submit(spec))
            self._next_txn_at += self._txn_gen.next_interarrival()
            if self._next_txn_at > clock.now or not self._running:
                break
        self._txn_event = self.clock.schedule_at(
            self._next_txn_at, self._fire_transaction
        )

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def replay(self, items: Iterable[Update | TransactionSpec]) -> int:
        """Schedule a recorded trace at its recorded arrival times.

        On a wall clock, items whose arrival time is already past fire
        immediately (late); on an engine clock the times replay exactly.

        Returns:
            The number of items scheduled.
        """
        count = 0
        for item in items:
            if isinstance(item, Update):
                self.clock.schedule_at(item.arrival_time, self._replay_update, item)
            elif isinstance(item, TransactionSpec):
                self.clock.schedule_at(item.arrival_time, self._replay_txn, item)
            else:
                raise TypeError(f"unexpected trace item: {type(item).__name__}")
            count += 1
        return count

    def _replay_update(self, update: Update) -> None:
        self.updates_sent += 1
        if not self.runtime.ingest(update):
            self.updates_dropped += 1

    def _replay_txn(self, spec: TransactionSpec) -> None:
        if self.spreader is not None:
            spec = self.spreader.spread(spec)
        self.transactions_sent += 1
        self.handles.append(self.runtime.submit(spec))

    # ------------------------------------------------------------------
    # Outcome tallies
    # ------------------------------------------------------------------
    def outcome_counts(self) -> dict:
        """Tally resolved transaction outcomes (in-flight ones excluded)."""
        counts: dict[str, int] = {}
        for handle in self.handles:
            if handle.outcome is not None:
                counts[handle.outcome] = counts.get(handle.outcome, 0) + 1
        return counts


# ----------------------------------------------------------------------
# Reconnecting wire client
# ----------------------------------------------------------------------
class WireClient:
    """A reconnecting JSONL/TCP client for live ingest servers.

    Wraps one connection to a server (or shard-cluster router) behind
    :func:`~repro.live.wire.connect_with_retry`, coalesces writes through
    a :class:`~repro.live.wire.CoalescingWriter`, and feeds every reply
    line to ``on_line``.  When the peer drops the connection — a
    restarting server, a killed worker — the next :meth:`send` reopens it
    with the same backoff schedule instead of failing the whole stream;
    ``reconnects`` counts how often that happened.  Records written into
    the gap are lost exactly like the paper's OS-queue drops: the stream
    is fire-and-forget, so resilience means *resuming*, not replaying.

    Args:
        host / port: Server address.
        batch_max / flush_us: Coalescing bounds for the write side.
        attempts: Connection attempts per (re)connect before giving up.
        on_line: Optional callback invoked with every raw reply record —
            the JSON body without framing (no trailing newline in binary
            sessions; JSONL sessions keep theirs).
        wire: ``"jsonl"`` (default — interoperates with any server
            version) or ``"binary"`` (struct frames behind the
            magic-preamble handshake; every (re)connection re-sends the
            preamble).

    Attributes:
        reconnects: Completed reconnections after a lost connection.
        lines_received: Reply records seen across all connections.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        batch_max: int = DEFAULT_BATCH_MAX,
        flush_us: float = DEFAULT_FLUSH_US,
        attempts: int = DEFAULT_CONNECT_ATTEMPTS,
        on_line: "Callable[[bytes], None] | None" = None,
        wire: str = PROTOCOL_JSONL,
    ) -> None:
        if wire not in WIRE_PROTOCOLS:
            raise ValueError(
                f"unknown wire protocol {wire!r}; expected one of "
                f"{WIRE_PROTOCOLS}"
            )
        self.host = host
        self.port = port
        self.batch_max = batch_max
        self.flush_us = flush_us
        self.attempts = attempts
        self.on_line = on_line
        self.wire = wire
        self.reconnects = 0
        self.lines_received = 0
        self._writer: asyncio.StreamWriter | None = None
        self._out: CoalescingWriter | None = None
        self._reader_task: asyncio.Task | None = None

    @property
    def connected(self) -> bool:
        """Whether the current connection is usable for writes.

        Checks the reader task as well as the transport: a peer that
        closed its end sends EOF (ending the reader) long before a write
        in this direction would fail, and writes into that half-closed
        socket would be silently lost.
        """
        return (
            self._out is not None
            and not self._out.is_closing
            and self._reader_task is not None
            and not self._reader_task.done()
        )

    async def connect(self) -> None:
        """Open the initial connection (with retry)."""
        await self._open()

    async def _open(self) -> None:
        reader, writer = await connect_with_retry(
            self.host, lambda: self.port, attempts=self.attempts
        )
        if self.wire == PROTOCOL_BINARY:
            # The handshake is per *connection*, not per client: a
            # reconnect lands on a fresh server session that negotiates
            # from scratch.
            writer.write(WIRE_PREAMBLE)
        self._writer = writer
        self._out = CoalescingWriter(
            writer, batch_max=self.batch_max, flush_us=self.flush_us
        )
        self._reader_task = asyncio.ensure_future(self._read_loop(reader))

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        if self.wire == PROTOCOL_BINARY:
            # Replies are JSON frame bodies; hand them over unparsed so
            # on_line sees the same payload a JSONL session would.
            decoder = FrameDecoder(parse_json=False)
            while True:
                chunk = await reader.read(64 * 1024)
                if not chunk:
                    return  # EOF: the next send() reconnects
                for body in decoder.feed(chunk):
                    if not isinstance(body, bytes):
                        continue  # a malformed reply frame; skip it
                    self.lines_received += 1
                    if self.on_line is not None:
                        self.on_line(body)
            return
        while True:
            line = await reader.readline()
            if not line:
                return  # EOF: the next send() reconnects
            self.lines_received += 1
            if self.on_line is not None:
                self.on_line(line)

    async def _ensure_connected(self) -> None:
        if self.connected:
            return
        had_connection = self._out is not None
        await self._teardown()
        await self._open()
        if had_connection:
            self.reconnects += 1
            logger.info(
                "wire client reconnected to %s:%d (reconnect %d)",
                self.host, self.port, self.reconnects,
            )

    async def _teardown(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            await asyncio.gather(self._reader_task, return_exceptions=True)
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            self._writer = None
            self._out = None

    # ------------------------------------------------------------------
    async def send(self, item) -> None:
        """Encode and send one update/transaction record."""
        if self.wire == PROTOCOL_BINARY:
            await self.send_line(encode_frame(item))
        else:
            await self.send_line(encode_item(item).encode("utf-8") + b"\n")

    async def send_line(self, line: bytes) -> None:
        """Send one pre-encoded wire record (a JSONL line or a frame)."""
        await self._ensure_connected()
        self._out.write(line)

    def flush(self) -> None:
        """Flush the coalescing buffer (no-op when disconnected)."""
        if self._out is not None:
            self._out.flush()

    async def backpressure(self) -> None:
        """Suspend while the transport is over its high-water mark."""
        if self.connected:
            await self._out.backpressure()

    async def drain(self) -> None:
        """Flush and wait for the transport to catch up."""
        if self.connected:
            await self._out.drain()

    async def aclose(self) -> None:
        """Flush what's pending and close the connection for good."""
        if self._out is not None and not self._out.is_closing:
            self._out.flush()
        await self._teardown()
