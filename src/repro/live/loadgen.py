"""Traffic sources for the live runtime.

Two modes, matching the two ways the simulator gets its workload:

* **Synthesis** — Poisson update/transaction arrivals drawn from the same
  :class:`~repro.workload.updates.UpdateStreamGenerator` /
  :class:`~repro.workload.transactions.TransactionGenerator` draw methods
  the simulator uses, seeded through the same named
  :class:`~repro.sim.streams.StreamFamily`.  A live run and a simulated
  run with the same seed therefore see the same *sequence* of updates and
  transactions; only the arrival timestamps differ (wall-clock jitter vs.
  exact exponential gaps).
* **Replay** — a recorded trace (from
  :func:`repro.workload.trace.load_trace` or a ``TraceRecorder``) is
  scheduled at its recorded arrival times, bit-for-bit.

The generator paces itself on the runtime's clock, so the same code drives
a :class:`~repro.live.clock.WallClock` (real traffic) or an
:class:`~repro.sim.engine.Engine` (deterministic parity tests).

For traffic that crosses a socket, :class:`WireClient` is the resilient
counterpart: a JSONL/TCP client (used by ``repro-live loadgen``) that
connects through :func:`~repro.live.wire.connect_with_retry` and
transparently reconnects when the server — e.g. a shard worker being
restarted by the cluster supervisor — drops the connection mid-stream.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import logging
from dataclasses import replace as dc_replace
from typing import Callable, Iterable

from repro.config import UpdatePattern
from repro.db.objects import ObjectClass, Update
from repro.db.sharding import ShardRouter, router_from_topology
from repro.live.runtime import LiveRuntime, TransactionHandle
from repro.live.wire import (
    DEFAULT_BATCH_MAX,
    DEFAULT_CONNECT_ATTEMPTS,
    DEFAULT_FLUSH_US,
    PROTOCOL_BINARY,
    PROTOCOL_JSONL,
    WIRE_PROTOCOLS,
    CoalescingWriter,
    connect_with_retry,
    encode_reply,
)
from repro.sim.events import Event
from repro.sim.streams import StreamFamily
from repro.workload.codec import (
    WIRE_PREAMBLE,
    FrameDecoder,
    encode_frame,
    encode_item,
)
from repro.workload.transactions import TransactionGenerator, TransactionSpec
from repro.workload.updates import UpdateStreamGenerator

logger = logging.getLogger(__name__)


class CrossShardSpreader:
    """Rewrites a fraction of transactions to span shard boundaries.

    The synthesized read-sets draw from the global keyspace, but with
    realistic object counts most land on a single shard's slice —
    useless for exercising the cluster's scatter-gather path.  The
    spreader deterministically rewrites ``frac`` of the multi-read
    transactions so that their second read is owned by a *different*
    shard than their first, guaranteeing a cross-shard submit, using its
    own named stream (:data:`STREAM`) so a run with ``frac=0`` (which
    never constructs one) stays draw-for-draw identical to the
    pre-spreader workload.

    Args:
        n_low / n_high: Global view-object counts (the router topology).
        streams: The load generator's stream family.
        frac: Probability that an eligible (>= 2 reads) transaction is
            rewritten to span shards.
        shards: The target deployment's shard count (the spreader builds
            its own :class:`~repro.db.sharding.ShardRouter`, which is
            deterministic, so it agrees with the cluster's routing).
    """

    #: Named stream for the rewrite draws.
    STREAM = "transactions.cross_shard"

    def __init__(
        self,
        n_low: int,
        n_high: int,
        streams: StreamFamily,
        *,
        frac: float,
        shards: int,
    ) -> None:
        if not 0.0 <= frac <= 1.0:
            raise ValueError(f"cross-shard fraction must be in [0, 1], got {frac}")
        if shards < 2:
            raise ValueError("spreading needs >= 2 shards")
        self.frac = frac
        self.shards = shards
        self.spread_count = 0
        self._stream = streams.stream(self.STREAM)
        router = ShardRouter(n_low, n_high, shards)
        # Per view class: the global ids each shard owns, so a rewrite
        # can pick a concrete foreign object rather than hunting.
        self._owned: dict = {}
        for klass, count in (
            (ObjectClass.VIEW_LOW, n_low),
            (ObjectClass.VIEW_HIGH, n_high),
        ):
            by_shard: list[list[int]] = [[] for _ in range(shards)]
            for gid in range(count):
                by_shard[router.shard_of(klass, gid)].append(gid)
            self._owned[klass] = by_shard
        self._router = router

    def spread(self, spec: TransactionSpec) -> TransactionSpec:
        """Maybe rewrite one spec's second read onto a foreign shard.

        Transactions with fewer than two reads pass through untouched
        (they cannot span anything); eligible ones consume exactly one
        uniform draw for the keep/rewrite decision and, when rewriting,
        two more for the target shard and object — a fixed draw budget,
        so the rewritten stream is deterministic under the seed.
        """
        if len(spec.reads) < 2:
            return spec
        if self._stream.uniform(0.0, 1.0) >= self.frac:
            return spec
        klass = spec.view_class
        owner = self._router.shard_of(klass, spec.reads[0])
        candidates = [
            shard for shard in range(self.shards)
            if shard != owner and self._owned[klass][shard]
        ]
        if not candidates:
            return spec  # every foreign shard owns zero objects of klass
        target = candidates[int(self._stream.uniform(0.0, len(candidates)))
                            % len(candidates)]
        pool = self._owned[klass][target]
        foreign = pool[int(self._stream.uniform(0.0, len(pool))) % len(pool)]
        reads = (spec.reads[0], foreign) + spec.reads[2:]
        self.spread_count += 1
        return dc_replace(spec, reads=reads)


class LoadGenerator:
    """Feeds a :class:`LiveRuntime` synthesized or replayed traffic.

    Args:
        runtime: The runtime to drive.
        seed: Root seed for the draw streams; defaults to the runtime
            config's seed, giving draw-sequence parity with a simulator
            run of the same config.
        batch_max: Cap on how many due arrivals one catch-up delivers as
            a single :meth:`LiveRuntime.ingest_batch` call (``1`` =
            per-record delivery).  Pacing is unaffected: batching changes
            how overdue arrivals are *handed over*, never when they are
            planned.
        cross_shard_frac: Fraction of eligible (>= 2 reads) transactions
            rewritten by a :class:`CrossShardSpreader` to span shards
            (synthesis *and* replay).  The default ``0.0`` constructs no
            spreader, keeping existing workloads draw-identical.
        shards: Target shard count for the spreader (required >= 2 when
            ``cross_shard_frac > 0``).

    Attributes:
        updates_sent / updates_dropped: Ingest attempts and OS-queue drops.
        transactions_sent: Submitted transaction count.
        handles: One :class:`TransactionHandle` per submitted transaction.
        spreader: The :class:`CrossShardSpreader`, or None.
    """

    def __init__(
        self,
        runtime: LiveRuntime,
        *,
        seed: int | None = None,
        batch_max: int = DEFAULT_BATCH_MAX,
        cross_shard_frac: float = 0.0,
        shards: int = 1,
    ) -> None:
        self.runtime = runtime
        self.batch_max = max(1, batch_max)
        self.clock = runtime.clock
        config = runtime.config
        if config.updates.pattern is not UpdatePattern.APERIODIC:
            raise ValueError(
                "LoadGenerator synthesizes the aperiodic Poisson baseline; "
                "for periodic/bursty patterns record a simulator trace and "
                "replay it"
            )
        streams = StreamFamily(seed if seed is not None else config.seed)
        # The generators are used purely as draw sources (draw_update /
        # draw_spec / next_interarrival); pacing stays here so stop() can
        # cancel cleanly.
        self._update_gen = UpdateStreamGenerator(
            config, self.clock, streams, runtime.ingest
        )
        self._txn_gen = TransactionGenerator(
            config, self.clock, streams, runtime.submit
        )
        self.spreader: CrossShardSpreader | None = None
        if cross_shard_frac > 0.0:
            self.spreader = CrossShardSpreader(
                config.updates.n_low,
                config.updates.n_high,
                streams,
                frac=cross_shard_frac,
                shards=shards,
            )
        self.updates_sent = 0
        self.updates_dropped = 0
        self.transactions_sent = 0
        self.handles: list[TransactionHandle] = []
        self._running = False
        self._update_event: Event | None = None
        self._txn_event: Event | None = None
        self._next_update_at = 0.0
        self._next_txn_at = 0.0

    # ------------------------------------------------------------------
    # Synthesis
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin Poisson synthesis of both arrival processes."""
        if self._running:
            raise RuntimeError("load generator is already running")
        self._running = True
        self._schedule_update()
        if self.runtime.config.transactions.arrival_rate > 0:
            self._schedule_transaction()

    def stop(self) -> None:
        """Stop generating; already-delivered traffic keeps flowing."""
        self._running = False
        if self._update_event is not None:
            self._update_event.cancel()
            self._update_event = None
        if self._txn_event is not None:
            self._txn_event.cancel()
            self._txn_event = None

    def _schedule_update(self) -> None:
        self._next_update_at = self.clock.now + self._update_gen.next_interarrival()
        self._update_event = self.clock.schedule_at(
            self._next_update_at, self._fire_update
        )

    def _fire_update(self) -> None:
        """Deliver the due arrival, then catch up on any already-late ones.

        Pacing is absolute: each planned arrival time is the previous one
        plus a drawn exponential gap, so the offered rate holds at
        ``lambda_u`` even when dispatch runs late — overdue arrivals are
        delivered in a batch from this one event instead of silently
        stretching the process.
        """
        if not self._running:
            return
        clock = self.clock
        batch: list[Update] = []
        batch_max = self.batch_max
        while True:
            batch.append(self._update_gen.draw_update(clock.now))
            self._next_update_at += self._update_gen.next_interarrival()
            if len(batch) >= batch_max:
                self._deliver(batch)
                batch = []
            if self._next_update_at > clock.now or not self._running:
                break
        if batch:
            self._deliver(batch)
        self._update_event = self.clock.schedule_at(
            self._next_update_at, self._fire_update
        )

    def _deliver(self, batch: "list[Update]") -> None:
        self.updates_sent += len(batch)
        self.updates_dropped += len(batch) - self.runtime.ingest_batch(batch)

    def _schedule_transaction(self) -> None:
        self._next_txn_at = self.clock.now + self._txn_gen.next_interarrival()
        self._txn_event = self.clock.schedule_at(
            self._next_txn_at, self._fire_transaction
        )

    def _fire_transaction(self) -> None:
        if not self._running:
            return
        clock = self.clock
        while True:
            spec = self._txn_gen.draw_spec(clock.now)
            if self.spreader is not None:
                spec = self.spreader.spread(spec)
            self.transactions_sent += 1
            self.handles.append(self.runtime.submit(spec))
            self._next_txn_at += self._txn_gen.next_interarrival()
            if self._next_txn_at > clock.now or not self._running:
                break
        self._txn_event = self.clock.schedule_at(
            self._next_txn_at, self._fire_transaction
        )

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def replay(self, items: Iterable[Update | TransactionSpec]) -> int:
        """Schedule a recorded trace at its recorded arrival times.

        On a wall clock, items whose arrival time is already past fire
        immediately (late); on an engine clock the times replay exactly.

        Returns:
            The number of items scheduled.
        """
        count = 0
        for item in items:
            if isinstance(item, Update):
                self.clock.schedule_at(item.arrival_time, self._replay_update, item)
            elif isinstance(item, TransactionSpec):
                self.clock.schedule_at(item.arrival_time, self._replay_txn, item)
            else:
                raise TypeError(f"unexpected trace item: {type(item).__name__}")
            count += 1
        return count

    def _replay_update(self, update: Update) -> None:
        self.updates_sent += 1
        if not self.runtime.ingest(update):
            self.updates_dropped += 1

    def _replay_txn(self, spec: TransactionSpec) -> None:
        if self.spreader is not None:
            spec = self.spreader.spread(spec)
        self.transactions_sent += 1
        self.handles.append(self.runtime.submit(spec))

    # ------------------------------------------------------------------
    # Outcome tallies
    # ------------------------------------------------------------------
    def outcome_counts(self) -> dict:
        """Tally resolved transaction outcomes (in-flight ones excluded)."""
        counts: dict[str, int] = {}
        for handle in self.handles:
            if handle.outcome is not None:
                counts[handle.outcome] = counts.get(handle.outcome, 0) + 1
        return counts


# ----------------------------------------------------------------------
# Reconnecting wire client
# ----------------------------------------------------------------------
class WireClient:
    """A reconnecting JSONL/TCP client for live ingest servers.

    Wraps one connection to a server (or shard-cluster router) behind
    :func:`~repro.live.wire.connect_with_retry`, coalesces writes through
    a :class:`~repro.live.wire.CoalescingWriter`, and feeds every reply
    line to ``on_line``.  When the peer drops the connection — a
    restarting server, a killed worker — the next :meth:`send` reopens it
    with the same backoff schedule instead of failing the whole stream;
    ``reconnects`` counts how often that happened.  Records written into
    the gap are lost exactly like the paper's OS-queue drops: the stream
    is fire-and-forget, so resilience means *resuming*, not replaying.

    Args:
        host / port: Server address.
        batch_max / flush_us: Coalescing bounds for the write side.
        attempts: Connection attempts per (re)connect before giving up.
        on_line: Optional callback invoked with every raw reply record —
            the JSON body without framing (no trailing newline in binary
            sessions; JSONL sessions keep theirs).
        wire: ``"jsonl"`` (default — interoperates with any server
            version) or ``"binary"`` (struct frames behind the
            magic-preamble handshake; every (re)connection re-sends the
            preamble).

    Attributes:
        reconnects: Completed reconnections after a lost connection.
        lines_received: Reply records seen across all connections.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        batch_max: int = DEFAULT_BATCH_MAX,
        flush_us: float = DEFAULT_FLUSH_US,
        attempts: int = DEFAULT_CONNECT_ATTEMPTS,
        on_line: "Callable[[bytes], None] | None" = None,
        wire: str = PROTOCOL_JSONL,
    ) -> None:
        if wire not in WIRE_PROTOCOLS:
            raise ValueError(
                f"unknown wire protocol {wire!r}; expected one of "
                f"{WIRE_PROTOCOLS}"
            )
        self.host = host
        self.port = port
        self.batch_max = batch_max
        self.flush_us = flush_us
        self.attempts = attempts
        self.on_line = on_line
        self.wire = wire
        self.reconnects = 0
        self.lines_received = 0
        self._writer: asyncio.StreamWriter | None = None
        self._out: CoalescingWriter | None = None
        self._reader_task: asyncio.Task | None = None

    @property
    def connected(self) -> bool:
        """Whether the current connection is usable for writes.

        Checks the reader task as well as the transport: a peer that
        closed its end sends EOF (ending the reader) long before a write
        in this direction would fail, and writes into that half-closed
        socket would be silently lost.
        """
        return (
            self._out is not None
            and not self._out.is_closing
            and self._reader_task is not None
            and not self._reader_task.done()
        )

    async def connect(self) -> None:
        """Open the initial connection (with retry)."""
        await self._open()

    async def _open(self) -> None:
        reader, writer = await connect_with_retry(
            self.host, lambda: self.port, attempts=self.attempts
        )
        if self.wire == PROTOCOL_BINARY:
            # The handshake is per *connection*, not per client: a
            # reconnect lands on a fresh server session that negotiates
            # from scratch.
            writer.write(WIRE_PREAMBLE)
        self._writer = writer
        self._out = CoalescingWriter(
            writer, batch_max=self.batch_max, flush_us=self.flush_us
        )
        self._reader_task = asyncio.ensure_future(self._read_loop(reader))

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        if self.wire == PROTOCOL_BINARY:
            # Replies are JSON frame bodies; hand them over unparsed so
            # on_line sees the same payload a JSONL session would.
            decoder = FrameDecoder(parse_json=False)
            while True:
                chunk = await reader.read(64 * 1024)
                if not chunk:
                    return  # EOF: the next send() reconnects
                for body in decoder.feed(chunk):
                    if not isinstance(body, bytes):
                        continue  # a malformed reply frame; skip it
                    self.lines_received += 1
                    if self.on_line is not None:
                        self.on_line(body)
            return
        while True:
            line = await reader.readline()
            if not line:
                return  # EOF: the next send() reconnects
            self.lines_received += 1
            if self.on_line is not None:
                self.on_line(line)

    async def _ensure_connected(self) -> None:
        if self.connected:
            return
        had_connection = self._out is not None
        await self._teardown()
        await self._open()
        if had_connection:
            self.reconnects += 1
            logger.info(
                "wire client reconnected to %s:%d (reconnect %d)",
                self.host, self.port, self.reconnects,
            )

    async def _teardown(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            await asyncio.gather(self._reader_task, return_exceptions=True)
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            self._writer = None
            self._out = None

    # ------------------------------------------------------------------
    async def send(self, item) -> None:
        """Encode and send one update/transaction record."""
        if self.wire == PROTOCOL_BINARY:
            await self.send_line(encode_frame(item))
        else:
            await self.send_line(encode_item(item).encode("utf-8") + b"\n")

    async def send_line(self, line: bytes) -> None:
        """Send one pre-encoded wire record (a JSONL line or a frame)."""
        await self._ensure_connected()
        self._out.write(line)

    def flush(self) -> None:
        """Flush the coalescing buffer (no-op when disconnected)."""
        if self._out is not None:
            self._out.flush()

    async def backpressure(self) -> None:
        """Suspend while the transport is over its high-water mark."""
        if self.connected:
            await self._out.backpressure()

    async def drain(self) -> None:
        """Flush and wait for the transport to catch up."""
        if self.connected:
            await self._out.drain()

    async def aclose(self) -> None:
        """Flush what's pending and close the connection for good."""
        if self._out is not None and not self._out.is_closing:
            self._out.flush()
        await self._teardown()


# ----------------------------------------------------------------------
# Smart client: topology-aware direct routing
# ----------------------------------------------------------------------
class DirectClient:
    """A smart client that routes records straight to shard workers.

    Instead of relaying every byte through a router plane, the client
    asks the cluster for its ``{"kind": "topology"}`` control record,
    rebuilds the exact :class:`~repro.db.sharding.ShardRouter` locally
    (it is deterministic from ``n_low`` / ``n_high`` / ``shards``), and
    opens one :class:`WireClient` per worker.  Updates and single-shard
    transactions then travel one hop; only records that genuinely need
    the routing plane — cross-shard read-sets, readless transactions it
    cannot claim, control records — still go through the router
    connection (counted in ``routed_specs``).

    Every worker connection announces itself with a
    ``{"kind": "hello", "mode": "direct"}`` record (re-sent after each
    transparent reconnect) so the server translates global object ids and
    answers misroutes with typed ``{"kind": "moved"}`` records.  A
    ``moved`` reply or a connection failure refreshes the local map: the
    embedded (or re-fetched) topology record carries the new per-worker
    ports and the ``epoch``, and stale records (older epoch than what the
    client already holds) are ignored.

    Args:
        host / port: The *router* address (any plane of the fleet).
        batch_max / flush_us / attempts / wire: As for :class:`WireClient`;
            shared by the router and worker connections.
        on_line: Callback for reply records that are not control traffic
            (``topology`` / ``moved`` / ``hello`` records are consumed by
            the client itself).

    Attributes:
        router: The locally rebuilt :class:`ShardRouter` (after
            :meth:`connect`).
        epoch: Topology epoch of the map currently in use.
        direct_sends: Records sent straight to a worker.
        routed_specs: Records that still went through the router plane.
        moved_redirects: ``moved`` replies received from workers.
        topology_refreshes: Times the worker map was rebuilt from a newer
            topology record.
        send_failures: Direct sends that hit a dead worker connection and
            forced a topology refresh.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        batch_max: int = DEFAULT_BATCH_MAX,
        flush_us: float = DEFAULT_FLUSH_US,
        attempts: int = DEFAULT_CONNECT_ATTEMPTS,
        on_line: "Callable[[bytes], None] | None" = None,
        wire: str = PROTOCOL_JSONL,
    ) -> None:
        if wire not in WIRE_PROTOCOLS:
            raise ValueError(
                f"unknown wire protocol {wire!r}; expected one of "
                f"{WIRE_PROTOCOLS}"
            )
        self.host = host
        self.port = port
        self.batch_max = batch_max
        self.flush_us = flush_us
        self.attempts = attempts
        self.on_line = on_line
        self.wire = wire
        self.router: ShardRouter | None = None
        self.epoch = -1
        self.direct_sends = 0
        self.routed_specs = 0
        self.moved_redirects = 0
        self.topology_refreshes = 0
        self.send_failures = 0
        self._router_client: WireClient | None = None
        self._links: "list[WireClient]" = []
        self._hello_marks: "list[int]" = []
        self._rid = itertools.count(1)
        self._topology_waiters: "dict[int, asyncio.Future]" = {}

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    async def connect(self, *, timeout: float = 30.0) -> None:
        """Dial the router, fetch the topology, dial every worker."""
        self._router_client = WireClient(
            self.host,
            self.port,
            batch_max=self.batch_max,
            flush_us=self.flush_us,
            attempts=self.attempts,
            on_line=self._intercept,
            wire=self.wire,
        )
        await self._router_client.connect()
        record = await self.fetch_topology(timeout=timeout)
        self.router = router_from_topology(record)
        for entry in record["workers"]:
            link = WireClient(
                str(entry.get("host", "127.0.0.1")),
                int(entry["port"]),
                batch_max=self.batch_max,
                flush_us=self.flush_us,
                attempts=self.attempts,
                on_line=self._intercept,
                wire=self.wire,
            )
            self._links.append(link)
            self._hello_marks.append(-1)
        self.epoch = int(record["epoch"])
        for shard in range(len(self._links)):
            await self._links[shard].connect()
            await self._hello(shard)

    async def fetch_topology(self, *, timeout: float = 30.0) -> dict:
        """Request a fresh topology record over the router connection."""
        rid = next(self._rid)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._topology_waiters[rid] = future
        try:
            await self._router_client.send_line(
                encode_reply({"kind": "topology", "rid": rid}, self.wire)
            )
            self._router_client.flush()
            record = await asyncio.wait_for(future, timeout)
        finally:
            self._topology_waiters.pop(rid, None)
        self._apply_topology(record)
        return record

    async def _hello(self, shard: int) -> None:
        """(Re-)announce direct mode on one worker connection.

        Must run on every fresh connection: the server tracks direct mode
        per *session*, so a transparent :class:`WireClient` reconnect
        lands on a session that has not seen the hello yet.
        ``_hello_marks`` remembers the link's ``reconnects`` counter at
        the last hello so :meth:`_direct_send` can notice the gap.
        """
        link = self._links[shard]
        await link.send_line(
            encode_reply(
                {"kind": "hello", "mode": "direct", "epoch": self.epoch},
                self.wire,
            )
        )
        self._hello_marks[shard] = link.reconnects

    # ------------------------------------------------------------------
    # Control-record interception
    # ------------------------------------------------------------------
    def _intercept(self, body: bytes) -> None:
        record = None
        try:
            record = json.loads(body)
        except (ValueError, UnicodeDecodeError):
            pass
        if isinstance(record, dict):
            kind = record.get("kind")
            if kind == "topology":
                future = self._topology_waiters.pop(record.get("rid"), None)
                if future is not None and not future.done():
                    future.set_result(record)
                else:
                    self._apply_topology(record)
                return
            if kind == "moved":
                self.moved_redirects += 1
                topology = record.get("topology")
                if isinstance(topology, dict):
                    self._apply_topology(topology)
                return
            if kind == "hello":
                return  # the ack of our own announcement
        if self.on_line is not None:
            self.on_line(body)

    def _apply_topology(self, record: dict) -> None:
        """Adopt a topology record's endpoints if it is newer than ours.

        The routing *function* never changes within a cluster's lifetime
        (``n_low`` / ``n_high`` / ``shards`` are fixed at start), so a
        refresh only moves endpoints: each link's ``port``/``host`` is
        updated in place, and the link's own late-bound reconnect logic
        dials the new endpoint on its next send.
        """
        epoch = int(record.get("epoch", -1))
        if epoch <= self.epoch or not self._links:
            return
        self.epoch = epoch
        self.topology_refreshes += 1
        for entry in record.get("workers", ()):
            shard = int(entry["shard"])
            if 0 <= shard < len(self._links):
                self._links[shard].host = str(
                    entry.get("host", self._links[shard].host)
                )
                self._links[shard].port = int(entry["port"])

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def _shard_for(self, item) -> "int | None":
        """Owning shard for direct delivery, or None to use the router."""
        if isinstance(item, Update):
            return self.router.shard_of(item.klass, item.object_id)
        if isinstance(item, TransactionSpec):
            if item.reads:
                owners = {
                    self.router.shard_of(item.view_class, gid)
                    for gid in item.reads
                }
                if len(owners) == 1:
                    return next(iter(owners))
                return None  # cross-shard: needs the scatter-gather plane
            return self.router.hash_shard(item.seq)
        return None  # dicts and unknown records go through the router

    async def send(self, item) -> None:
        """Route one record: direct to its owner, or via the router."""
        shard = self._shard_for(item)
        if shard is None:
            self.routed_specs += 1
            if isinstance(item, dict):
                await self._router_client.send_line(
                    encode_reply(item, self.wire)
                )
            else:
                await self._router_client.send(item)
            return
        await self._direct_send(shard, item)

    async def _direct_send(self, shard: int, item) -> None:
        link = self._links[shard]
        try:
            # Reconnect *before* writing so a fresh session hears the
            # hello first: a global-id record on a session that is not in
            # direct mode yet would be misread as shard-local.
            await link._ensure_connected()
            if link.reconnects != self._hello_marks[shard]:
                await self._hello(shard)
            await link.send(item)
        except ConnectionError:
            self.send_failures += 1
            await self.refresh()
            link = self._links[shard]
            await link._ensure_connected()
            await self._hello(shard)
            await link.send(item)
            return
        self.direct_sends += 1

    async def refresh(self, *, timeout: float = 30.0) -> None:
        """Re-fetch the topology (after a dead worker connection)."""
        await self.fetch_topology(timeout=timeout)

    # ------------------------------------------------------------------
    # WireClient-compatible surface
    # ------------------------------------------------------------------
    def flush(self) -> None:
        for link in self._links:
            link.flush()
        if self._router_client is not None:
            self._router_client.flush()

    async def backpressure(self) -> None:
        for link in self._links:
            await link.backpressure()
        if self._router_client is not None:
            await self._router_client.backpressure()

    async def drain(self) -> None:
        for link in self._links:
            await link.drain()
        if self._router_client is not None:
            await self._router_client.drain()

    async def aclose(self) -> None:
        for link in self._links:
            await link.aclose()
        if self._router_client is not None:
            await self._router_client.aclose()

    @property
    def reconnects(self) -> int:
        """Total reconnections across the router and worker links."""
        total = sum(link.reconnects for link in self._links)
        if self._router_client is not None:
            total += self._router_client.reconnects
        return total

    @property
    def lines_received(self) -> int:
        total = sum(link.lines_received for link in self._links)
        if self._router_client is not None:
            total += self._router_client.lines_received
        return total
