"""Coalesced JSONL wire I/O for the live stack.

The PR-2/PR-3 ingest path paid one transport ``write`` (a syscall on a
selector transport with an empty buffer) and one awaited ``drain()`` per
record, at every hop: server replies, router forwarding, outcome
pump-back.  Under the paper's bursty update streams that is the dominant
cost — not the scheduler.  This module concentrates the fix:

* :class:`CoalescingWriter` buffers encoded lines and hands the
  transport one contiguous payload per *batch*, flushed when the buffer
  reaches a record/byte bound or when a flush deadline expires (so a
  lone record is never parked longer than ``flush_us``).  ``drain()`` is
  awaited only when the transport reports a write buffer over its
  high-water mark — the only case where it would actually wait.
* :func:`iter_line_batches` is the read-side dual: instead of one
  ``readline`` round trip per record, each socket wakeup yields *every*
  complete line already buffered, ready for one batched decode.

The wire format itself is unchanged: a batch is exactly N
newline-delimited JSON records in one write, so an old per-record peer
interoperates with a coalescing one in either direction.

:func:`connect_with_retry` is the shared connection primitive for peers
that must survive a restarting endpoint (exponential backoff + jitter,
bounded attempts, per-attempt timeout) — see ``docs/RESILIENCE.md``.

Since PR 6 the wire speaks **two protocols** behind one socket:

* ``jsonl`` — the original newline-delimited JSON records;
* ``binary`` — length-prefixed ``struct``-packed frames
  (:class:`repro.workload.codec.BinaryCodec`), selected by a 5-byte
  magic+version preamble as the first bytes of a session.

:func:`negotiate_protocol` is the server side of that handshake: it
peeks one byte, and a byte that cannot start a JSONL line selects the
binary decoder for the rest of the session.  JSONL clients, recorded
traces, and old load generators interoperate unchanged — they simply
never send the magic.

Since PR 8 the reply direction is a real **RPC layer**:
:class:`RpcChannel` owns one session's writer *and* reader, matches
reply records to pending calls by correlation id (``rid``, or ``seq``
for transaction outcomes), enforces per-call deadlines, and converts
typed error frames (``{"kind": "error", "reason": ...}``) into the
:class:`RpcError` hierarchy.  Records that match no pending call — the
pass-through outcome stream — are handed to an ``on_push`` callback,
which is the entire surface the old hand-rolled reply pumps provided.
"""

from __future__ import annotations

import asyncio
import json
import random
from typing import Callable

from repro.workload.codec import (
    WIRE_MAGIC,
    WIRE_PREAMBLE,
    WIRE_SCHEMA_VERSION,
    FrameDecoder,
    decode_lines,
    encode_json_frame,
)

#: Records buffered before a size-triggered flush.  Chosen by the sweep in
#: docs/PERFORMANCE.md ("The wire fast path"): throughput is flat past
#: ~128 and latency grows linearly, so 256 keeps headroom without hurting
#: tail latency.
DEFAULT_BATCH_MAX = 256

#: Flush deadline in microseconds: the longest a buffered record waits
#: for company before going out anyway.  Well under the paper's
#: millisecond-scale deadlines, well over the cost of an event-loop turn.
DEFAULT_FLUSH_US = 500.0

#: Byte bound per coalesced payload; keeps one flush comfortably inside
#: the transport's default 64 KiB high-water mark.
MAX_BATCH_BYTES = 48 * 1024

#: Read-side chunk size: large enough to swallow a full burst per wakeup.
READ_CHUNK = 256 * 1024

#: Default connection-retry schedule (see :func:`connect_with_retry`).
DEFAULT_CONNECT_ATTEMPTS = 6
DEFAULT_CONNECT_BASE_DELAY = 0.05
DEFAULT_CONNECT_MAX_DELAY = 1.0
DEFAULT_CONNECT_TIMEOUT = 5.0

#: Backoff jitter draws come from a private RNG so retry timing never
#: perturbs the module-level `random` state the workload draws depend on.
_BACKOFF_RNG = random.Random()

#: Wire protocol names, as accepted by ``--wire`` and the client/cluster
#: constructors.  ``jsonl`` is the founding newline-delimited protocol;
#: ``binary`` is the struct-framed fast path.
PROTOCOL_JSONL = "jsonl"
PROTOCOL_BINARY = "binary"
WIRE_PROTOCOLS = (PROTOCOL_JSONL, PROTOCOL_BINARY)


class WireProtocolError(ConnectionError):
    """A peer opened a session this endpoint cannot speak.

    Raised by :func:`negotiate_protocol` for a truncated preamble or an
    unsupported binary schema version.  Typed so servers can close the
    one session instead of treating it as an internal failure.
    """


async def negotiate_protocol(
    reader: asyncio.StreamReader,
) -> "tuple[str, bytes]":
    """Server-side protocol selection from the first bytes of a session.

    Reads exactly one byte.  The binary magic's first byte (0xB7) is not
    valid UTF-8 and can never begin a JSONL record, so one byte decides:

    * magic byte → read and verify the rest of the 5-byte preamble,
      return ``(PROTOCOL_BINARY, b"")``;
    * anything else → the byte belongs to the client's first JSONL line,
      return ``(PROTOCOL_JSONL, that_byte)`` for the caller to prepend;
    * immediate EOF → an empty JSONL session (nothing to prepend).

    Raises:
        WireProtocolError: truncated preamble or unsupported version.
    """
    first = await reader.read(1)
    if not first:
        return PROTOCOL_JSONL, b""
    if first != WIRE_MAGIC[:1]:
        return PROTOCOL_JSONL, first
    try:
        rest = await reader.readexactly(len(WIRE_PREAMBLE) - 1)
    except asyncio.IncompleteReadError as exc:
        raise WireProtocolError(
            "peer closed mid-preamble of a binary session"
        ) from exc
    preamble = first + rest
    if preamble[:-1] != WIRE_MAGIC:
        raise WireProtocolError(
            f"bad binary wire magic: {preamble[:-1]!r}"
        )
    version = preamble[-1]
    if version != WIRE_SCHEMA_VERSION:
        raise WireProtocolError(
            f"unsupported binary wire schema version {version} "
            f"(this endpoint speaks {WIRE_SCHEMA_VERSION})"
        )
    return PROTOCOL_BINARY, b""


def encode_reply(record: dict, protocol: str) -> bytes:
    """One reply record (outcome/error/snapshot) in a session's protocol.

    Reply records are JSON in *both* protocols — replies are orders of
    magnitude rarer than stream records, so the binary protocol spends
    its frames where they pay and carries replies as JSON frame bodies.
    """
    payload = json.dumps(record).encode("utf-8")
    if protocol == PROTOCOL_BINARY:
        return encode_json_frame(payload)
    return payload + b"\n"


async def connect_with_retry(
    host: str,
    port: "int | Callable[[], int]",
    *,
    attempts: int = DEFAULT_CONNECT_ATTEMPTS,
    base_delay: float = DEFAULT_CONNECT_BASE_DELAY,
    max_delay: float = DEFAULT_CONNECT_MAX_DELAY,
    attempt_timeout: float = DEFAULT_CONNECT_TIMEOUT,
    jitter: float = 0.5,
) -> "tuple[asyncio.StreamReader, asyncio.StreamWriter]":
    """Open a TCP connection, retrying with exponential backoff + jitter.

    The resilience primitive of the live cluster: a shard worker that is
    being restarted by the supervisor refuses connections for a few
    hundred milliseconds, and a plain ``open_connection`` would turn that
    blip into a client-visible failure.  Retrying here makes a restart
    transparent to the router's upstream connections, the snapshot
    fan-in, and reconnecting load generators.

    Args:
        host: Peer address.
        port: Peer port, or a zero-argument callable re-resolved before
            every attempt — a restarted shard worker comes back on a
            *new* port, so the router passes ``lambda: worker.port``.
        attempts: Total connection attempts before giving up (>= 1).
        base_delay: Sleep after the first failure; doubles per attempt.
        max_delay: Cap on the between-attempt sleep.
        attempt_timeout: Per-attempt connect timeout.
        jitter: Fraction of the delay added as uniform random jitter so a
            fleet of reconnecting clients does not stampede the socket.

    Returns:
        The connected ``(reader, writer)`` pair.

    Raises:
        ConnectionError: when every attempt failed; the last underlying
            error is chained as ``__cause__``.
    """
    resolve = port if callable(port) else (lambda: port)
    attempts = max(1, attempts)
    delay = max(0.0, base_delay)
    last_exc: Exception | None = None
    for attempt in range(attempts):
        target = resolve()
        try:
            return await asyncio.wait_for(
                asyncio.open_connection(host, target), attempt_timeout
            )
        except (OSError, asyncio.TimeoutError, TimeoutError) as exc:
            last_exc = exc
            if attempt + 1 < attempts:
                await asyncio.sleep(
                    delay * (1.0 + jitter * _BACKOFF_RNG.random())
                )
                delay = min(delay * 2.0, max_delay)
    raise ConnectionError(
        f"could not connect to {host}:{resolve()} after {attempts} attempts"
    ) from last_exc


class CoalescingWriter:
    """Batching front end for one :class:`asyncio.StreamWriter`.

    ``write`` is synchronous and safe to call from plain callbacks (e.g.
    transaction-outcome hooks); flushing happens on the record/byte
    bounds, on the ``flush_us`` deadline timer, or explicitly.  All
    buffered lines reach the transport in ``write`` order.

    Args:
        writer: The stream to feed.
        batch_max: Records per coalesced payload (``<= 1`` flushes every
            write — the per-record wire path, kept for benchmarks and
            old-client emulation).
        flush_us: Flush deadline in microseconds for partially filled
            buffers; ``0`` also degrades to flush-per-write.

    Attributes:
        records: Lines accepted so far.
        flushes: Coalesced payloads handed to the transport.
    """

    __slots__ = ("_writer", "_transport", "_batch_max", "_flush_s",
                 "_buffer", "_bytes", "_pending", "_timer",
                 "records", "flushes")

    def __init__(
        self,
        writer: asyncio.StreamWriter,
        *,
        batch_max: int = DEFAULT_BATCH_MAX,
        flush_us: float = DEFAULT_FLUSH_US,
    ) -> None:
        self._writer = writer
        self._transport = writer.transport
        self._batch_max = max(1, batch_max)
        self._flush_s = max(0.0, flush_us) * 1e-6
        self._buffer: list[bytes] = []
        self._bytes = 0
        self._pending = 0
        self._timer: asyncio.TimerHandle | None = None
        self.records = 0
        self.flushes = 0

    @property
    def is_closing(self) -> bool:
        """Whether the underlying transport is closed or closing.

        A closing writer silently drops flushed payloads (matching the
        old per-record path), so reconnecting callers check this before
        writing and reopen the stream instead.
        """
        return self._transport.is_closing()

    def write(self, line: bytes) -> None:
        """Buffer one newline-terminated line; flush on a full batch."""
        self._push(line, 1)

    def write_batch(self, payload: bytes, records: int) -> None:
        """Buffer a pre-coalesced payload of ``records`` complete lines.

        Used where a whole batch is encoded in one go (e.g. the router's
        per-shard forwarding): the payload still counts ``records`` lines
        toward the batch bound, so latency behavior matches ``records``
        individual :meth:`write` calls.
        """
        self._push(payload, records)

    def _push(self, payload: bytes, records: int) -> None:
        self.records += records
        self._pending += records
        self._buffer.append(payload)
        self._bytes += len(payload)
        if (
            self._pending >= self._batch_max
            or self._bytes >= MAX_BATCH_BYTES
            or self._flush_s == 0.0
        ):
            self.flush()
        elif self._timer is None:
            self._timer = asyncio.get_running_loop().call_later(
                self._flush_s, self.flush
            )

    def flush(self) -> None:
        """Hand everything buffered to the transport as one payload."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        buffer = self._buffer
        if not buffer:
            return
        payload = buffer[0] if len(buffer) == 1 else b"".join(buffer)
        buffer.clear()
        self._bytes = 0
        self._pending = 0
        if self._transport.is_closing():
            return  # peer went away; drop the replies like the old path
        self.flushes += 1
        self._writer.write(payload)

    async def backpressure(self) -> None:
        """Suspend until the transport is back under its high-water mark.

        Does **not** force a flush — partially filled buffers keep their
        deadline — so callers can apply backpressure per batch without
        giving up coalescing.  A no-op in the common (unpaused) case.
        """
        transport = self._transport
        if (
            transport.get_write_buffer_size()
            > transport.get_write_buffer_limits()[1]
        ):
            await self._writer.drain()

    async def drain(self) -> None:
        """Flush, then apply backpressure."""
        self.flush()
        await self.backpressure()

    async def aclose(self) -> None:
        """Flush what's pending and close the underlying stream."""
        self.flush()
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def iter_line_batches(
    reader: asyncio.StreamReader,
    *,
    chunk_size: int = READ_CHUNK,
    initial: bytes = b"",
):
    """Yield every complete line available per socket wakeup.

    Each yielded batch is a list of stripped, non-empty line payloads (no
    trailing newline), in wire order.  Where ``readline`` wakes the
    consumer once per record, this wakes it once per *burst*: whatever
    the kernel buffered since the last read comes back as one batch for
    one batched decode.  A trailing unterminated line at EOF is yielded
    on its own, matching ``readline``'s end-of-stream behavior.

    Args:
        initial: Bytes already read off the socket (the byte the
            protocol negotiation peeked), treated as the head of the
            first chunk.
    """
    pending = initial
    if b"\n" in pending:
        *lines, pending = pending.split(b"\n")
        batch = [stripped for line in lines if (stripped := line.strip())]
        if batch:
            yield batch
    while True:
        chunk = await reader.read(chunk_size)
        if not chunk:
            tail = pending.strip()
            if tail:
                yield [tail]
            return
        pending += chunk
        if b"\n" not in chunk:
            continue
        *lines, pending = pending.split(b"\n")
        batch = [stripped for line in lines if (stripped := line.strip())]
        if batch:
            yield batch


async def iter_frame_batches(
    reader: asyncio.StreamReader,
    *,
    chunk_size: int = READ_CHUNK,
    parse_json: bool = True,
    raw_updates: bool = False,
    raw_specs: bool = False,
):
    """Binary dual of :func:`iter_line_batches`: decoded frames per wakeup.

    Yields lists of decoded records — :class:`~repro.db.objects.Update` /
    :class:`~repro.workload.transactions.TransactionSpec` instances,
    dicts (JSON frames), raw update/spec-frame bytes (``raw_updates=True``
    / ``raw_specs=True``, the router's zero-materialization paths), or
    ``ValueError`` entries
    for malformed frame bodies — in wire order.  Framing *and* decoding happen in one pass
    here (the length prefixes delimit records, there is no separate
    "split" step), which is exactly the per-record tax the binary
    protocol removes.  A partial frame at EOF is surfaced as one
    ``ValueError`` batch, mirroring the unterminated-line behavior.

    A corrupt frame *header* propagates as ``ValueError`` — the session
    cannot be resynchronized and the caller should close it.
    """
    decoder = FrameDecoder(
        parse_json=parse_json, raw_updates=raw_updates, raw_specs=raw_specs
    )
    while True:
        chunk = await reader.read(chunk_size)
        if not chunk:
            if decoder.pending_bytes:
                yield [ValueError(
                    f"session ended mid-frame ({decoder.pending_bytes} "
                    "trailing bytes)"
                )]
            return
        records = decoder.feed(chunk)
        if records:
            yield records


# ----------------------------------------------------------------------
# The RPC layer
# ----------------------------------------------------------------------
class RpcError(Exception):
    """Typed failure of one RPC call.

    Attributes:
        reason: Short machine-readable tag, mirroring the wire's typed
            error frames (``shard_down``, ``deadline``, ``closed``, ...).
        message: Human-readable detail.
        shard: Shard index the failure is attributed to, when known.
    """

    reason = "error"

    def __init__(
        self,
        message: str = "",
        *,
        reason: "str | None" = None,
        shard: "int | None" = None,
    ) -> None:
        if reason is not None:
            self.reason = reason
        self.message = message or self.reason
        self.shard = shard
        super().__init__(self.message)


class RpcDeadlineError(RpcError):
    """The per-call deadline expired before a reply arrived."""

    reason = "deadline"


class RpcClosedError(RpcError):
    """The channel closed (peer EOF, reset, or local close) mid-call.

    The fast-failure path: a killed shard worker resolves every in-flight
    sub-read immediately instead of burning its deadline.
    """

    reason = "closed"


class RpcChannel:
    """Correlation-id request/reply matching over one wire session.

    Owns both directions of a connection to a peer that replies with JSON
    records (in either wire protocol): stream records and requests go out
    through a :class:`CoalescingWriter`; one reader task matches every
    incoming record against the pending-call table and hands the rest —
    the pass-through reply stream — to ``on_push``.  This replaces the
    per-session reply pumps the cluster router used to hand-roll.

    Matching: a record correlates by its ``rid`` field, or by ``seq``
    when it is a transaction outcome (``kind == "outcome"``) — submitted
    sub-reads are re-id'd so their seq *is* the correlation id.  A
    matched ``kind == "error"`` record raises a typed :class:`RpcError`
    in the caller; channel close fails **all** pending calls with
    :class:`RpcClosedError` at once.

    Args:
        reader/writer: The connected session (the channel writes the
            binary preamble itself when ``protocol`` is binary).
        protocol: ``jsonl`` or ``binary`` — both what the peer reads and
            how its JSON replies come back.
        on_push: Callback for reply records that match no pending call.
        batch_max/flush_us: Outbound coalescing bounds.

    Attributes:
        failure: The unexpected exception that ended the reader task, if
            any — ``None`` for a clean EOF/reset.  Session owners count
            these, exactly as they counted pump failures.
    """

    __slots__ = ("protocol", "failure", "_writer", "_pending", "_on_push",
                 "_reader_task", "_closed")

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        protocol: str,
        batch_max: int = DEFAULT_BATCH_MAX,
        flush_us: float = DEFAULT_FLUSH_US,
        on_push: "Callable[[dict], None] | None" = None,
    ) -> None:
        self.protocol = protocol
        self.failure: Exception | None = None
        if protocol == PROTOCOL_BINARY:
            writer.write(WIRE_PREAMBLE)
        self._writer = CoalescingWriter(
            writer, batch_max=batch_max, flush_us=flush_us
        )
        self._pending: dict[object, asyncio.Future] = {}
        self._on_push = on_push
        self._closed = False
        self._reader_task = asyncio.ensure_future(self._read_replies(reader))

    # -- outbound -------------------------------------------------------
    @property
    def closing(self) -> bool:
        """Whether this channel can no longer complete calls."""
        return (
            self._closed
            or self._writer.is_closing
            or self._reader_task.done()
        )

    @property
    def records(self) -> int:
        """Stream records written so far (CoalescingWriter passthrough)."""
        return self._writer.records

    def post(self, payload: bytes, records: int = 1) -> None:
        """Send pre-encoded stream records, fire-and-forget."""
        self._writer.write_batch(payload, records)

    def request(self, record: dict) -> None:
        """Send one JSON request record in the session's protocol."""
        self._writer.write(encode_reply(record, self.protocol))

    def flush(self) -> None:
        """Flush the outbound coalescing buffer now."""
        self._writer.flush()

    async def backpressure(self) -> None:
        """Suspend until the outbound transport is under its high-water."""
        await self._writer.backpressure()

    # -- correlation ----------------------------------------------------
    def expect(self, key) -> asyncio.Future:
        """Register a pending call keyed by its correlation id.

        Call *before* sending the request so an instant reply cannot
        race the registration.  The future resolves to the reply record,
        or raises a typed :class:`RpcError`.
        """
        future = asyncio.get_running_loop().create_future()
        if key in self._pending:
            raise ValueError(f"correlation id {key!r} already in flight")
        self._pending[key] = future
        if self.closing and not future.done():
            future.set_exception(
                RpcClosedError(f"channel closed before call {key!r}")
            )
            future.exception()
        return future

    async def result(self, key, *, timeout: "float | None" = None) -> dict:
        """Await the reply for ``key``, bounded by ``timeout`` seconds.

        A collected call (reply, typed error, or closed-channel failure)
        is unregistered on return.  A timed-out call is *not*: the
        cancelled future stays registered as a tombstone, so a late
        reply matches it and is reaped instead of leaking to
        ``on_push``.

        Raises:
            RpcDeadlineError: no reply within ``timeout``.
            RpcError: the peer replied with a typed error frame.
            RpcClosedError: the channel died with the call in flight.
        """
        future = self._pending.get(key)
        if future is None:
            raise KeyError(f"no pending call with correlation id {key!r}")
        try:
            if timeout is None:
                return await future
            return await asyncio.wait_for(future, timeout)
        except (asyncio.TimeoutError, TimeoutError):
            raise RpcDeadlineError(
                f"no reply for call {key!r} within {timeout:.3f}s"
            ) from None
        finally:
            if future.done() and not future.cancelled():
                self._pending.pop(key, None)

    async def call(
        self, record: dict, key, *, timeout: "float | None" = None
    ) -> dict:
        """Round trip one request record: expect + send + await."""
        self.expect(key)
        self.request(record)
        self._writer.flush()
        return await self.result(key, timeout=timeout)

    # -- inbound --------------------------------------------------------
    async def _read_replies(self, reader: asyncio.StreamReader) -> None:
        try:
            if self.protocol == PROTOCOL_BINARY:
                async for records in iter_frame_batches(reader):
                    for record in records:
                        if isinstance(record, dict):
                            self._deliver(record)
            else:
                async for lines in iter_line_batches(reader):
                    for record in decode_lines(lines):
                        if isinstance(record, dict):
                            self._deliver(record)
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass  # peer went away: same outcome as EOF
        except Exception as exc:  # corrupt frame header etc. — typed close
            self.failure = exc
        finally:
            self._closed = True
            self._fail_pending()

    def _deliver(self, record: dict) -> None:
        key = record.get("rid")
        if key is None and record.get("kind") == "outcome":
            key = record.get("seq")
        future = self._pending.get(key) if key is not None else None
        if future is None:
            if self._on_push is not None:
                self._on_push(record)
            return
        if future.done():
            if future.cancelled():
                # Abandoned call (the deadline won): reap the tombstone.
                del self._pending[key]
            # Already resolved or failed: the reply stays collectable by
            # result(), which unregisters it; drop the duplicate record.
            return
        if record.get("kind") == "error":
            reason = record.get("reason", "error")
            future.set_exception(RpcError(
                record.get("message", ""),
                reason=reason,
                shard=record.get("shard"),
            ))
        else:
            future.set_result(record)

    def _fail_pending(self) -> None:
        # Failed calls stay registered: a result() arriving *after* the
        # close must collect the typed RpcClosedError, not a KeyError.
        for key, future in self._pending.items():
            if not future.done():
                future.set_exception(RpcClosedError(
                    f"channel closed with call {key!r} in flight"
                ))
                # Mark retrieved: a caller cancelled alongside the close
                # must not log "exception was never retrieved".
                future.exception()

    async def aclose(self) -> None:
        """Cancel the reader, fail pending calls, close the writer."""
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._fail_pending()
        await self._writer.aclose()
