"""repro.live — the wall-clock STRIP runtime.

The simulator answers "what would the paper's schedulers do"; this package
*runs* them: the same controller and scheduling algorithms (UF, TF, SU, OD,
FX, TF-SPLIT), the same bounded OS queue (``OSmax`` overflow drops) and
generation-ordered update queue (``UQmax`` / MA expiry), but clocked by
``time.monotonic()`` on asyncio instead of a discrete-event calendar.  The
queues stop being bookkeeping and become real backpressure: when the CPU
budget cannot keep up with the ingest rate, the OS queue fills and drops,
exactly as the paper's kernel would.

Layout:

* :class:`WallClock` — real-time implementation of the
  :class:`repro.sim.Clock` contract.
* :class:`LiveRuntime` — the wired model (via :mod:`repro.core.wiring`)
  plus ingest/submission APIs, mid-run metric snapshots, a watchdog, and
  graceful drain.
* :class:`LoadGenerator` — Poisson traffic synthesized from any
  :class:`~repro.config.SimulationConfig`, or bit-for-bit replay of a
  recorded simulator trace.
* :class:`MetricsStreamer` — periodic JSONL snapshots of a running system.
* :class:`IngestServer` — optional TCP ingest; each session negotiates
  JSONL or the binary frame protocol from its first bytes.
* :class:`ShardCluster` — N shard worker processes (one pipeline each)
  behind one ingest router; merged fleet snapshots and final results.
  The internal hop defaults to binary frames and can carry the update
  stream over shared-memory rings (:class:`~repro.live.shm.SpscRing`).
* :class:`DurabilityManager` — per-shard binary write-ahead log
  (:class:`UpdateLog`) plus compacted snapshots (:class:`SnapshotStore`),
  so supervisor restarts come back *warm*: snapshot restore + idempotent
  log replay, with the replay lag surfaced as a staleness gauge.

Run it: ``python -m repro.live serve|loadgen|bench`` (also installed as the
``repro-live`` console script).
"""

from repro.live.clock import WallClock
from repro.live.cluster import (
    ShardCluster,
    ShardDownError,
    ShardedBenchResult,
    run_sharded_bench,
)
from repro.live.durability import (
    DurabilityManager,
    Replayer,
    ReplayStats,
    SnapshotStore,
    UpdateLog,
    capture_state,
    read_log,
    restore_state,
)
from repro.live.loadgen import (
    CrossShardSpreader,
    DirectClient,
    LoadGenerator,
    WireClient,
)
from repro.live.observe import MetricsStreamer
from repro.live.runtime import LiveRuntime, TransactionHandle
from repro.live.server import IngestServer
from repro.live.shm import SpscRing
from repro.live.wire import (
    PROTOCOL_BINARY,
    PROTOCOL_JSONL,
    WIRE_PROTOCOLS,
    RpcChannel,
    RpcClosedError,
    RpcDeadlineError,
    RpcError,
    connect_with_retry,
    negotiate_protocol,
)

__all__ = [
    "CrossShardSpreader",
    "DirectClient",
    "DurabilityManager",
    "IngestServer",
    "LiveRuntime",
    "LoadGenerator",
    "MetricsStreamer",
    "PROTOCOL_BINARY",
    "PROTOCOL_JSONL",
    "Replayer",
    "ReplayStats",
    "RpcChannel",
    "RpcClosedError",
    "RpcDeadlineError",
    "RpcError",
    "ShardCluster",
    "ShardDownError",
    "ShardedBenchResult",
    "SnapshotStore",
    "SpscRing",
    "TransactionHandle",
    "UpdateLog",
    "WallClock",
    "WIRE_PROTOCOLS",
    "WireClient",
    "capture_state",
    "connect_with_retry",
    "negotiate_protocol",
    "read_log",
    "restore_state",
    "run_sharded_bench",
]
