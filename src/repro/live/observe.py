"""Live observability: periodic JSONL metric snapshots.

A :class:`MetricsStreamer` samples a running :class:`~repro.live.runtime.
LiveRuntime` on a fixed period and writes one JSON line per sample.  Each
line is the full :class:`~repro.metrics.results.SimulationResult` for the
measurement window so far (the same fields the simulator reports, computed
non-destructively mid-run) plus the live gauges the runtime adds in
``extras``: OS/update queue depths, install-latency percentiles, worst
dispatch lag, watchdog counters.

The source can be anything with a ``snapshot()`` returning a
``SimulationResult`` — a runtime, or a
:class:`~repro.live.cluster.ShardCluster` whose (async) snapshot is the
merged view of the whole shard fleet; the sampling task awaits it either
way, so one streamer serves both the single-process and the sharded
deployment.

Lines are self-describing, so the stream can be tailed by a human, plotted
with ``jq``/pandas, or diffed directly against a simulator result.
"""

from __future__ import annotations

import asyncio
import inspect
import json
import logging
import sys
from dataclasses import asdict
from pathlib import Path
from typing import IO

from repro.live.runtime import LiveRuntime

logger = logging.getLogger(__name__)


class MetricsStreamer:
    """Periodic JSONL snapshots of a live runtime (or shard cluster).

    Args:
        runtime: The object to sample — anything with a ``snapshot()``
            returning a ``SimulationResult``, sync or async.
        out: Destination — a path (appended to), a file-like object, or
            None to keep samples in memory only.
        interval: Seconds between samples.
        history: In-memory record cap (oldest dropped first); the
            ``history`` attribute always holds the most recent records
            regardless of ``out``.
    """

    def __init__(
        self,
        runtime,
        out: "str | Path | IO[str] | None" = None,
        *,
        interval: float = 1.0,
        history: int = 64,
    ) -> None:
        self.runtime = runtime
        self.interval = interval
        self.history: list[dict] = []
        self.sample_errors = 0
        self.last_error: str | None = None
        self._history_cap = history
        self._task: asyncio.Task | None = None
        self._stream: IO[str] | None = None
        self._owns_stream = False
        if isinstance(out, (str, Path)):
            self._stream = Path(out).open("a", encoding="utf-8")
            self._owns_stream = True
        elif out is not None:
            self._stream = out

    # ------------------------------------------------------------------
    def emit(self) -> dict:
        """Take one snapshot now; write it and return the record.

        Only valid for sources with a synchronous ``snapshot()`` (a
        runtime); a cluster-backed streamer must use :meth:`emit_async`.
        """
        snapshot = self.runtime.snapshot()
        if inspect.isawaitable(snapshot):
            raise TypeError(
                "this source's snapshot() is async; use emit_async()"
            )
        return self._record(snapshot)

    async def emit_async(self) -> dict:
        """Like :meth:`emit`, awaiting the snapshot if it is async."""
        snapshot = self.runtime.snapshot()
        if inspect.isawaitable(snapshot):
            snapshot = await snapshot
        return self._record(snapshot)

    def _record(self, snapshot) -> dict:
        record = asdict(snapshot)
        self.history.append(record)
        if len(self.history) > self._history_cap:
            del self.history[: len(self.history) - self._history_cap]
        if self._stream is not None:
            self._stream.write(json.dumps(record) + "\n")
            self._stream.flush()
        return record

    def start(self) -> None:
        """Spawn the periodic sampling task on the running event loop."""
        if self._task is not None:
            raise RuntimeError("metrics streamer is already running")
        self._task = asyncio.ensure_future(self._run())

    async def stop(self, *, final_emit: bool = True) -> None:
        """Stop sampling; by default emit one last snapshot first."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        if final_emit:
            try:
                await self.emit_async()
            except Exception as exc:
                self._note_sample_error(exc)
        if self._owns_stream and self._stream is not None:
            self._stream.close()
            self._stream = None

    async def _run(self) -> None:
        """Sample forever; a failed sample must not kill the sampler.

        A cluster-backed source raises while its shards are down or
        restarting — that is exactly when observability matters most, so
        the error is counted (``sample_errors`` / ``last_error``) and the
        next tick tries again.
        """
        while True:
            await asyncio.sleep(self.interval)
            try:
                await self.emit_async()
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                self._note_sample_error(exc)

    def _note_sample_error(self, exc: Exception) -> None:
        self.sample_errors += 1
        self.last_error = repr(exc)
        logger.warning("metrics sample failed: %r", exc)

    @staticmethod
    def format_line(record: dict) -> str:
        """Human-oriented one-line digest of a snapshot record.

        Cluster snapshots append worker liveness: how many shards are
        up, completed supervisor restarts, and records shed on down
        shards (``extras["workers"]``, absent for a plain runtime).
        """
        extras = record.get("extras", {})
        p99 = extras.get("install_latency_p99")
        line = (
            f"[{extras.get('wall_time', 0.0):8.2f}s] "
            f"applied={record['updates_applied']} "
            f"dropped={record['updates_os_dropped']} "
            f"expired={record['updates_expired']} "
            f"osq={extras.get('os_queue_depth', 0)} "
            f"uq={extras.get('update_queue_depth', 0)} "
            f"commit={record['transactions_committed']}/"
            f"{record['transactions_arrived']} "
            f"p99={'n/a' if p99 is None else f'{p99 * 1e3:.2f}ms'} "
            f"alerts={extras.get('watchdog_alerts', 0)}"
        )
        workers = extras.get("workers")
        if workers:
            up = sum(1 for worker in workers if worker["status"] == "up")
            restarts = sum(worker["restarts"] for worker in workers)
            shed = sum(worker["shed_shard_down"] for worker in workers)
            line += (
                f" workers={up}/{len(workers)}up"
                f" restarts={restarts} shed={shed}"
            )
        # Scatter-gather digest: only cluster snapshots that actually saw
        # cross-shard transactions carry these.
        xshard = extras.get("cross_shard_submits")
        if xshard:
            failed = sum(extras.get("sub_read_deadline_misses", ()))
            sub_p99 = extras.get("sub_read_latency_p99")
            line += (
                f" xshard={xshard} subfail={failed}"
                f" subp99={'n/a' if sub_p99 is None else f'{sub_p99 * 1e3:.2f}ms'}"
            )
        # Durability digest: merged cluster snapshots carry per-shard
        # lists, a single durable runtime carries scalars.
        replayed = extras.get("replayed_records")
        if replayed is not None:
            lag = extras.get("replay_lag_s", 0.0)
            if isinstance(replayed, list):
                replayed = sum(replayed)
                lag = max(lag) if lag else 0.0
            if replayed:
                line += f" replayed={replayed} replag={lag * 1e3:.0f}ms"
        snapshot_errors = extras.get("snapshot_errors")
        if isinstance(snapshot_errors, list):
            snapshot_errors = sum(snapshot_errors)
        if snapshot_errors:
            line += f" snaperr={snapshot_errors}"
        # Derived-view digest: count, stale count, applied deltas, fold.
        views = extras.get("views")
        if views:
            stale = sum(1 for entry in views.values() if entry.get("stale"))
            refreshes = sum(
                entry.get("refreshes", 0) for entry in views.values()
            )
            line += (
                f" views={stale}/{len(views)}stale"
                f" vdeltas={refreshes}"
                f" foldv={record.get('fold_views', 0.0):.3f}"
            )
        return line


def stream_to_stdout(runtime: LiveRuntime, *, interval: float = 1.0) -> MetricsStreamer:
    """Convenience: a streamer wired to stdout."""
    return MetricsStreamer(runtime, sys.stdout, interval=interval)
