"""Multi-core live mode: one shard per worker process.

``repro-live serve --shards N`` runs N worker processes, each hosting a
full single-shard pipeline (:class:`~repro.live.runtime.LiveRuntime` +
:class:`~repro.live.server.IngestServer` on a loopback port), behind one
public TCP router in the parent process.  The router speaks the same
JSONL wire protocol as a single server — clients cannot tell the
difference — and:

* rewrites each ``update`` / ``transaction`` record onto its owning
  shard (stable hash of the global object id, shard-local ids on the
  wire to the worker) and forwards it there over a per-shard
  :class:`~repro.live.wire.RpcChannel` — unmatched worker replies
  (single-shard outcomes) push straight back to the client;
* **scatter-gathers cross-shard transactions**: a spec whose read-set
  spans shards is split per owner (:meth:`ShardRouter.split_reads`),
  each sub-read submitted under a fresh correlation id, and the
  per-shard verdicts merged with the paper's MA/UU semantics — stale
  *anywhere* is stale, and the firm deadline is one shared window over
  the *slowest* shard (:func:`~repro.core.sharding.merge_verdicts`).
  This is deliberately not 2PC: sub-reads are read-only against each
  shard's local view, so there is nothing to prepare or roll back;
* answers ``{"kind": "snapshot"}`` with the *merged* fleet snapshot —
  per-shard snapshots fanned in over the workers' own wire protocol and
  aggregated by :meth:`SimulationResult.merge`, with the router's
  per-shard accounting in ``extras``.

Workers are plain ``multiprocessing`` ("spawn") children; control flows
over a pipe (ready/stop/result), data flows over TCP and (optionally)
shared memory.  Each worker rebuilds the (deterministic)
:class:`~repro.db.sharding.ShardRouter` from the global config, so
nothing stateful crosses the process boundary.

Two data-plane optimizations stack on the founding JSONL/TCP design:

* **Binary internal hop** (``wire="binary"``, the default): the
  router→worker connections speak the length-prefixed
  :class:`~repro.workload.codec.BinaryCodec` frames instead of JSONL —
  the workers' own :class:`~repro.live.server.IngestServer` negotiates
  per connection, so either protocol works on the inside regardless of
  what the *client* speaks on the outside (the public socket negotiates
  separately; a JSONL client can front a binary fleet and vice versa).
* **Shared-memory rings** (``shm=True``): one
  :class:`~repro.live.shm.SpscRing` per shard carries the
  fire-and-forget *update* stream as binary batch blobs, bypassing the
  loopback-TCP copy entirely.  Transactions (which need a reply path
  with per-session correlation) and snapshots stay on TCP.  A full ring
  falls back to TCP for that batch; a restarted worker permanently
  disables its shard's ring (fresh process, stale cursors) and the
  shard keeps serving over TCP — counted in ``extras``
  (``ring_records`` / ``ring_fallbacks``).  One relaxation is inherent:
  updates (ring) and transactions (TCP) travel different channels, so
  the strict wire order *between* an update and a following transaction
  is no longer guaranteed — within each channel order is preserved, and
  the paper's workload semantics (fire-and-forget stream vs. queried
  reads) tolerate exactly this.

The cluster is **fault tolerant** the same way the scheduler is overload
tolerant: by shedding, accounting, and recovering.  A supervisor task
polls every worker's process sentinel; when a worker dies it is either
restarted (fresh :class:`LiveRuntime`, re-registered port, counted in
``extras["worker_restarts"]``) or — once ``restart_limit`` is exhausted —
marked **down**.  Records routed to a down shard are shed with a
``{"kind": "error", "reason": "shard_down"}`` reply and counted per shard
in ``extras["shed_shard_down"]``, mirroring the paper's drop accounting;
the client session stays up.  ``snapshot()`` and ``shutdown()`` skip dead
workers under bounded timeouts (join -> terminate -> kill escalation) and
merge the survivors, noting the dead shards in ``extras``.  See
``docs/RESILIENCE.md`` for the failure model.

:func:`run_sharded_bench` reuses the same worker machinery to measure
aggregate install throughput at a given shard count, driving each shard
with an in-process :class:`~repro.live.loadgen.LoadGenerator` (no
sockets — it measures scheduler capacity, not socket throughput).
"""

from __future__ import annotations

import asyncio
import itertools
import logging
import multiprocessing
import os
import signal
import socket
from dataclasses import asdict, dataclass, field, replace

from repro.config import SimulationConfig
from repro.core.sharding import shard_config, shard_view_key_map
from repro.db.views import merge_view_reports
from repro.db.sharding import ROUTER_VERSION, ShardRouter, topology_record
from repro.live.clock import WallClock
from repro.live.durability import DurabilityManager
from repro.live.loadgen import LoadGenerator
from repro.live.plane import (
    RouterPlane,
    ShardDownError,
    _encode_hop_frames,
    _router_plane_main,
)
from repro.live.runtime import LiveRuntime
from repro.db.objects import Update
from repro.live.server import ClusterView, IngestServer
from repro.live.shm import DEFAULT_RING_BYTES, SpscRing
from repro.live.wire import (
    DEFAULT_BATCH_MAX,
    DEFAULT_FLUSH_US,
    PROTOCOL_BINARY,
    PROTOCOL_JSONL,
    WIRE_PROTOCOLS,
    RpcChannel,
    RpcClosedError,
    RpcError,
    connect_with_retry,
)
from repro.metrics.results import SimulationResult
from repro.metrics.storage import result_from_dict
from repro.workload.codec import BinaryCodec

logger = logging.getLogger(__name__)

#: How long the parent waits for a worker to report its port or result.
_WORKER_TIMEOUT = 60.0

#: Pipe poll period inside async waits.
_POLL_INTERVAL = 0.02

#: Per-stage wait inside the join -> terminate -> kill escalation.
_REAP_GRACE = 2.0


# ----------------------------------------------------------------------
# Extras merging (planes x shards)
# ----------------------------------------------------------------------
#: Scalar counters summed across sources.
_EXTRAS_SUM = frozenset({
    "records_received", "protocol_errors", "cross_shard_submits",
    "remapped_reads", "routing_errors", "topology_requests",
    "direct_records", "moved_replies", "stale_epoch_redirects",
    "hello_records",
})
#: Per-shard counter lists summed elementwise across sources.
_EXTRAS_SUM_LIST = frozenset({
    "updates_routed", "transactions_routed", "fanout_sub_reads",
    "sub_read_misses", "sub_read_aborts", "sub_read_deadline_misses",
    "shed_shard_down",
})
#: Gauges merged by max (None = no samples on that source).
_EXTRAS_MAX = frozenset({"sub_read_latency_p99"})
#: Topology facts every source must agree on.
_EXTRAS_EQUAL = frozenset({"shards", "router_version"})


def merge_extras_sources(*sources: dict) -> dict:
    """Merge ``extras`` counter dicts from multiple sources into one.

    The cluster's counters now arrive from several places at once —
    every routing plane reports its own routing/shed/fan-out stats, and
    every shard worker reports its own direct-ingest stats — and most of
    them share key names.  Pre-plane code built ``extras`` from exactly
    one source per key, so a duplicate silently meant last-write-wins;
    here every key carries an explicit merge rule (sum, elementwise sum,
    max, or must-be-equal), and a duplicate key *without* a rule raises
    instead of clobbering.

    Raises:
        AssertionError: a duplicate key has no merge rule, two sources
            disagree on a must-be-equal fact, or two per-shard lists
            have different lengths.
    """
    merged: dict = {}
    for source in sources:
        for key, value in source.items():
            if key not in merged:
                merged[key] = list(value) if key in _EXTRAS_SUM_LIST else value
                continue
            if key in _EXTRAS_SUM:
                merged[key] += value
            elif key in _EXTRAS_SUM_LIST:
                current = merged[key]
                if len(current) != len(value):
                    raise AssertionError(
                        f"extras key {key!r}: per-shard lists of different "
                        f"lengths ({len(current)} vs {len(value)})"
                    )
                merged[key] = [a + b for a, b in zip(current, value)]
            elif key in _EXTRAS_MAX:
                if value is not None:
                    current = merged[key]
                    merged[key] = (
                        value if current is None else max(current, value)
                    )
            elif key in _EXTRAS_EQUAL:
                if merged[key] != value:
                    raise AssertionError(
                        f"extras key {key!r} disagrees across sources: "
                        f"{merged[key]!r} != {value!r}"
                    )
            else:
                raise AssertionError(
                    f"duplicate extras key {key!r} with no merge rule; "
                    "add it to an _EXTRAS_* registry in repro.live.cluster"
                )
    return merged


# ----------------------------------------------------------------------
# Worker processes
# ----------------------------------------------------------------------
def _ignore_signals() -> None:
    """Shield a worker from group-delivered SIGINT/SIGTERM (Ctrl-C hits
    the whole foreground group); shutdown arrives over the pipe, and the
    daemon flag reaps workers if the parent dies."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_IGN)


def _serve_worker_main(
    conn, config, algorithm, algorithm_kwargs, index, shards,
    batch_max=DEFAULT_BATCH_MAX, flush_us=DEFAULT_FLUSH_US,
    ring_name=None, log_dir=None, fsync="never", snapshot_interval=5.0,
    views=None,
):
    """Entry point of one serving shard (runs in a spawned process)."""
    _ignore_signals()
    asyncio.run(
        _serve_worker_async(
            conn, config, algorithm, algorithm_kwargs, index, shards,
            batch_max, flush_us, ring_name, log_dir, fsync,
            snapshot_interval, views,
        )
    )


#: Ring consumer sleep when the ring is empty.  Long enough to stay off
#: the CPU the scheduler needs, short enough to stay far under the
#: paper's millisecond-scale deadlines.
_RING_POLL = 0.0005


async def _consume_ring(ring: SpscRing, runtime: LiveRuntime) -> None:
    """Drain one shard's update ring into the runtime, forever.

    Each ring entry is one :func:`~repro.workload.codec.encode_frames`
    blob of updates.  Arrivals are stamped at delivery time exactly like
    the TCP path (:meth:`IngestServer._dispatch_batch` does the same):
    the blob's arrival times are in the router's clock domain.
    """
    while True:
        blobs = ring.pop_all()
        if not blobs:
            await asyncio.sleep(_RING_POLL)
            continue
        now = runtime.clock.now
        updates: list[Update] = []
        for blob in blobs:
            try:
                records = BinaryCodec.decode(blob)
            except ValueError as exc:  # pragma: no cover - producer bug
                logger.error("dropping corrupt ring blob: %s", exc)
                continue
            for item in records:
                if not isinstance(item, Update):
                    logger.warning(
                        "non-update record on the ring: %r", type(item)
                    )
                    continue
                delta = now - item.arrival_time
                if delta > 0:
                    item.arrival_time = now
                    item.generation_time += delta
                updates.append(item)
        if updates:
            runtime.ingest_batch(updates)
        # Yield between drains even under sustained pressure.
        await asyncio.sleep(0)


async def _serve_worker_async(
    conn, config, algorithm, kwargs, index, shards,
    batch_max=DEFAULT_BATCH_MAX, flush_us=DEFAULT_FLUSH_US,
    ring_name=None, log_dir=None, fsync="never", snapshot_interval=5.0,
    views=None,
):
    router = ShardRouter(config.updates.n_low, config.updates.n_high, shards)
    view = ClusterView(router, index)
    local_config = shard_config(config, router, index)
    manager = None
    if log_dir is not None:
        # Recovery plan first: the clock must *start* in the dead
        # incarnation's time domain, and the clock is fixed at
        # construction.
        manager = DurabilityManager(
            log_dir, index, fsync=fsync, snapshot_interval=snapshot_interval
        )
        runtime = LiveRuntime(
            local_config, algorithm,
            clock=WallClock(start_at=manager.resume_at), **kwargs
        )
    else:
        runtime = LiveRuntime(local_config, algorithm, **kwargs)
    runtime.start()
    stats = None
    if manager is not None:
        # Restore + replay *before* the log attaches (replayed records
        # are already on disk) and before the port is announced (the
        # router only routes to a warm shard).
        stats = await manager.recover(runtime)
        manager.attach(runtime)
        manager.start(runtime)
    if views:
        # Group keys must be global object ids so the supervisor can
        # merge per-shard view states without collisions.
        runtime.views.set_key_map(shard_view_key_map(router, index))
        for record in views:
            runtime.register_view(record)
    server = IngestServer(
        runtime, "127.0.0.1", 0, batch_max=batch_max, flush_us=flush_us,
        cluster_view=view,
    )
    _, port = await server.start()
    ring = None
    ring_task = None
    if ring_name is not None:
        ring = SpscRing.attach(ring_name)
        ring_task = asyncio.ensure_future(_consume_ring(ring, runtime))
    if stats is not None:
        conn.send(("ready", port, {
            "replayed_records": stats.replayed_records,
            "replay_lag_s": stats.replay_lag_s,
        }))
    else:
        conn.send(("ready", port))
    # Control loop: topology broadcasts keep the view fresh (for smart
    # clients' topology/moved records) until the stop message arrives.
    message = None
    while message is None:
        while not conn.poll():
            await asyncio.sleep(0.05)
        received = conn.recv()
        if received[0] == "topology":  # ("topology", epoch, workers)
            view.apply(received[1], received[2])
        else:
            message = received  # ("stop", drain_timeout)
    drain_timeout = message[1] if len(message) > 1 else 5.0
    await server.stop()
    if ring_task is not None:
        # Final drain so updates already published to the ring make the
        # result, then stop consuming.
        ring_task.cancel()
        try:
            await ring_task
        except asyncio.CancelledError:
            pass
        await _consume_ring_once(ring, runtime)
        ring.close()
    # Drain first so the final snapshot captures settled state; the
    # snapshot must precede finalize() inside shutdown(), which
    # destructively closes the ledgers' open stale intervals.
    await runtime.drain(drain_timeout)
    if manager is not None:
        await manager.stop(runtime)
    result = await runtime.shutdown(drain_timeout=0.0)
    payload = asdict(result)
    direct = server.direct_accounting()
    if direct is not None:
        # Smart clients bypassed the router on this shard: ship the
        # worker-side direct/redirect counters so the merge can fold
        # them in next to the planes' routing counters.
        extras = dict(payload.get("extras") or {})
        extras["direct"] = direct
        payload["extras"] = extras
    conn.send(("result", payload))


async def _consume_ring_once(ring: SpscRing, runtime: LiveRuntime) -> None:
    """One last non-blocking drain during worker shutdown."""
    blobs = ring.pop_all()
    now = runtime.clock.now
    updates: list[Update] = []
    for blob in blobs:
        try:
            records = BinaryCodec.decode(blob)
        except ValueError:  # pragma: no cover - producer bug
            continue
        for item in records:
            if isinstance(item, Update):
                delta = now - item.arrival_time
                if delta > 0:
                    item.arrival_time = now
                    item.generation_time += delta
                updates.append(item)
    if updates:
        runtime.ingest_batch(updates)


def _bench_worker_main(
    conn, config, algorithm, algorithm_kwargs, index, shards, seconds, ramp,
    batch_max=DEFAULT_BATCH_MAX,
):
    """Entry point of one benchmark shard (runs in a spawned process)."""
    _ignore_signals()
    asyncio.run(
        _bench_worker_async(
            conn, config, algorithm, algorithm_kwargs, index, shards,
            seconds, ramp, batch_max
        )
    )


async def _bench_worker_async(
    conn, config, algorithm, kwargs, index, shards, seconds, ramp,
    batch_max=DEFAULT_BATCH_MAX,
):
    if shards == 1:
        local_config = config
    else:
        router = ShardRouter(config.updates.n_low, config.updates.n_high, shards)
        k_low, k_high = router.counts(index)
        share = (k_low + k_high) / (config.updates.n_low + config.updates.n_high)
        local_config = shard_config(config, router, index)
        # Each shard receives its keyspace share of the offered load, and
        # a decorrelated seed so shards don't draw phase-locked arrivals.
        local_config = local_config.with_updates(
            arrival_rate=config.updates.arrival_rate * share
        )
        local_config = local_config.with_transactions(
            arrival_rate=config.transactions.arrival_rate * share
        )
        local_config = local_config.replace(seed=config.seed + 7919 * index)
    runtime = LiveRuntime(local_config, algorithm, **kwargs)
    runtime.start()
    generator = LoadGenerator(runtime, batch_max=batch_max)
    generator.start()
    if ramp > 0:
        await asyncio.sleep(ramp)
        runtime.begin_measurement()
    await asyncio.sleep(seconds)
    generator.stop()
    result = await runtime.shutdown()
    conn.send(("result", asdict(result)))


async def _pipe_recv(conn, process, timeout=_WORKER_TIMEOUT):
    """Await one pipe message from a worker without blocking the loop."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not conn.poll():
        if not process.is_alive():
            raise RuntimeError(
                f"shard worker pid={process.pid} died "
                f"(exitcode {process.exitcode})"
            )
        if loop.time() > deadline:
            raise TimeoutError("timed out waiting for a shard worker")
        await asyncio.sleep(_POLL_INTERVAL)
    return conn.recv()


async def _reap(process, *, grace: float = _REAP_GRACE) -> None:
    """Retire one worker process with bounded escalation.

    Wait up to ``grace`` for a voluntary exit, then ``terminate()``, wait
    again, then ``kill()`` — so a hung or signal-shielded worker can delay
    shutdown by at most ``2 * grace`` instead of forever.  Always joins at
    the end so the child is reaped (no zombies).
    """
    if process is None:
        return
    loop = asyncio.get_running_loop()
    for escalate in (process.terminate, process.kill):
        deadline = loop.time() + grace
        while process.is_alive() and loop.time() < deadline:
            await asyncio.sleep(_POLL_INTERVAL)
        if not process.is_alive():
            break
        escalate()
    process.join(timeout=1.0)


@dataclass
class WorkerState:
    """Parent-side liveness record of one shard worker.

    Attributes:
        index: Shard index (stable across restarts).
        process / conn: The current child process and its control pipe;
            replaced wholesale on restart.
        port: The worker's current loopback ingest port (re-registered
            on restart — restarted workers bind a fresh port).
        status: ``starting`` | ``up`` | ``restarting`` | ``down``.
            Anything other than ``up`` sheds routed records.
        restarts: Completed supervisor restarts of this shard.
        shed_shard_down: Records shed because this shard was not up.
        ring: This shard's update ring (``None`` when ``shm`` is off).
        ring_enabled: Whether the ring is in service — permanently
            ``False`` after a worker restart (the fresh process never
            attaches; see the module docstring).
        ring_retired: The ring was retired (unlinked) after a worker
            death; blocks ``_spawn`` from creating a replacement.
        ring_records: Updates delivered through the ring.
        ring_fallbacks: Update batches diverted to TCP because the ring
            was full or disabled.
        replayed_records: Log records the current incarnation replayed
            on its warm start (0 for cold starts).
        replay_lag_s: Wall seconds the warm start spent restoring +
            replaying — the shard's recovery-staleness component.
        snapshot_errors: Failed durability snapshot captures the worker
            has reported (via snapshot extras; 0 when not durable).
        last_snapshot_error: Most recent capture failure, as ``repr``.
    """

    index: int
    process: "multiprocessing.process.BaseProcess | None" = None
    conn: object | None = None
    port: int = 0
    status: str = "starting"
    restarts: int = 0
    shed_shard_down: int = 0
    ring: "SpscRing | None" = None
    ring_enabled: bool = False
    ring_retired: bool = False
    ring_records: int = 0
    ring_fallbacks: int = 0
    replayed_records: int = 0
    replay_lag_s: float = 0.0
    snapshot_errors: int = 0
    last_snapshot_error: "str | None" = None

    def liveness(self) -> dict:
        """This worker's row in ``extras["workers"]``."""
        return {
            "shard": self.index,
            "status": self.status,
            "restarts": self.restarts,
            "shed_shard_down": self.shed_shard_down,
            "port": self.port,
            "ring": self.ring_enabled,
            "ring_records": self.ring_records,
            "ring_fallbacks": self.ring_fallbacks,
            "replayed_records": self.replayed_records,
            "replay_lag_s": self.replay_lag_s,
            "snapshot_errors": self.snapshot_errors,
            "last_snapshot_error": self.last_snapshot_error,
        }


@dataclass
class PlaneState:
    """Parent-side liveness record of one routing-plane process.

    Attributes:
        index: Plane index (stable across restarts).
        process / conn: The current child process and its control pipe.
        status: ``starting`` | ``up`` | ``restarting`` | ``down``.
        restarts: Completed supervisor restarts of this plane.
        stats: Last stats dict the plane reported (kept across death so
            a crashed plane's routed-record accounting still merges).
    """

    index: int
    process: "multiprocessing.process.BaseProcess | None" = None
    conn: object | None = None
    status: str = "starting"
    restarts: int = 0
    stats: "dict | None" = None


class _ClusterTopology:
    """The in-parent plane's view of the live ``WorkerState`` table.

    Reads the cluster's own state at use time (no copies), so the plane
    observes supervisor transitions — restarts, mark-downs, fresh ports
    — the instant they land, exactly as the pre-extraction router did.
    """

    def __init__(self, cluster: "ShardCluster") -> None:
        self._cluster = cluster

    @property
    def epoch(self) -> int:
        return self._cluster.epoch

    def port_of(self, shard: int) -> int:
        return self._cluster._workers[shard].port

    def host_of(self, shard: int) -> str:
        return "127.0.0.1"

    def status_of(self, shard: int) -> str:
        return self._cluster._workers[shard].status

    def record(self) -> dict:
        return self._cluster.topology_record()


# ----------------------------------------------------------------------
# The cluster (parent side)
# ----------------------------------------------------------------------
class ShardCluster:
    """N shard worker processes behind one public JSONL/TCP router.

    Args:
        config: Global configuration; object counts and queue budgets are
            split across shards by the router.
        algorithm: Scheduler registry name (each worker builds its own
            instance).
        shards: Worker count (>= 2; use a plain server for one shard).
        host / port: Public bind address of the router socket.
        algorithm_kwargs: Constructor args for the algorithm.
        restart_limit: Times the supervisor restarts one crashed shard
            worker before marking the shard down for good (0 = never
            restart, shed immediately).
        supervise_interval: Supervisor sentinel-poll period in seconds.
        snapshot_timeout: Bound on one shard's snapshot round trip; a
            shard that cannot answer inside it is skipped (and its
            records shed once the supervisor confirms the death).
        connect_attempts: Per-connection retry budget for upstream and
            snapshot connections (see
            :func:`~repro.live.wire.connect_with_retry`).
        shutdown_grace: Extra seconds past ``drain_timeout`` that
            :meth:`shutdown` waits for each worker's final result before
            declaring the shard dead and escalating.
        rpc_grace: Extra seconds on top of a cross-shard transaction's
            own firm deadline (execution estimate + slack) before the
            router gives up on a shard's sub-read and scores it a
            deadline miss — covers the scatter/gather wire hops, which
            the spec's deadline does not know about.
        routers: Routing-plane count.  ``1`` (default) serves the public
            socket from one :class:`~repro.live.plane.RouterPlane` in
            the parent process — the founding topology.  ``N >= 2``
            spawns N plane *processes* all bound to the same public
            ``(host, port)`` via ``SO_REUSEPORT``; the kernel balances
            client connections across them, each holds its own upstream
            channels to every worker, and the supervisor restarts a
            crashed plane like a worker.  Requires a platform with
            ``SO_REUSEPORT`` (Linux/BSD/macOS) and is incompatible with
            ``shm`` (a ring is single-producer).
        wire: Protocol of the internal router→worker hop: ``"binary"``
            (default — struct frames, no JSON on the hot path) or
            ``"jsonl"``.  Independent of what clients speak on the
            public socket (negotiated per session).
        shm: Carry the update stream over per-shard shared-memory rings
            (:class:`~repro.live.shm.SpscRing`) instead of loopback TCP;
            transactions and snapshots stay on TCP.  Requires
            ``wire="binary"`` (the ring carries binary batch blobs).
        ring_bytes: Data capacity of each shard's ring.
        log_dir: Directory for per-shard write-ahead logs + snapshots
            (see :mod:`repro.live.durability`).  ``None`` (default)
            disables durability: restarts come back cold, exactly the
            pre-durability behavior.
        fsync: Log fsync policy — ``never`` | ``interval`` | ``always``.
        snapshot_interval: Seconds between compacted snapshots (each
            truncates the shard's log).
    """

    def __init__(
        self,
        config: SimulationConfig,
        algorithm: str = "TF",
        *,
        shards: int,
        host: str = "127.0.0.1",
        port: int = 0,
        algorithm_kwargs: dict | None = None,
        batch_max: int = DEFAULT_BATCH_MAX,
        flush_us: float = DEFAULT_FLUSH_US,
        restart_limit: int = 1,
        supervise_interval: float = 0.05,
        snapshot_timeout: float = 10.0,
        connect_attempts: int = 6,
        shutdown_grace: float = 10.0,
        rpc_grace: float = 0.25,
        routers: int = 1,
        wire: str = PROTOCOL_BINARY,
        shm: bool = False,
        ring_bytes: int = DEFAULT_RING_BYTES,
        log_dir: "str | None" = None,
        fsync: str = "never",
        snapshot_interval: float = 5.0,
        views: "list | None" = None,
    ) -> None:
        if shards < 2:
            raise ValueError("ShardCluster needs >= 2 shards")
        if not isinstance(algorithm, str):
            raise ValueError("sharded serving needs an algorithm name")
        if restart_limit < 0:
            raise ValueError("restart_limit must be >= 0")
        if wire not in WIRE_PROTOCOLS:
            raise ValueError(
                f"unknown wire protocol {wire!r}; expected one of "
                f"{WIRE_PROTOCOLS}"
            )
        if shm and wire != PROTOCOL_BINARY:
            raise ValueError("shm rings require the binary wire protocol")
        if routers < 1:
            raise ValueError(f"need at least one router plane, got {routers}")
        if routers > 1 and shm:
            raise ValueError(
                "shm rings are single-producer; they cannot be shared by "
                "multiple router planes (use routers=1 or shm=False)"
            )
        if routers > 1 and not hasattr(socket, "SO_REUSEPORT"):
            raise ValueError(
                "routers > 1 needs SO_REUSEPORT, which this platform "
                "does not provide"
            )
        config.validate()
        self.config = config
        self.algorithm = algorithm
        self.algorithm_kwargs = dict(algorithm_kwargs or {})
        self.shards = shards
        self.host = host
        self.port = port
        self.batch_max = batch_max
        self.flush_us = flush_us
        self.restart_limit = restart_limit
        self.supervise_interval = supervise_interval
        self.snapshot_timeout = snapshot_timeout
        self.connect_attempts = connect_attempts
        self.shutdown_grace = shutdown_grace
        self.rpc_grace = rpc_grace
        self.routers = routers
        self.wire = wire
        self.shm = shm
        self.ring_bytes = ring_bytes
        self.log_dir = log_dir
        self.fsync = fsync
        self.snapshot_interval = snapshot_interval
        # Derived views registered on every worker at spawn: ViewSpec
        # objects, CLI strings, or wire records — normalized to records
        # here (they cross the process boundary as plain dicts).
        from repro.db.views import ViewSpec

        self.views = [
            (
                ViewSpec.parse(spec) if isinstance(spec, str)
                else ViewSpec.from_record(spec) if isinstance(spec, dict)
                else spec
            ).to_record()
            for spec in (views or [])
        ]
        self.router = ShardRouter(
            config.updates.n_low, config.updates.n_high, shards
        )
        #: Topology epoch: bumped (and broadcast to workers and remote
        #: planes) whenever a worker endpoint or status changes, so smart
        #: clients can detect a stale shard map (see ``docs/SCALING.md``).
        self.epoch = 0
        self._rid = itertools.count(1)
        self._control: "dict[int, RpcChannel]" = {}
        self._workers: list[WorkerState] = []
        self._planes: list[PlaneState] = []
        self._plane_services: set[asyncio.Task] = set()
        self._plane_waiters: "dict[tuple[int, int], asyncio.Future]" = {}
        self._plane_tokens = itertools.count(1)
        self._context = None
        self._server: asyncio.AbstractServer | None = None
        self._probe: "socket.socket | None" = None
        self._supervisor: asyncio.Task | None = None
        self._restart_tasks: set[asyncio.Task] = set()
        self._result: SimulationResult | None = None
        # The in-parent data plane (routers == 1): shares this cluster's
        # router and worker table, so accounting and fault semantics are
        # exactly the pre-extraction ones.
        self._plane: "RouterPlane | None" = None
        if routers == 1:
            self._plane = RouterPlane(
                config,
                shards=shards,
                topology=_ClusterTopology(self),
                wire=wire,
                batch_max=batch_max,
                flush_us=flush_us,
                rpc_grace=rpc_grace,
                connect_attempts=connect_attempts,
                index=0,
                router=self.router,
                snapshot_cb=self._snapshot_payload,
                ring_push=self._ring_push if shm else None,
            )

    @property
    def ports(self) -> list[int]:
        """Current loopback ingest port of every worker (0 = not up yet)."""
        return [worker.port for worker in self._workers]

    # ------------------------------------------------------------------
    # Aggregated data-plane counters (across all planes)
    # ------------------------------------------------------------------
    def _plane_sources(self) -> list[dict]:
        """Per-plane stats dicts: live for the in-parent plane, last
        reported for plane processes (refreshed by
        :meth:`_gather_plane_stats`)."""
        sources = []
        if self._plane is not None:
            sources.append(self._plane.stats())
        sources.extend(
            plane.stats for plane in self._planes if plane.stats is not None
        )
        return sources

    @property
    def records_received(self) -> int:
        """Records routed across every plane (remote: last reported)."""
        return sum(s.get("records_received", 0) for s in self._plane_sources())

    @property
    def errors(self) -> int:
        """Protocol errors across every plane (remote: last reported)."""
        return sum(s.get("protocol_errors", 0) for s in self._plane_sources())

    @property
    def cross_shard_submits(self) -> int:
        return sum(
            s.get("cross_shard_submits", 0) for s in self._plane_sources()
        )

    def _shed_totals(self) -> list[int]:
        totals = [0] * self.shards
        for source in self._plane_sources():
            for shard, count in enumerate(source.get("shed_shard_down", ())):
                totals[shard] += count
        return totals

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Spawn the workers, wait for their ports, bind the router plane(s)."""
        if self._workers:
            raise RuntimeError("cluster is already running")
        self._context = multiprocessing.get_context("spawn")
        self._workers = [WorkerState(index) for index in range(self.shards)]
        for worker in self._workers:
            self._spawn(worker)
        for worker in self._workers:
            message = await _pipe_recv(worker.conn, worker.process)
            if message[0] != "ready":  # pragma: no cover - defensive
                raise RuntimeError(f"unexpected worker message: {message[0]}")
            self._note_ready(worker, message)
        if self.routers == 1:
            self._server = await asyncio.start_server(
                self._plane.handle, self.host, self.port
            )
            sockname = self._server.sockets[0].getsockname()
            self.host, self.port = sockname[0], sockname[1]
        else:
            # Fix the concrete public port with a bound-but-never-listening
            # probe socket (SO_REUSEPORT: only *listening* sockets receive
            # connections, so the probe never steals one), then hand the
            # same (host, port) to every plane process.
            self._bind_probe()
            self._planes = [PlaneState(index) for index in range(self.routers)]
            for plane in self._planes:
                self._spawn_plane(plane)
            for plane in self._planes:
                message = await _pipe_recv(plane.conn, plane.process)
                if message[0] != "ready":  # pragma: no cover - defensive
                    raise RuntimeError(
                        f"unexpected plane message: {message[0]}"
                    )
                plane.status = "up"
            for plane in self._planes:
                self._plane_services.add(
                    asyncio.ensure_future(self._plane_service(plane))
                )
        # Epoch 1: the initial all-ready topology, broadcast to workers
        # (for smart clients' topology/moved replies) and planes.
        self._bump_epoch()
        self._supervisor = asyncio.ensure_future(self._supervise())
        return self.host, self.port

    def _bind_probe(self) -> None:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        probe.bind((self.host, self.port))
        self.host, self.port = probe.getsockname()[:2]
        self._probe = probe

    def _spawn_plane(self, plane: PlaneState) -> None:
        """(Re)create one routing-plane process and its control pipe."""
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_router_plane_main,
            args=(
                child_conn,
                self.config,
                self.host,
                self.port,
                self.shards,
                self.wire,
                self.batch_max,
                self.flush_us,
                self.rpc_grace,
                self.connect_attempts,
                plane.index,
                self.epoch,
                self._topology_entries(),
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        plane.process = process
        plane.conn = parent_conn

    async def _plane_service(self, plane: PlaneState) -> None:
        """Pump one plane process's control pipe.

        Outbound plane requests (a client asked that plane for a fleet
        snapshot) are answered with the parent's own :meth:`snapshot`;
        inbound replies (stats / ingest_closed / result) resolve the
        token-keyed futures :meth:`_plane_call` is awaiting.  The task
        exits on the plane's final ``result`` message or on pipe EOF
        (plane death — the supervisor handles the restart).
        """
        conn = plane.conn
        try:
            while True:
                while not conn.poll():
                    await asyncio.sleep(_POLL_INTERVAL)
                message = conn.recv()
                kind = message[0]
                if kind == "snapshot_req":
                    asyncio.ensure_future(
                        self._answer_plane_snapshot(plane, message[1])
                    )
                    continue
                payload = message[2] if len(message) > 2 else None
                if kind in ("stats", "result") and payload is not None:
                    plane.stats = payload
                future = self._plane_waiters.pop(
                    (plane.index, message[1]), None
                )
                if future is not None and not future.done():
                    future.set_result(payload)
                if kind == "result":
                    return
        except (EOFError, OSError):
            return

    async def _answer_plane_snapshot(
        self, plane: PlaneState, token: int
    ) -> None:
        """Serve one plane's snapshot request (only the parent can fan in)."""
        try:
            payload, ok = asdict(await self.snapshot()), True
        except ShardDownError as exc:
            payload, ok = str(exc), False
        try:
            plane.conn.send(("snapshot_res", token, ok, payload))
        except (BrokenPipeError, OSError):  # plane died while we gathered
            pass

    async def _plane_call(self, plane: PlaneState, kind: str, timeout: float):
        """One tokened request/reply round trip to a plane process.

        Returns the reply payload, or ``None`` when the plane is down,
        the pipe broke, or the reply did not arrive inside ``timeout`` —
        plane trouble degrades accounting freshness, never the caller.
        """
        if plane.conn is None or plane.status == "down":
            return None
        token = next(self._plane_tokens)
        future = asyncio.get_running_loop().create_future()
        self._plane_waiters[(plane.index, token)] = future
        try:
            plane.conn.send((kind, token))
        except (BrokenPipeError, OSError):
            self._plane_waiters.pop((plane.index, token), None)
            return None
        try:
            return await asyncio.wait_for(future, timeout)
        except (asyncio.TimeoutError, TimeoutError):
            self._plane_waiters.pop((plane.index, token), None)
            return None

    def _spawn(self, worker: WorkerState) -> None:
        """(Re)create one shard worker process and its control pipe."""
        if self.shm and worker.ring is None and not worker.ring_retired:
            # Short segment names: macOS caps them at 31 chars.
            worker.ring = SpscRing.create(
                self.ring_bytes, name=f"rpr{os.getpid()}s{worker.index}"
            )
            worker.ring_enabled = True
        ring_name = worker.ring.name if worker.ring_enabled else None
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_serve_worker_main,
            args=(
                child_conn,
                self.config,
                self.algorithm,
                self.algorithm_kwargs,
                worker.index,
                self.shards,
                self.batch_max,
                self.flush_us,
                ring_name,
                self.log_dir,
                self.fsync,
                self.snapshot_interval,
                self.views,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker.process = process
        worker.conn = parent_conn

    @staticmethod
    def _note_ready(worker: WorkerState, message) -> None:
        """Register one worker's ready message (with optional replay stats)."""
        worker.port = message[1]
        stats = message[2] if len(message) > 2 else None
        if stats is not None:
            worker.replayed_records = stats.get("replayed_records", 0)
            worker.replay_lag_s = stats.get("replay_lag_s", 0.0)
        worker.status = "up"

    async def stop_ingest(self) -> None:
        """Close the public socket(s); workers keep draining what they have."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._planes:
            await asyncio.gather(*(
                self._plane_call(plane, "stop_ingest", 5.0)
                for plane in self._planes
            ))
        if self._probe is not None:
            self._probe.close()
            self._probe = None

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------
    async def _supervise(self) -> None:
        """Watch every process sentinel (workers *and* routing planes);
        restart or mark down."""
        while True:
            await asyncio.sleep(self.supervise_interval)
            for worker in self._workers:
                if worker.status == "up" and not worker.process.is_alive():
                    self._on_worker_death(worker)
            for plane in self._planes:
                if plane.status == "up" and not plane.process.is_alive():
                    self._on_plane_death(plane)

    def _on_worker_death(self, worker: WorkerState) -> None:
        exitcode = worker.process.exitcode
        if worker.restarts < self.restart_limit:
            worker.status = "restarting"
            logger.warning(
                "shard %d worker died (exitcode %s); restarting (%d/%d)",
                worker.index, exitcode, worker.restarts + 1, self.restart_limit,
            )
            task = asyncio.ensure_future(self._restart_worker(worker))
            self._restart_tasks.add(task)
            task.add_done_callback(self._restart_tasks.discard)
        else:
            worker.status = "down"
            worker.ring_enabled = False
            logger.warning(
                "shard %d worker died (exitcode %s); restart budget exhausted "
                "— marking down, routed records will be shed",
                worker.index, exitcode,
            )
        # Either way the shard map changed: direct clients must learn the
        # endpoint is gone before they burn retries against it.
        self._bump_epoch()

    def _on_plane_death(self, plane: PlaneState) -> None:
        """A routing plane died: restart it like a worker, or mark it
        down — the surviving planes keep serving the shared port."""
        exitcode = plane.process.exitcode
        if plane.restarts < self.restart_limit:
            plane.status = "restarting"
            logger.warning(
                "router plane %d died (exitcode %s); restarting (%d/%d)",
                plane.index, exitcode, plane.restarts + 1, self.restart_limit,
            )
            task = asyncio.ensure_future(self._restart_plane(plane))
            self._restart_tasks.add(task)
            task.add_done_callback(self._restart_tasks.discard)
        else:
            plane.status = "down"
            logger.warning(
                "router plane %d died (exitcode %s); restart budget "
                "exhausted — marking down",
                plane.index, exitcode,
            )

    async def _restart_plane(self, plane: PlaneState) -> None:
        """Replace a dead plane process bound to the same public port."""
        try:
            for key in [k for k in self._plane_waiters if k[0] == plane.index]:
                future = self._plane_waiters.pop(key)
                if not future.done():
                    future.set_result(None)
            await _reap(plane.process)
            if plane.conn is not None:
                plane.conn.close()
                plane.conn = None
            self._spawn_plane(plane)
            message = await _pipe_recv(plane.conn, plane.process)
            if message[0] != "ready":  # pragma: no cover - defensive
                raise RuntimeError(f"unexpected plane message: {message[0]}")
            plane.status = "up"
            plane.restarts += 1
            self._plane_services.add(
                asyncio.ensure_future(self._plane_service(plane))
            )
            logger.info(
                "router plane %d restarted (restart %d)",
                plane.index, plane.restarts,
            )
        except asyncio.CancelledError:
            plane.status = "down"
            raise
        except (RuntimeError, TimeoutError, EOFError, OSError) as exc:
            plane.status = "down"
            logger.error(
                "router plane %d restart failed (%r); marking down",
                plane.index, exc,
            )

    async def _retire_worker_resources(
        self, worker: WorkerState, *, release_ring: bool
    ) -> None:
        """Retire everything a dead (or drained) incarnation left behind.

        The single place crash loops and shutdown release worker-attached
        resources, so neither path can leak: the child process is reaped
        (join → terminate → kill), the control pipe fd is closed, and —
        when ``release_ring`` — the shard's shm segment is closed *and
        unlinked* (a fresh process must not resume from stale ring
        cursors, and an unlinked segment cannot accumulate across a crash
        loop; ``ring_retired`` stops ``_spawn`` from minting another).

        Durability files need no parent-side retirement: the dead
        incarnation's log fd died with the process, and the successor
        re-adopts the log *by path*, truncating any torn tail when it
        reopens (see :meth:`~repro.live.durability.UpdateLog.open`).
        """
        await _reap(worker.process)
        if worker.conn is not None:
            worker.conn.close()
            worker.conn = None
        if release_ring and worker.ring is not None:
            worker.ring_enabled = False
            worker.ring_retired = True
            worker.ring.close()
            worker.ring.unlink()
            worker.ring = None

    async def _restart_worker(self, worker: WorkerState) -> None:
        """Replace a dead worker with a fresh runtime on a fresh port.

        While this runs the shard stays non-``up``, so its records are
        shed rather than queued against a process that may never come
        back; on failure the shard is marked down for good.  With
        durability on (``log_dir``) the fresh worker warm-starts from the
        shard's snapshot + log before it announces its port.
        """
        try:
            if worker.ring is not None:
                logger.warning(
                    "shard %d ring retired after worker death; "
                    "falling back to TCP", worker.index,
                )
            await self._retire_worker_resources(worker, release_ring=True)
            self._spawn(worker)
            message = await _pipe_recv(worker.conn, worker.process)
            if message[0] != "ready":  # pragma: no cover - defensive
                raise RuntimeError(f"unexpected worker message: {message[0]}")
            self._note_ready(worker, message)
            worker.restarts += 1
            self._bump_epoch()  # fresh port: redirect direct clients
            logger.info(
                "shard %d worker restarted on port %d (restart %d, "
                "replayed %d records)",
                worker.index, worker.port, worker.restarts,
                worker.replayed_records,
            )
        except asyncio.CancelledError:
            worker.status = "down"
            raise
        except (RuntimeError, TimeoutError, EOFError, OSError) as exc:
            worker.status = "down"
            self._bump_epoch()
            logger.error(
                "shard %d restart failed (%r); marking down", worker.index, exc
            )

    def kill_worker(self, index: int) -> None:
        """Fault injection (tests, ``--fail-shard``): SIGKILL one worker.

        The supervisor then observes the death exactly as it would a real
        crash and restarts or sheds per ``restart_limit``.
        """
        worker = self._workers[index]
        if worker.process is not None and worker.process.is_alive():
            os.kill(worker.process.pid, signal.SIGKILL)

    def kill_plane(self, index: int) -> None:
        """Fault injection: SIGKILL one routing-plane process."""
        plane = self._planes[index]
        if plane.process is not None and plane.process.is_alive():
            os.kill(plane.process.pid, signal.SIGKILL)

    def worker_status(self, index: int) -> str:
        """Current supervision status of one shard worker."""
        return self._workers[index].status

    def plane_status(self, index: int) -> str:
        """Current supervision status of one routing plane."""
        return self._planes[index].status

    def liveness(self) -> list[dict]:
        """Per-worker liveness rows (as reported in ``extras``).

        ``shed_shard_down`` is summed across every plane's counters —
        shedding happens where routing happens, which is no longer only
        the parent process.
        """
        totals = self._shed_totals()
        rows = []
        for worker in self._workers:
            row = worker.liveness()
            row["shed_shard_down"] = totals[worker.index]
            rows.append(row)
        return rows

    # ------------------------------------------------------------------
    # Topology epochs (smart clients)
    # ------------------------------------------------------------------
    def _topology_entries(self) -> list[dict]:
        return [
            {
                "shard": worker.index,
                "host": "127.0.0.1",
                "port": worker.port,
                "status": worker.status,
            }
            for worker in self._workers
        ]

    def topology_record(self) -> dict:
        """The cluster's current ``{"kind": "topology"}`` control record."""
        return topology_record(
            shards=self.shards,
            n_low=self.config.updates.n_low,
            n_high=self.config.updates.n_high,
            epoch=self.epoch,
            workers=self._topology_entries(),
        )

    def _bump_epoch(self) -> None:
        """Advance the topology epoch and broadcast the worker table.

        Every worker needs it to answer direct clients' topology requests
        and stamp ``moved`` redirects; every remote plane needs it to
        route.  A broken pipe here means the target is already dead — the
        supervisor handles that separately.
        """
        self.epoch += 1
        message = ("topology", self.epoch, self._topology_entries())
        for worker in self._workers:
            if worker.conn is None:
                continue
            try:
                worker.conn.send(message)
            except (BrokenPipeError, OSError):
                pass
        for plane in self._planes:
            if plane.conn is None:
                continue
            try:
                plane.conn.send(message)
            except (BrokenPipeError, OSError):
                pass

    # ------------------------------------------------------------------
    # Drain and merge
    # ------------------------------------------------------------------
    async def shutdown(self, drain_timeout: float = 5.0) -> SimulationResult:
        """Stop ingest, drain the surviving workers, merge their results.

        Dead or unresponsive workers cannot hang the drain: each result
        wait is bounded by ``drain_timeout + shutdown_grace``, every
        worker process is retired through the join -> terminate -> kill
        escalation, and the merged result notes the dead shards in
        ``extras["down_shards"]``.

        Raises:
            ShardDownError: when *no* worker reported a final result.
        """
        if self._result is not None:
            return self._result
        if self._supervisor is not None:
            self._supervisor.cancel()
            try:
                await self._supervisor
            except asyncio.CancelledError:
                pass
            self._supervisor = None
        for task in list(self._restart_tasks):
            task.cancel()
        if self._restart_tasks:
            await asyncio.gather(*self._restart_tasks, return_exceptions=True)
        await self.stop_ingest()
        # Collect every plane's final stats (cached on PlaneState so a
        # crashed plane's last report still merges), then retire them.
        for plane in self._planes:
            stats = await self._plane_call(plane, "stop", 10.0)
            if stats is not None:
                plane.stats = stats
            await _reap(plane.process)
            if plane.conn is not None:
                plane.conn.close()
                plane.conn = None
        for task in list(self._plane_services):
            task.cancel()
        if self._plane_services:
            await asyncio.gather(
                *self._plane_services, return_exceptions=True
            )
            self._plane_services.clear()
        for channel in self._control.values():
            await channel.aclose()
        self._control.clear()
        for worker in self._workers:
            if worker.status == "down" or worker.conn is None:
                continue
            try:
                worker.conn.send(("stop", drain_timeout))
            except (BrokenPipeError, OSError):
                worker.status = "down"
        per_shard: list[SimulationResult] = []
        indices: list[int] = []
        timeout = drain_timeout + self.shutdown_grace
        for worker in self._workers:
            if worker.status != "down":
                try:
                    payload = await self._recv_result(worker, timeout)
                    per_shard.append(result_from_dict(payload))
                    indices.append(worker.index)
                except (RuntimeError, TimeoutError, EOFError, OSError) as exc:
                    worker.status = "down"
                    logger.warning(
                        "shard %d reported no final result (%r); merging "
                        "without it", worker.index, exc,
                    )
            await self._retire_worker_resources(worker, release_ring=True)
        if not per_shard:
            raise ShardDownError(
                "every shard worker died without reporting a result"
            )
        self._result = self._merge(per_shard, indices)
        return self._result

    async def _recv_result(self, worker: WorkerState, timeout: float) -> dict:
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while True:
            remaining = max(_POLL_INTERVAL, deadline - loop.time())
            message = await _pipe_recv(worker.conn, worker.process, remaining)
            if message[0] == "result":
                return message[1]
            # e.g. a worker restarted moments before shutdown replays its
            # "ready" registration first; skip to the result.

    def _zero_stats(self) -> dict:
        """The guaranteed-present merge source: every counter key at zero.

        Explicit zero literals, *not* ``self.router.accounting()`` — the
        in-parent plane shares that router, so reading it here would
        count its routing twice.  With this source first, the merged
        extras carry every expected key even when no plane reported.
        """
        zeros = [0] * self.shards
        return {
            "shards": self.shards,
            "router_version": ROUTER_VERSION,
            "updates_routed": list(zeros),
            "transactions_routed": list(zeros),
            "remapped_reads": 0,
            "routing_errors": 0,
            "records_received": 0,
            "protocol_errors": 0,
            "cross_shard_submits": 0,
            "fanout_sub_reads": list(zeros),
            "sub_read_misses": list(zeros),
            "sub_read_aborts": list(zeros),
            "sub_read_deadline_misses": list(zeros),
            "sub_read_latency_p99": None,
            "shed_shard_down": list(zeros),
            "topology_requests": 0,
        }

    def _plane_rows(self) -> list[dict]:
        """One ``extras["planes"]`` row per plane (CPU seconds included)."""
        rows = []
        if self._plane is not None:
            row = dict(self._plane.stats().get("plane") or {})
            row["status"] = "up"
            row["restarts"] = 0
            rows.append(row)
        for plane in self._planes:
            row = dict((plane.stats or {}).get("plane") or {})
            row.setdefault("plane", plane.index)
            row["status"] = plane.status
            row["restarts"] = plane.restarts
            rows.append(row)
        return rows

    def _merge(
        self,
        per_shard: list[SimulationResult],
        indices: "list[int] | None" = None,
    ) -> SimulationResult:
        """Merge per-shard results (``indices`` names the shards present).

        The counter half of ``extras`` is merged key-by-key from every
        source that reports one — all routing planes plus each worker's
        direct-ingest accounting — through :func:`merge_extras_sources`,
        so a counter arriving from several places sums (or maxes, or must
        agree) instead of last-write-wins.
        """
        if indices is None:
            indices = list(range(self.shards))
        weights = [self.router.counts(index) for index in indices]
        # Durability snapshot-failure gauges ride along in each shard's
        # snapshot extras; copy them onto the worker table so liveness()
        # and the merged extras both expose them.
        for result, index in zip(per_shard, indices):
            shard_extras = result.extras or {}
            if "snapshot_errors" in shard_extras:
                state = next(
                    w for w in self._workers if w.index == index
                )
                state.snapshot_errors = shard_extras["snapshot_errors"]
                state.last_snapshot_error = shard_extras.get(
                    "last_snapshot_error"
                )
        workers = self.liveness()
        sources = [self._zero_stats()]
        for stats in self._plane_sources():
            stats = dict(stats)
            stats.pop("plane", None)
            sources.append(stats)
        for result in per_shard:
            direct = (result.extras or {}).get("direct")
            if direct:
                sources.append(direct)
        extras = merge_extras_sources(*sources)
        extras.update({
            "workers": workers,
            "worker_restarts": [w["restarts"] for w in workers],
            "down_shards": [
                w["shard"] for w in workers if w["status"] == "down"
            ],
            "merged_shards": list(indices),
            "wire": self.wire,
            "shm": self.shm,
            "routers": self.routers,
            "epoch": self.epoch,
            "planes": self._plane_rows(),
            "ring_records": [w["ring_records"] for w in workers],
            "ring_fallbacks": [w["ring_fallbacks"] for w in workers],
            "durability": self.log_dir is not None,
            "replayed_records": [w["replayed_records"] for w in workers],
            "replay_lag_s": [w["replay_lag_s"] for w in workers],
            "snapshot_errors": [w["snapshot_errors"] for w in workers],
            "last_snapshot_error": [
                w["last_snapshot_error"] for w in workers
            ],
        })
        view_sources = [
            (result.extras or {}).get("views") for result in per_shard
        ]
        view_sources = [source for source in view_sources if source]
        if view_sources:
            extras["views"] = merge_view_reports(view_sources)
        return SimulationResult.merge(
            per_shard,
            weights_low=[low for low, _ in weights],
            weights_high=[high for _, high in weights],
            extras=extras,
        )

    # ------------------------------------------------------------------
    # Fleet snapshot
    # ------------------------------------------------------------------
    async def snapshot(self) -> SimulationResult:
        """One merged mid-run snapshot over the surviving shards.

        Shards that are down (or fail their bounded snapshot round trip)
        are skipped and noted in ``extras["workers"]`` /
        ``extras["merged_shards"]`` instead of poisoning the merge for
        every client.

        Raises:
            ShardDownError: when no live shard answered.
        """
        await self._refresh_plane_stats()
        live = [worker for worker in self._workers if worker.status == "up"]
        results = await asyncio.gather(
            *(self._try_shard_snapshot(worker) for worker in live)
        )
        per_shard: list[SimulationResult] = []
        indices: list[int] = []
        for worker, result in zip(live, results):
            if result is not None:
                per_shard.append(result)
                indices.append(worker.index)
        if not per_shard:
            raise ShardDownError("no live shard worker answered a snapshot")
        return self._merge(per_shard, indices)

    async def _refresh_plane_stats(self) -> None:
        """Freshen every remote plane's cached stats (bounded, best
        effort — a slow plane serves stale counters, not a stuck merge)."""
        if not self._planes:
            return
        await asyncio.gather(*(
            self._plane_call(plane, "stats", 5.0)
            for plane in self._planes
            if plane.status == "up"
        ))

    async def _try_shard_snapshot(
        self, worker: WorkerState
    ) -> "SimulationResult | None":
        """One shard's snapshot, bounded and failure-typed (None = skip)."""
        try:
            return await asyncio.wait_for(
                self._shard_snapshot(worker.index), self.snapshot_timeout
            )
        except (
            ConnectionError,
            OSError,
            ValueError,
            EOFError,
            asyncio.TimeoutError,
            TimeoutError,
            asyncio.IncompleteReadError,
            RpcError,
        ) as exc:
            # The supervisor owns the status transition (it can tell a
            # crash from a transient hiccup via the process sentinel);
            # here the shard is only skipped for this snapshot.
            logger.warning("snapshot of shard %d failed: %r", worker.index, exc)
            return None

    async def _control_channel(self, shard: int) -> RpcChannel:
        """The cluster's persistent control channel to one worker.

        Carries low-rate request/reply traffic (snapshots) over the same
        :class:`RpcChannel` correlation machinery as the data plane; a
        channel whose transport died (worker crash/restart) is discarded
        and reopened against the worker's *current* port.
        """
        channel = self._control.get(shard)
        if channel is not None:
            if not channel.closing:
                return channel
            del self._control[shard]
            await channel.aclose()
        reader, writer = await connect_with_retry(
            "127.0.0.1",
            lambda: self._workers[shard].port,
            attempts=self.connect_attempts,
        )
        # Control traffic is rare: flush every request immediately.
        channel = RpcChannel(
            reader, writer, protocol=self.wire, batch_max=1, flush_us=0.0
        )
        self._control[shard] = channel
        return channel

    async def _shard_snapshot(self, shard: int) -> SimulationResult:
        """One worker's own snapshot, as an RPC over the control channel.

        Raises:
            ShardDownError: when the channel closed with the call in
                flight — the worker died between the request and the
                reply (must not surface as a decode crash).
        """
        channel = await self._control_channel(shard)
        rid = next(self._rid)
        try:
            record = await channel.call({"kind": "snapshot", "rid": rid}, rid)
        except RpcClosedError as exc:
            raise ShardDownError(
                f"shard {shard} closed the snapshot channel ({exc.message})"
            ) from exc
        record = dict(record)
        record.pop("kind", None)
        record.pop("rid", None)
        return result_from_dict(record)

    # ------------------------------------------------------------------
    # Data plane (delegated to the in-parent RouterPlane)
    # ------------------------------------------------------------------
    async def _handle(self, reader, writer) -> None:
        """One client session on the parent's public socket (routers=1)."""
        await self._plane.handle(reader, writer)

    async def _close_session(self, upstreams, downstream, merges=()) -> None:
        await self._plane._close_session(upstreams, downstream, merges)

    async def _dispatch_batch(
        self,
        records,
        downstream,
        upstreams,
        protocol=PROTOCOL_JSONL,
        merges=None,
    ) -> None:
        await self._plane._dispatch_batch(
            records, downstream, upstreams, protocol, merges
        )

    async def _snapshot_payload(self) -> dict:
        """The in-parent plane's snapshot callback (late-bound through
        :meth:`snapshot` so tests can monkeypatch the fan-in)."""
        return asdict(await self.snapshot())

    def _ring_push(self, shard: int, routed: list) -> list:
        """Offer a routed batch's updates to the shard's shm ring.

        The in-parent plane's ``ring_push`` hook (a ring is
        single-producer, so only the routers=1 topology can have one).
        Returns the records that still need the TCP path: transactions
        always, and the updates too when the ring had no room (the
        fallback; counted per shard).  Updates arrive either as raw
        frames (binary client, fast path) or :class:`Update` instances
        (JSONL client); both ride the ring as one frame blob.
        """
        worker = self._workers[shard]
        if not worker.ring_enabled:
            return routed
        updates = [
            item for item in routed if isinstance(item, (Update, bytes))
        ]
        if not updates:
            return routed
        rest = [
            item for item in routed if not isinstance(item, (Update, bytes))
        ]
        if worker.ring.push(_encode_hop_frames(updates)):
            worker.ring_records += len(updates)
            return rest
        worker.ring_fallbacks += 1
        return routed


# ----------------------------------------------------------------------
# Sharded throughput benchmark
# ----------------------------------------------------------------------
@dataclass
class ShardedBenchResult:
    """Outcome of :func:`run_sharded_bench`.

    Attributes:
        shards: Shard count measured.
        mode: ``"parallel"`` (all workers concurrently; needs >= shards
            cores) or ``"sequential"`` (one worker at a time, each with
            the whole machine — the one-core-per-shard deployment model,
            used automatically when this host has fewer cores than
            shards).
        installs_per_second: Aggregate installed updates per wall second,
            summed over shards (each normalized by its own window).
        merged: The merged :class:`SimulationResult` of the fleet.
        per_shard: Each shard's own result.
    """

    shards: int
    mode: str
    installs_per_second: float
    merged: SimulationResult
    per_shard: list[SimulationResult] = field(default_factory=list)


def _recv_blocking(conn, process, timeout=_WORKER_TIMEOUT):
    if not conn.poll(timeout):
        raise TimeoutError("timed out waiting for a bench worker")
    return conn.recv()


def run_sharded_bench(
    config: SimulationConfig,
    algorithm: str = "TF",
    shards: int = 1,
    *,
    seconds: float = 2.0,
    ramp: float = 0.3,
    parallel: bool | None = None,
    algorithm_kwargs: dict | None = None,
    batch_max: int = DEFAULT_BATCH_MAX,
) -> ShardedBenchResult:
    """Measure aggregate live install throughput at one shard count.

    Every shard — including the ``shards=1`` baseline — runs in its own
    spawned process under identical conditions: a
    :class:`~repro.live.runtime.LiveRuntime` driven by an in-process
    Poisson :class:`~repro.live.loadgen.LoadGenerator` at the shard's
    keyspace share of the offered rate, with a ramp excluded from the
    measured window.

    When the host has at least ``shards`` cores the workers run
    concurrently; otherwise they run back-to-back, each getting the whole
    machine (the one-core-per-shard model — see ``docs/SCALING.md``).
    Pass ``parallel`` to force either mode.
    """
    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")
    config.validate()
    if parallel is None:
        parallel = (os.cpu_count() or 1) >= shards
    context = multiprocessing.get_context("spawn")
    kwargs = dict(algorithm_kwargs or {})

    def spawn(index: int):
        parent_conn, child_conn = context.Pipe()
        process = context.Process(
            target=_bench_worker_main,
            args=(child_conn, config, algorithm, kwargs, index, shards,
                  seconds, ramp, batch_max),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return process, parent_conn

    payloads: list[dict] = []
    if parallel:
        workers = [spawn(index) for index in range(shards)]
        for process, conn in workers:
            kind, payload = _recv_blocking(conn, process)
            assert kind == "result", kind
            payloads.append(payload)
            process.join(timeout=_WORKER_TIMEOUT)
    else:
        for index in range(shards):
            process, conn = spawn(index)
            kind, payload = _recv_blocking(conn, process)
            assert kind == "result", kind
            payloads.append(payload)
            process.join(timeout=_WORKER_TIMEOUT)

    per_shard = [result_from_dict(payload) for payload in payloads]
    # Bench shards draw decorrelated arrival streams on purpose; restore
    # the root seed so the merge's same-run guard sees one fleet.
    per_shard = [replace(result, seed=config.seed) for result in per_shard]
    if shards == 1:
        weights = [(config.updates.n_low, config.updates.n_high)]
    else:
        router = ShardRouter(config.updates.n_low, config.updates.n_high, shards)
        weights = [router.counts(index) for index in range(shards)]
    merged = SimulationResult.merge(
        per_shard,
        weights_low=[low for low, _ in weights],
        weights_high=[high for _, high in weights],
        extras={"shards": shards, "bench_mode": "parallel" if parallel else "sequential"},
    )
    installs_per_second = sum(
        result.updates_applied / result.duration
        for result in per_shard
        if result.duration > 0
    )
    return ShardedBenchResult(
        shards=shards,
        mode="parallel" if parallel else "sequential",
        installs_per_second=installs_per_second,
        merged=merged,
        per_shard=per_shard,
    )
