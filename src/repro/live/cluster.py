"""Multi-core live mode: one shard per worker process.

``repro-live serve --shards N`` runs N worker processes, each hosting a
full single-shard pipeline (:class:`~repro.live.runtime.LiveRuntime` +
:class:`~repro.live.server.IngestServer` on a loopback port), behind one
public TCP router in the parent process.  The router speaks the same
JSONL wire protocol as a single server — clients cannot tell the
difference — and:

* rewrites each ``update`` / ``transaction`` record onto its owning
  shard (stable hash of the global object id, shard-local ids on the
  wire to the worker) and forwards it there, pumping outcome replies
  back to the client verbatim;
* answers ``{"kind": "snapshot"}`` with the *merged* fleet snapshot —
  per-shard snapshots fanned in over the workers' own wire protocol and
  aggregated by :meth:`SimulationResult.merge`, with the router's
  per-shard accounting in ``extras``.

Workers are plain ``multiprocessing`` ("spawn") children; control flows
over a pipe (ready/stop/result), data flows over TCP.  Each worker
rebuilds the (deterministic) :class:`~repro.db.sharding.ShardRouter` from
the global config, so nothing stateful crosses the process boundary.

:func:`run_sharded_bench` reuses the same worker machinery to measure
aggregate install throughput at a given shard count, driving each shard
with an in-process :class:`~repro.live.loadgen.LoadGenerator` (no
sockets — it measures scheduler capacity, not socket throughput).
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import signal
from dataclasses import asdict, dataclass, field, replace

from repro.config import SimulationConfig
from repro.core.sharding import route_batch, shard_config
from repro.db.sharding import ShardRouter
from repro.live.loadgen import LoadGenerator
from repro.live.runtime import LiveRuntime
from repro.live.server import IngestServer
from repro.live.wire import (
    DEFAULT_BATCH_MAX,
    DEFAULT_FLUSH_US,
    CoalescingWriter,
    iter_line_batches,
)
from repro.metrics.results import SimulationResult
from repro.metrics.storage import result_from_dict
from repro.workload.codec import decode_lines, encode_lines, item_from_record

#: How long the parent waits for a worker to report its port or result.
_WORKER_TIMEOUT = 60.0

#: Pipe poll period inside async waits.
_POLL_INTERVAL = 0.02


# ----------------------------------------------------------------------
# Worker processes
# ----------------------------------------------------------------------
def _ignore_signals() -> None:
    """Shield a worker from group-delivered SIGINT/SIGTERM (Ctrl-C hits
    the whole foreground group); shutdown arrives over the pipe, and the
    daemon flag reaps workers if the parent dies."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_IGN)


def _serve_worker_main(
    conn, config, algorithm, algorithm_kwargs, index, shards,
    batch_max=DEFAULT_BATCH_MAX, flush_us=DEFAULT_FLUSH_US,
):
    """Entry point of one serving shard (runs in a spawned process)."""
    _ignore_signals()
    asyncio.run(
        _serve_worker_async(
            conn, config, algorithm, algorithm_kwargs, index, shards,
            batch_max, flush_us,
        )
    )


async def _serve_worker_async(
    conn, config, algorithm, kwargs, index, shards,
    batch_max=DEFAULT_BATCH_MAX, flush_us=DEFAULT_FLUSH_US,
):
    router = ShardRouter(config.updates.n_low, config.updates.n_high, shards)
    local_config = shard_config(config, router, index)
    runtime = LiveRuntime(local_config, algorithm, **kwargs)
    runtime.start()
    server = IngestServer(
        runtime, "127.0.0.1", 0, batch_max=batch_max, flush_us=flush_us
    )
    _, port = await server.start()
    conn.send(("ready", port))
    while not conn.poll():
        await asyncio.sleep(0.05)
    message = conn.recv()  # ("stop", drain_timeout)
    drain_timeout = message[1] if len(message) > 1 else 5.0
    await server.stop()
    result = await runtime.shutdown(drain_timeout=drain_timeout)
    conn.send(("result", asdict(result)))


def _bench_worker_main(
    conn, config, algorithm, algorithm_kwargs, index, shards, seconds, ramp,
    batch_max=DEFAULT_BATCH_MAX,
):
    """Entry point of one benchmark shard (runs in a spawned process)."""
    _ignore_signals()
    asyncio.run(
        _bench_worker_async(
            conn, config, algorithm, algorithm_kwargs, index, shards,
            seconds, ramp, batch_max
        )
    )


async def _bench_worker_async(
    conn, config, algorithm, kwargs, index, shards, seconds, ramp,
    batch_max=DEFAULT_BATCH_MAX,
):
    if shards == 1:
        local_config = config
    else:
        router = ShardRouter(config.updates.n_low, config.updates.n_high, shards)
        k_low, k_high = router.counts(index)
        share = (k_low + k_high) / (config.updates.n_low + config.updates.n_high)
        local_config = shard_config(config, router, index)
        # Each shard receives its keyspace share of the offered load, and
        # a decorrelated seed so shards don't draw phase-locked arrivals.
        local_config = local_config.with_updates(
            arrival_rate=config.updates.arrival_rate * share
        )
        local_config = local_config.with_transactions(
            arrival_rate=config.transactions.arrival_rate * share
        )
        local_config = local_config.replace(seed=config.seed + 7919 * index)
    runtime = LiveRuntime(local_config, algorithm, **kwargs)
    runtime.start()
    generator = LoadGenerator(runtime, batch_max=batch_max)
    generator.start()
    if ramp > 0:
        await asyncio.sleep(ramp)
        runtime.begin_measurement()
    await asyncio.sleep(seconds)
    generator.stop()
    result = await runtime.shutdown()
    conn.send(("result", asdict(result)))


async def _pipe_recv(conn, process, timeout=_WORKER_TIMEOUT):
    """Await one pipe message from a worker without blocking the loop."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not conn.poll():
        if not process.is_alive():
            raise RuntimeError(
                f"shard worker pid={process.pid} died "
                f"(exitcode {process.exitcode})"
            )
        if loop.time() > deadline:
            raise TimeoutError("timed out waiting for a shard worker")
        await asyncio.sleep(_POLL_INTERVAL)
    return conn.recv()


# ----------------------------------------------------------------------
# The cluster (parent side)
# ----------------------------------------------------------------------
class ShardCluster:
    """N shard worker processes behind one public JSONL/TCP router.

    Args:
        config: Global configuration; object counts and queue budgets are
            split across shards by the router.
        algorithm: Scheduler registry name (each worker builds its own
            instance).
        shards: Worker count (>= 2; use a plain server for one shard).
        host / port: Public bind address of the router socket.
        algorithm_kwargs: Constructor args for the algorithm.
    """

    def __init__(
        self,
        config: SimulationConfig,
        algorithm: str = "TF",
        *,
        shards: int,
        host: str = "127.0.0.1",
        port: int = 0,
        algorithm_kwargs: dict | None = None,
        batch_max: int = DEFAULT_BATCH_MAX,
        flush_us: float = DEFAULT_FLUSH_US,
    ) -> None:
        if shards < 2:
            raise ValueError("ShardCluster needs >= 2 shards")
        if not isinstance(algorithm, str):
            raise ValueError("sharded serving needs an algorithm name")
        config.validate()
        self.config = config
        self.algorithm = algorithm
        self.algorithm_kwargs = dict(algorithm_kwargs or {})
        self.shards = shards
        self.host = host
        self.port = port
        self.batch_max = batch_max
        self.flush_us = flush_us
        self.router = ShardRouter(
            config.updates.n_low, config.updates.n_high, shards
        )
        self.ports: list[int] = []
        self.records_received = 0
        self.errors = 0
        self._processes: list[multiprocessing.Process] = []
        self._pipes = []
        self._server: asyncio.AbstractServer | None = None
        self._result: SimulationResult | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Spawn the workers, wait for their ports, bind the router."""
        if self._processes:
            raise RuntimeError("cluster is already running")
        context = multiprocessing.get_context("spawn")
        for index in range(self.shards):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_serve_worker_main,
                args=(
                    child_conn,
                    self.config,
                    self.algorithm,
                    self.algorithm_kwargs,
                    index,
                    self.shards,
                    self.batch_max,
                    self.flush_us,
                ),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._processes.append(process)
            self._pipes.append(parent_conn)
        self.ports = []
        for process, conn in zip(self._processes, self._pipes):
            kind, port = await _pipe_recv(conn, process)
            if kind != "ready":  # pragma: no cover - defensive
                raise RuntimeError(f"unexpected worker message: {kind}")
            self.ports.append(port)
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def stop_ingest(self) -> None:
        """Close the public socket; workers keep draining what they have."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def shutdown(self, drain_timeout: float = 5.0) -> SimulationResult:
        """Stop ingest, drain every worker, and merge the final results."""
        if self._result is not None:
            return self._result
        await self.stop_ingest()
        for conn in self._pipes:
            conn.send(("stop", drain_timeout))
        per_shard: list[SimulationResult] = []
        for process, conn in zip(self._processes, self._pipes):
            kind, payload = await _pipe_recv(conn, process)
            if kind != "result":  # pragma: no cover - defensive
                raise RuntimeError(f"unexpected worker message: {kind}")
            per_shard.append(result_from_dict(payload))
            process.join(timeout=_WORKER_TIMEOUT)
        self._result = self._merge(per_shard)
        return self._result

    def _merge(self, per_shard: list[SimulationResult]) -> SimulationResult:
        weights = [self.router.counts(index) for index in range(self.shards)]
        return SimulationResult.merge(
            per_shard,
            weights_low=[low for low, _ in weights],
            weights_high=[high for _, high in weights],
            extras={
                **self.router.accounting(),
                "records_received": self.records_received,
                "protocol_errors": self.errors,
            },
        )

    # ------------------------------------------------------------------
    # Fleet snapshot
    # ------------------------------------------------------------------
    async def snapshot(self) -> SimulationResult:
        """One merged mid-run snapshot, fanned in over the wire."""
        per_shard = await asyncio.gather(
            *(self._shard_snapshot(port) for port in self.ports)
        )
        return self._merge(list(per_shard))

    async def _shard_snapshot(self, port: int) -> SimulationResult:
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        try:
            writer.write(b'{"kind": "snapshot"}\n')
            await writer.drain()
            line = await reader.readline()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        record = json.loads(line)
        record.pop("kind", None)
        return result_from_dict(record)

    # ------------------------------------------------------------------
    # Public router socket
    # ------------------------------------------------------------------
    async def _handle(self, reader, writer) -> None:
        """One client session: route record batches, pump outcomes back."""
        upstreams: "dict[int, tuple[CoalescingWriter, asyncio.Task]]" = {}
        downstream = CoalescingWriter(
            writer, batch_max=self.batch_max, flush_us=self.flush_us
        )
        try:
            async for lines in iter_line_batches(reader):
                await self._dispatch_batch(lines, downstream, upstreams)
                await downstream.backpressure()
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            for _, pump in upstreams.values():
                pump.cancel()
            for up, pump in upstreams.values():
                try:
                    await pump
                except (asyncio.CancelledError, Exception):
                    pass
                await up.aclose()
            await downstream.aclose()

    async def _dispatch_batch(self, lines, downstream, upstreams) -> None:
        """Decode one wire batch, route it, forward per (shard, batch).

        A snapshot request flushes the routable records collected so far
        (so it observes every earlier record on each shard's connection),
        then answers with the merged fleet snapshot.  A malformed line
        gets its error reply and its neighbors proceed — same per-record
        error semantics as the unbatched path.
        """
        records = decode_lines(lines)
        items: list = []
        for record in records:
            try:
                if isinstance(record, Exception):
                    raise record
                if isinstance(record, dict) and record.get("kind") == "snapshot":
                    await self._forward(items, downstream, upstreams)
                    items = []
                    merged = {"kind": "snapshot"}
                    merged.update(asdict(await self.snapshot()))
                    downstream.write(json.dumps(merged).encode("utf-8") + b"\n")
                    continue
                items.append(item_from_record(record))
            except (ValueError, KeyError, TypeError) as exc:
                self.errors += 1
                self.router.note_routing_error()
                self._error_reply(downstream, exc)
        await self._forward(items, downstream, upstreams)

    async def _forward(self, items, downstream, upstreams) -> None:
        """Group a decoded batch by shard; one coalesced write per shard."""
        if not items:
            return
        def on_error(_item, exc):
            self.errors += 1
            self._error_reply(downstream, exc)
        by_shard = route_batch(self.router, items, on_error=on_error)
        for shard, routed in by_shard.items():
            self.records_received += len(routed)
            up = await self._upstream(shard, downstream, upstreams)
            up.write_batch(encode_lines(routed), len(routed))
            await up.backpressure()

    @staticmethod
    def _error_reply(downstream: CoalescingWriter, exc: Exception) -> None:
        downstream.write(
            json.dumps({"kind": "error", "message": str(exc)}).encode("utf-8")
            + b"\n"
        )

    async def _upstream(self, shard: int, downstream, upstreams) -> CoalescingWriter:
        """This client's connection to one shard, opened on first use."""
        entry = upstreams.get(shard)
        if entry is not None:
            return entry[0]
        up_reader, up_writer = await asyncio.open_connection(
            "127.0.0.1", self.ports[shard]
        )
        up = CoalescingWriter(
            up_writer, batch_max=self.batch_max, flush_us=self.flush_us
        )
        pump = asyncio.ensure_future(self._pump(up_reader, downstream))
        upstreams[shard] = (up, pump)
        return up

    @staticmethod
    async def _pump(up_reader, downstream: CoalescingWriter) -> None:
        """Forward worker replies (outcomes) to the client verbatim."""
        try:
            async for lines in iter_line_batches(up_reader):
                downstream.write_batch(b"\n".join(lines) + b"\n", len(lines))
                await downstream.backpressure()
        except (ConnectionResetError, BrokenPipeError):
            return


# ----------------------------------------------------------------------
# Sharded throughput benchmark
# ----------------------------------------------------------------------
@dataclass
class ShardedBenchResult:
    """Outcome of :func:`run_sharded_bench`.

    Attributes:
        shards: Shard count measured.
        mode: ``"parallel"`` (all workers concurrently; needs >= shards
            cores) or ``"sequential"`` (one worker at a time, each with
            the whole machine — the one-core-per-shard deployment model,
            used automatically when this host has fewer cores than
            shards).
        installs_per_second: Aggregate installed updates per wall second,
            summed over shards (each normalized by its own window).
        merged: The merged :class:`SimulationResult` of the fleet.
        per_shard: Each shard's own result.
    """

    shards: int
    mode: str
    installs_per_second: float
    merged: SimulationResult
    per_shard: list[SimulationResult] = field(default_factory=list)


def _recv_blocking(conn, process, timeout=_WORKER_TIMEOUT):
    if not conn.poll(timeout):
        raise TimeoutError("timed out waiting for a bench worker")
    return conn.recv()


def run_sharded_bench(
    config: SimulationConfig,
    algorithm: str = "TF",
    shards: int = 1,
    *,
    seconds: float = 2.0,
    ramp: float = 0.3,
    parallel: bool | None = None,
    algorithm_kwargs: dict | None = None,
    batch_max: int = DEFAULT_BATCH_MAX,
) -> ShardedBenchResult:
    """Measure aggregate live install throughput at one shard count.

    Every shard — including the ``shards=1`` baseline — runs in its own
    spawned process under identical conditions: a
    :class:`~repro.live.runtime.LiveRuntime` driven by an in-process
    Poisson :class:`~repro.live.loadgen.LoadGenerator` at the shard's
    keyspace share of the offered rate, with a ramp excluded from the
    measured window.

    When the host has at least ``shards`` cores the workers run
    concurrently; otherwise they run back-to-back, each getting the whole
    machine (the one-core-per-shard model — see ``docs/SCALING.md``).
    Pass ``parallel`` to force either mode.
    """
    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")
    config.validate()
    if parallel is None:
        parallel = (os.cpu_count() or 1) >= shards
    context = multiprocessing.get_context("spawn")
    kwargs = dict(algorithm_kwargs or {})

    def spawn(index: int):
        parent_conn, child_conn = context.Pipe()
        process = context.Process(
            target=_bench_worker_main,
            args=(child_conn, config, algorithm, kwargs, index, shards,
                  seconds, ramp, batch_max),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return process, parent_conn

    payloads: list[dict] = []
    if parallel:
        workers = [spawn(index) for index in range(shards)]
        for process, conn in workers:
            kind, payload = _recv_blocking(conn, process)
            assert kind == "result", kind
            payloads.append(payload)
            process.join(timeout=_WORKER_TIMEOUT)
    else:
        for index in range(shards):
            process, conn = spawn(index)
            kind, payload = _recv_blocking(conn, process)
            assert kind == "result", kind
            payloads.append(payload)
            process.join(timeout=_WORKER_TIMEOUT)

    per_shard = [result_from_dict(payload) for payload in payloads]
    # Bench shards draw decorrelated arrival streams on purpose; restore
    # the root seed so the merge's same-run guard sees one fleet.
    per_shard = [replace(result, seed=config.seed) for result in per_shard]
    if shards == 1:
        weights = [(config.updates.n_low, config.updates.n_high)]
    else:
        router = ShardRouter(config.updates.n_low, config.updates.n_high, shards)
        weights = [router.counts(index) for index in range(shards)]
    merged = SimulationResult.merge(
        per_shard,
        weights_low=[low for low, _ in weights],
        weights_high=[high for _, high in weights],
        extras={"shards": shards, "bench_mode": "parallel" if parallel else "sequential"},
    )
    installs_per_second = sum(
        result.updates_applied / result.duration
        for result in per_shard
        if result.duration > 0
    )
    return ShardedBenchResult(
        shards=shards,
        mode="parallel" if parallel else "sequential",
        installs_per_second=installs_per_second,
        merged=merged,
        per_shard=per_shard,
    )
