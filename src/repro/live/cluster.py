"""Multi-core live mode: one shard per worker process.

``repro-live serve --shards N`` runs N worker processes, each hosting a
full single-shard pipeline (:class:`~repro.live.runtime.LiveRuntime` +
:class:`~repro.live.server.IngestServer` on a loopback port), behind one
public TCP router in the parent process.  The router speaks the same
JSONL wire protocol as a single server — clients cannot tell the
difference — and:

* rewrites each ``update`` / ``transaction`` record onto its owning
  shard (stable hash of the global object id, shard-local ids on the
  wire to the worker) and forwards it there over a per-shard
  :class:`~repro.live.wire.RpcChannel` — unmatched worker replies
  (single-shard outcomes) push straight back to the client;
* **scatter-gathers cross-shard transactions**: a spec whose read-set
  spans shards is split per owner (:meth:`ShardRouter.split_reads`),
  each sub-read submitted under a fresh correlation id, and the
  per-shard verdicts merged with the paper's MA/UU semantics — stale
  *anywhere* is stale, and the firm deadline is one shared window over
  the *slowest* shard (:func:`~repro.core.sharding.merge_verdicts`).
  This is deliberately not 2PC: sub-reads are read-only against each
  shard's local view, so there is nothing to prepare or roll back;
* answers ``{"kind": "snapshot"}`` with the *merged* fleet snapshot —
  per-shard snapshots fanned in over the workers' own wire protocol and
  aggregated by :meth:`SimulationResult.merge`, with the router's
  per-shard accounting in ``extras``.

Workers are plain ``multiprocessing`` ("spawn") children; control flows
over a pipe (ready/stop/result), data flows over TCP and (optionally)
shared memory.  Each worker rebuilds the (deterministic)
:class:`~repro.db.sharding.ShardRouter` from the global config, so
nothing stateful crosses the process boundary.

Two data-plane optimizations stack on the founding JSONL/TCP design:

* **Binary internal hop** (``wire="binary"``, the default): the
  router→worker connections speak the length-prefixed
  :class:`~repro.workload.codec.BinaryCodec` frames instead of JSONL —
  the workers' own :class:`~repro.live.server.IngestServer` negotiates
  per connection, so either protocol works on the inside regardless of
  what the *client* speaks on the outside (the public socket negotiates
  separately; a JSONL client can front a binary fleet and vice versa).
* **Shared-memory rings** (``shm=True``): one
  :class:`~repro.live.shm.SpscRing` per shard carries the
  fire-and-forget *update* stream as binary batch blobs, bypassing the
  loopback-TCP copy entirely.  Transactions (which need a reply path
  with per-session correlation) and snapshots stay on TCP.  A full ring
  falls back to TCP for that batch; a restarted worker permanently
  disables its shard's ring (fresh process, stale cursors) and the
  shard keeps serving over TCP — counted in ``extras``
  (``ring_records`` / ``ring_fallbacks``).  One relaxation is inherent:
  updates (ring) and transactions (TCP) travel different channels, so
  the strict wire order *between* an update and a following transaction
  is no longer guaranteed — within each channel order is preserved, and
  the paper's workload semantics (fire-and-forget stream vs. queried
  reads) tolerate exactly this.

The cluster is **fault tolerant** the same way the scheduler is overload
tolerant: by shedding, accounting, and recovering.  A supervisor task
polls every worker's process sentinel; when a worker dies it is either
restarted (fresh :class:`LiveRuntime`, re-registered port, counted in
``extras["worker_restarts"]``) or — once ``restart_limit`` is exhausted —
marked **down**.  Records routed to a down shard are shed with a
``{"kind": "error", "reason": "shard_down"}`` reply and counted per shard
in ``extras["shed_shard_down"]``, mirroring the paper's drop accounting;
the client session stays up.  ``snapshot()`` and ``shutdown()`` skip dead
workers under bounded timeouts (join -> terminate -> kill escalation) and
merge the survivors, noting the dead shards in ``extras``.  See
``docs/RESILIENCE.md`` for the failure model.

:func:`run_sharded_bench` reuses the same worker machinery to measure
aggregate install throughput at a given shard count, driving each shard
with an in-process :class:`~repro.live.loadgen.LoadGenerator` (no
sockets — it measures scheduler capacity, not socket throughput).
"""

from __future__ import annotations

import asyncio
import itertools
import logging
import multiprocessing
import os
import signal
from dataclasses import asdict, dataclass, field, replace

from repro.config import SimulationConfig
from repro.core.sharding import merge_verdicts, route_batch, shard_config
from repro.db.sharding import ShardRouter
from repro.live.clock import WallClock
from repro.live.durability import DurabilityManager
from repro.live.loadgen import LoadGenerator
from repro.live.runtime import LatencyTracker, LiveRuntime
from repro.db.objects import Update
from repro.live.server import IngestServer
from repro.live.shm import DEFAULT_RING_BYTES, SpscRing
from repro.live.wire import (
    DEFAULT_BATCH_MAX,
    DEFAULT_FLUSH_US,
    PROTOCOL_BINARY,
    PROTOCOL_JSONL,
    WIRE_PROTOCOLS,
    CoalescingWriter,
    RpcChannel,
    RpcClosedError,
    RpcDeadlineError,
    RpcError,
    WireProtocolError,
    connect_with_retry,
    encode_reply,
    iter_frame_batches,
    iter_line_batches,
    negotiate_protocol,
)
from repro.metrics.results import SimulationResult
from repro.metrics.storage import result_from_dict
from repro.workload.codec import (
    TAG_SPEC,
    BinaryCodec,
    decode_lines,
    encode_frame,
    encode_lines,
    item_from_record,
    peek_spec_budget,
    peek_spec_route,
    reroute_spec_frame,
)
from repro.workload.transactions import TransactionSpec

logger = logging.getLogger(__name__)


def _encode_hop_frames(routed: list) -> bytes:
    """One binary-hop payload from a routed batch.

    Raw update frames (the binary-client fast path) are forwarded as-is;
    anything materialized (JSONL-client updates, transaction specs) is
    framed here.
    """
    return b"".join(
        item if isinstance(item, bytes) else encode_frame(item)
        for item in routed
    )

#: How long the parent waits for a worker to report its port or result.
_WORKER_TIMEOUT = 60.0

#: Pipe poll period inside async waits.
_POLL_INTERVAL = 0.02

#: Per-stage wait inside the join -> terminate -> kill escalation.
_REAP_GRACE = 2.0

#: Correlation-id floor for cross-shard sub-reads.  Sub-reads share the
#: worker's outcome-correlation keyspace with pass-through client seqs,
#: so their rids start far above any plausible client sequence number —
#: still comfortably inside the wire format's int64.
_RID_BASE = 1 << 62


class ShardDownError(ConnectionError):
    """A shard worker is dead or unreachable.

    Raised by :meth:`ShardCluster._shard_snapshot` when a worker
    connection yields EOF, and by :meth:`ShardCluster.snapshot` /
    :meth:`ShardCluster.shutdown` when *no* shard survives.  A single
    down shard never raises: its records are shed and accounted while
    the survivors keep serving.
    """


# ----------------------------------------------------------------------
# Worker processes
# ----------------------------------------------------------------------
def _ignore_signals() -> None:
    """Shield a worker from group-delivered SIGINT/SIGTERM (Ctrl-C hits
    the whole foreground group); shutdown arrives over the pipe, and the
    daemon flag reaps workers if the parent dies."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_IGN)


def _serve_worker_main(
    conn, config, algorithm, algorithm_kwargs, index, shards,
    batch_max=DEFAULT_BATCH_MAX, flush_us=DEFAULT_FLUSH_US,
    ring_name=None, log_dir=None, fsync="never", snapshot_interval=5.0,
):
    """Entry point of one serving shard (runs in a spawned process)."""
    _ignore_signals()
    asyncio.run(
        _serve_worker_async(
            conn, config, algorithm, algorithm_kwargs, index, shards,
            batch_max, flush_us, ring_name, log_dir, fsync,
            snapshot_interval,
        )
    )


#: Ring consumer sleep when the ring is empty.  Long enough to stay off
#: the CPU the scheduler needs, short enough to stay far under the
#: paper's millisecond-scale deadlines.
_RING_POLL = 0.0005


async def _consume_ring(ring: SpscRing, runtime: LiveRuntime) -> None:
    """Drain one shard's update ring into the runtime, forever.

    Each ring entry is one :func:`~repro.workload.codec.encode_frames`
    blob of updates.  Arrivals are stamped at delivery time exactly like
    the TCP path (:meth:`IngestServer._dispatch_batch` does the same):
    the blob's arrival times are in the router's clock domain.
    """
    while True:
        blobs = ring.pop_all()
        if not blobs:
            await asyncio.sleep(_RING_POLL)
            continue
        now = runtime.clock.now
        updates: list[Update] = []
        for blob in blobs:
            try:
                records = BinaryCodec.decode(blob)
            except ValueError as exc:  # pragma: no cover - producer bug
                logger.error("dropping corrupt ring blob: %s", exc)
                continue
            for item in records:
                if not isinstance(item, Update):
                    logger.warning(
                        "non-update record on the ring: %r", type(item)
                    )
                    continue
                delta = now - item.arrival_time
                if delta > 0:
                    item.arrival_time = now
                    item.generation_time += delta
                updates.append(item)
        if updates:
            runtime.ingest_batch(updates)
        # Yield between drains even under sustained pressure.
        await asyncio.sleep(0)


async def _serve_worker_async(
    conn, config, algorithm, kwargs, index, shards,
    batch_max=DEFAULT_BATCH_MAX, flush_us=DEFAULT_FLUSH_US,
    ring_name=None, log_dir=None, fsync="never", snapshot_interval=5.0,
):
    router = ShardRouter(config.updates.n_low, config.updates.n_high, shards)
    local_config = shard_config(config, router, index)
    manager = None
    if log_dir is not None:
        # Recovery plan first: the clock must *start* in the dead
        # incarnation's time domain, and the clock is fixed at
        # construction.
        manager = DurabilityManager(
            log_dir, index, fsync=fsync, snapshot_interval=snapshot_interval
        )
        runtime = LiveRuntime(
            local_config, algorithm,
            clock=WallClock(start_at=manager.resume_at), **kwargs
        )
    else:
        runtime = LiveRuntime(local_config, algorithm, **kwargs)
    runtime.start()
    stats = None
    if manager is not None:
        # Restore + replay *before* the log attaches (replayed records
        # are already on disk) and before the port is announced (the
        # router only routes to a warm shard).
        stats = await manager.recover(runtime)
        manager.attach(runtime)
        manager.start(runtime)
    server = IngestServer(
        runtime, "127.0.0.1", 0, batch_max=batch_max, flush_us=flush_us
    )
    _, port = await server.start()
    ring = None
    ring_task = None
    if ring_name is not None:
        ring = SpscRing.attach(ring_name)
        ring_task = asyncio.ensure_future(_consume_ring(ring, runtime))
    if stats is not None:
        conn.send(("ready", port, {
            "replayed_records": stats.replayed_records,
            "replay_lag_s": stats.replay_lag_s,
        }))
    else:
        conn.send(("ready", port))
    while not conn.poll():
        await asyncio.sleep(0.05)
    message = conn.recv()  # ("stop", drain_timeout)
    drain_timeout = message[1] if len(message) > 1 else 5.0
    await server.stop()
    if ring_task is not None:
        # Final drain so updates already published to the ring make the
        # result, then stop consuming.
        ring_task.cancel()
        try:
            await ring_task
        except asyncio.CancelledError:
            pass
        await _consume_ring_once(ring, runtime)
        ring.close()
    # Drain first so the final snapshot captures settled state; the
    # snapshot must precede finalize() inside shutdown(), which
    # destructively closes the ledgers' open stale intervals.
    await runtime.drain(drain_timeout)
    if manager is not None:
        await manager.stop(runtime)
    result = await runtime.shutdown(drain_timeout=0.0)
    conn.send(("result", asdict(result)))


async def _consume_ring_once(ring: SpscRing, runtime: LiveRuntime) -> None:
    """One last non-blocking drain during worker shutdown."""
    blobs = ring.pop_all()
    now = runtime.clock.now
    updates: list[Update] = []
    for blob in blobs:
        try:
            records = BinaryCodec.decode(blob)
        except ValueError:  # pragma: no cover - producer bug
            continue
        for item in records:
            if isinstance(item, Update):
                delta = now - item.arrival_time
                if delta > 0:
                    item.arrival_time = now
                    item.generation_time += delta
                updates.append(item)
    if updates:
        runtime.ingest_batch(updates)


def _bench_worker_main(
    conn, config, algorithm, algorithm_kwargs, index, shards, seconds, ramp,
    batch_max=DEFAULT_BATCH_MAX,
):
    """Entry point of one benchmark shard (runs in a spawned process)."""
    _ignore_signals()
    asyncio.run(
        _bench_worker_async(
            conn, config, algorithm, algorithm_kwargs, index, shards,
            seconds, ramp, batch_max
        )
    )


async def _bench_worker_async(
    conn, config, algorithm, kwargs, index, shards, seconds, ramp,
    batch_max=DEFAULT_BATCH_MAX,
):
    if shards == 1:
        local_config = config
    else:
        router = ShardRouter(config.updates.n_low, config.updates.n_high, shards)
        k_low, k_high = router.counts(index)
        share = (k_low + k_high) / (config.updates.n_low + config.updates.n_high)
        local_config = shard_config(config, router, index)
        # Each shard receives its keyspace share of the offered load, and
        # a decorrelated seed so shards don't draw phase-locked arrivals.
        local_config = local_config.with_updates(
            arrival_rate=config.updates.arrival_rate * share
        )
        local_config = local_config.with_transactions(
            arrival_rate=config.transactions.arrival_rate * share
        )
        local_config = local_config.replace(seed=config.seed + 7919 * index)
    runtime = LiveRuntime(local_config, algorithm, **kwargs)
    runtime.start()
    generator = LoadGenerator(runtime, batch_max=batch_max)
    generator.start()
    if ramp > 0:
        await asyncio.sleep(ramp)
        runtime.begin_measurement()
    await asyncio.sleep(seconds)
    generator.stop()
    result = await runtime.shutdown()
    conn.send(("result", asdict(result)))


async def _jsonl_record_batches(reader, leftover: bytes):
    """JSONL sessions as decoded-record batches (the frame-batch dual)."""
    async for lines in iter_line_batches(reader, initial=leftover):
        yield decode_lines(lines)


async def _pipe_recv(conn, process, timeout=_WORKER_TIMEOUT):
    """Await one pipe message from a worker without blocking the loop."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not conn.poll():
        if not process.is_alive():
            raise RuntimeError(
                f"shard worker pid={process.pid} died "
                f"(exitcode {process.exitcode})"
            )
        if loop.time() > deadline:
            raise TimeoutError("timed out waiting for a shard worker")
        await asyncio.sleep(_POLL_INTERVAL)
    return conn.recv()


async def _reap(process, *, grace: float = _REAP_GRACE) -> None:
    """Retire one worker process with bounded escalation.

    Wait up to ``grace`` for a voluntary exit, then ``terminate()``, wait
    again, then ``kill()`` — so a hung or signal-shielded worker can delay
    shutdown by at most ``2 * grace`` instead of forever.  Always joins at
    the end so the child is reaped (no zombies).
    """
    if process is None:
        return
    loop = asyncio.get_running_loop()
    for escalate in (process.terminate, process.kill):
        deadline = loop.time() + grace
        while process.is_alive() and loop.time() < deadline:
            await asyncio.sleep(_POLL_INTERVAL)
        if not process.is_alive():
            break
        escalate()
    process.join(timeout=1.0)


@dataclass
class WorkerState:
    """Parent-side liveness record of one shard worker.

    Attributes:
        index: Shard index (stable across restarts).
        process / conn: The current child process and its control pipe;
            replaced wholesale on restart.
        port: The worker's current loopback ingest port (re-registered
            on restart — restarted workers bind a fresh port).
        status: ``starting`` | ``up`` | ``restarting`` | ``down``.
            Anything other than ``up`` sheds routed records.
        restarts: Completed supervisor restarts of this shard.
        shed_shard_down: Records shed because this shard was not up.
        ring: This shard's update ring (``None`` when ``shm`` is off).
        ring_enabled: Whether the ring is in service — permanently
            ``False`` after a worker restart (the fresh process never
            attaches; see the module docstring).
        ring_retired: The ring was retired (unlinked) after a worker
            death; blocks ``_spawn`` from creating a replacement.
        ring_records: Updates delivered through the ring.
        ring_fallbacks: Update batches diverted to TCP because the ring
            was full or disabled.
        replayed_records: Log records the current incarnation replayed
            on its warm start (0 for cold starts).
        replay_lag_s: Wall seconds the warm start spent restoring +
            replaying — the shard's recovery-staleness component.
    """

    index: int
    process: "multiprocessing.process.BaseProcess | None" = None
    conn: object | None = None
    port: int = 0
    status: str = "starting"
    restarts: int = 0
    shed_shard_down: int = 0
    ring: "SpscRing | None" = None
    ring_enabled: bool = False
    ring_retired: bool = False
    ring_records: int = 0
    ring_fallbacks: int = 0
    replayed_records: int = 0
    replay_lag_s: float = 0.0

    def liveness(self) -> dict:
        """This worker's row in ``extras["workers"]``."""
        return {
            "shard": self.index,
            "status": self.status,
            "restarts": self.restarts,
            "shed_shard_down": self.shed_shard_down,
            "port": self.port,
            "ring": self.ring_enabled,
            "ring_records": self.ring_records,
            "ring_fallbacks": self.ring_fallbacks,
            "replayed_records": self.replayed_records,
            "replay_lag_s": self.replay_lag_s,
        }


# ----------------------------------------------------------------------
# The cluster (parent side)
# ----------------------------------------------------------------------
class ShardCluster:
    """N shard worker processes behind one public JSONL/TCP router.

    Args:
        config: Global configuration; object counts and queue budgets are
            split across shards by the router.
        algorithm: Scheduler registry name (each worker builds its own
            instance).
        shards: Worker count (>= 2; use a plain server for one shard).
        host / port: Public bind address of the router socket.
        algorithm_kwargs: Constructor args for the algorithm.
        restart_limit: Times the supervisor restarts one crashed shard
            worker before marking the shard down for good (0 = never
            restart, shed immediately).
        supervise_interval: Supervisor sentinel-poll period in seconds.
        snapshot_timeout: Bound on one shard's snapshot round trip; a
            shard that cannot answer inside it is skipped (and its
            records shed once the supervisor confirms the death).
        connect_attempts: Per-connection retry budget for upstream and
            snapshot connections (see
            :func:`~repro.live.wire.connect_with_retry`).
        shutdown_grace: Extra seconds past ``drain_timeout`` that
            :meth:`shutdown` waits for each worker's final result before
            declaring the shard dead and escalating.
        rpc_grace: Extra seconds on top of a cross-shard transaction's
            own firm deadline (execution estimate + slack) before the
            router gives up on a shard's sub-read and scores it a
            deadline miss — covers the scatter/gather wire hops, which
            the spec's deadline does not know about.
        wire: Protocol of the internal router→worker hop: ``"binary"``
            (default — struct frames, no JSON on the hot path) or
            ``"jsonl"``.  Independent of what clients speak on the
            public socket (negotiated per session).
        shm: Carry the update stream over per-shard shared-memory rings
            (:class:`~repro.live.shm.SpscRing`) instead of loopback TCP;
            transactions and snapshots stay on TCP.  Requires
            ``wire="binary"`` (the ring carries binary batch blobs).
        ring_bytes: Data capacity of each shard's ring.
        log_dir: Directory for per-shard write-ahead logs + snapshots
            (see :mod:`repro.live.durability`).  ``None`` (default)
            disables durability: restarts come back cold, exactly the
            pre-durability behavior.
        fsync: Log fsync policy — ``never`` | ``interval`` | ``always``.
        snapshot_interval: Seconds between compacted snapshots (each
            truncates the shard's log).
    """

    def __init__(
        self,
        config: SimulationConfig,
        algorithm: str = "TF",
        *,
        shards: int,
        host: str = "127.0.0.1",
        port: int = 0,
        algorithm_kwargs: dict | None = None,
        batch_max: int = DEFAULT_BATCH_MAX,
        flush_us: float = DEFAULT_FLUSH_US,
        restart_limit: int = 1,
        supervise_interval: float = 0.05,
        snapshot_timeout: float = 10.0,
        connect_attempts: int = 6,
        shutdown_grace: float = 10.0,
        rpc_grace: float = 0.25,
        wire: str = PROTOCOL_BINARY,
        shm: bool = False,
        ring_bytes: int = DEFAULT_RING_BYTES,
        log_dir: "str | None" = None,
        fsync: str = "never",
        snapshot_interval: float = 5.0,
    ) -> None:
        if shards < 2:
            raise ValueError("ShardCluster needs >= 2 shards")
        if not isinstance(algorithm, str):
            raise ValueError("sharded serving needs an algorithm name")
        if restart_limit < 0:
            raise ValueError("restart_limit must be >= 0")
        if wire not in WIRE_PROTOCOLS:
            raise ValueError(
                f"unknown wire protocol {wire!r}; expected one of "
                f"{WIRE_PROTOCOLS}"
            )
        if shm and wire != PROTOCOL_BINARY:
            raise ValueError("shm rings require the binary wire protocol")
        config.validate()
        self.config = config
        self.algorithm = algorithm
        self.algorithm_kwargs = dict(algorithm_kwargs or {})
        self.shards = shards
        self.host = host
        self.port = port
        self.batch_max = batch_max
        self.flush_us = flush_us
        self.restart_limit = restart_limit
        self.supervise_interval = supervise_interval
        self.snapshot_timeout = snapshot_timeout
        self.connect_attempts = connect_attempts
        self.shutdown_grace = shutdown_grace
        self.rpc_grace = rpc_grace
        self.wire = wire
        self.shm = shm
        self.ring_bytes = ring_bytes
        self.log_dir = log_dir
        self.fsync = fsync
        self.snapshot_interval = snapshot_interval
        self.router = ShardRouter(
            config.updates.n_low, config.updates.n_high, shards
        )
        self.records_received = 0
        self.errors = 0
        # Cross-shard scatter-gather accounting (merged into extras).
        self.cross_shard_submits = 0
        self.fanout_sub_reads = [0] * shards
        self.sub_read_misses = [0] * shards
        self.sub_read_aborts = [0] * shards
        self.sub_read_deadline_misses = [0] * shards
        self.sub_read_latency = LatencyTracker()
        # One cluster-wide correlation-id counter: a sub-read's rid is
        # unique across sessions, so per-worker outcome keys never collide.
        self._rid = itertools.count(1)
        self._control: "dict[int, RpcChannel]" = {}
        self._workers: list[WorkerState] = []
        self._context = None
        self._server: asyncio.AbstractServer | None = None
        self._supervisor: asyncio.Task | None = None
        self._restart_tasks: set[asyncio.Task] = set()
        self._result: SimulationResult | None = None

    @property
    def ports(self) -> list[int]:
        """Current loopback ingest port of every worker (0 = not up yet)."""
        return [worker.port for worker in self._workers]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Spawn the workers, wait for their ports, bind the router."""
        if self._workers:
            raise RuntimeError("cluster is already running")
        self._context = multiprocessing.get_context("spawn")
        self._workers = [WorkerState(index) for index in range(self.shards)]
        for worker in self._workers:
            self._spawn(worker)
        for worker in self._workers:
            message = await _pipe_recv(worker.conn, worker.process)
            if message[0] != "ready":  # pragma: no cover - defensive
                raise RuntimeError(f"unexpected worker message: {message[0]}")
            self._note_ready(worker, message)
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self._supervisor = asyncio.ensure_future(self._supervise())
        return self.host, self.port

    def _spawn(self, worker: WorkerState) -> None:
        """(Re)create one shard worker process and its control pipe."""
        if self.shm and worker.ring is None and not worker.ring_retired:
            # Short segment names: macOS caps them at 31 chars.
            worker.ring = SpscRing.create(
                self.ring_bytes, name=f"rpr{os.getpid()}s{worker.index}"
            )
            worker.ring_enabled = True
        ring_name = worker.ring.name if worker.ring_enabled else None
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_serve_worker_main,
            args=(
                child_conn,
                self.config,
                self.algorithm,
                self.algorithm_kwargs,
                worker.index,
                self.shards,
                self.batch_max,
                self.flush_us,
                ring_name,
                self.log_dir,
                self.fsync,
                self.snapshot_interval,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker.process = process
        worker.conn = parent_conn

    @staticmethod
    def _note_ready(worker: WorkerState, message) -> None:
        """Register one worker's ready message (with optional replay stats)."""
        worker.port = message[1]
        stats = message[2] if len(message) > 2 else None
        if stats is not None:
            worker.replayed_records = stats.get("replayed_records", 0)
            worker.replay_lag_s = stats.get("replay_lag_s", 0.0)
        worker.status = "up"

    async def stop_ingest(self) -> None:
        """Close the public socket; workers keep draining what they have."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------
    async def _supervise(self) -> None:
        """Watch every worker's process sentinel; restart or mark down."""
        while True:
            await asyncio.sleep(self.supervise_interval)
            for worker in self._workers:
                if worker.status == "up" and not worker.process.is_alive():
                    self._on_worker_death(worker)

    def _on_worker_death(self, worker: WorkerState) -> None:
        exitcode = worker.process.exitcode
        if worker.restarts < self.restart_limit:
            worker.status = "restarting"
            logger.warning(
                "shard %d worker died (exitcode %s); restarting (%d/%d)",
                worker.index, exitcode, worker.restarts + 1, self.restart_limit,
            )
            task = asyncio.ensure_future(self._restart_worker(worker))
            self._restart_tasks.add(task)
            task.add_done_callback(self._restart_tasks.discard)
        else:
            worker.status = "down"
            worker.ring_enabled = False
            logger.warning(
                "shard %d worker died (exitcode %s); restart budget exhausted "
                "— marking down, routed records will be shed",
                worker.index, exitcode,
            )

    async def _retire_worker_resources(
        self, worker: WorkerState, *, release_ring: bool
    ) -> None:
        """Retire everything a dead (or drained) incarnation left behind.

        The single place crash loops and shutdown release worker-attached
        resources, so neither path can leak: the child process is reaped
        (join → terminate → kill), the control pipe fd is closed, and —
        when ``release_ring`` — the shard's shm segment is closed *and
        unlinked* (a fresh process must not resume from stale ring
        cursors, and an unlinked segment cannot accumulate across a crash
        loop; ``ring_retired`` stops ``_spawn`` from minting another).

        Durability files need no parent-side retirement: the dead
        incarnation's log fd died with the process, and the successor
        re-adopts the log *by path*, truncating any torn tail when it
        reopens (see :meth:`~repro.live.durability.UpdateLog.open`).
        """
        await _reap(worker.process)
        if worker.conn is not None:
            worker.conn.close()
            worker.conn = None
        if release_ring and worker.ring is not None:
            worker.ring_enabled = False
            worker.ring_retired = True
            worker.ring.close()
            worker.ring.unlink()
            worker.ring = None

    async def _restart_worker(self, worker: WorkerState) -> None:
        """Replace a dead worker with a fresh runtime on a fresh port.

        While this runs the shard stays non-``up``, so its records are
        shed rather than queued against a process that may never come
        back; on failure the shard is marked down for good.  With
        durability on (``log_dir``) the fresh worker warm-starts from the
        shard's snapshot + log before it announces its port.
        """
        try:
            if worker.ring is not None:
                logger.warning(
                    "shard %d ring retired after worker death; "
                    "falling back to TCP", worker.index,
                )
            await self._retire_worker_resources(worker, release_ring=True)
            self._spawn(worker)
            message = await _pipe_recv(worker.conn, worker.process)
            if message[0] != "ready":  # pragma: no cover - defensive
                raise RuntimeError(f"unexpected worker message: {message[0]}")
            self._note_ready(worker, message)
            worker.restarts += 1
            logger.info(
                "shard %d worker restarted on port %d (restart %d, "
                "replayed %d records)",
                worker.index, worker.port, worker.restarts,
                worker.replayed_records,
            )
        except asyncio.CancelledError:
            worker.status = "down"
            raise
        except (RuntimeError, TimeoutError, EOFError, OSError) as exc:
            worker.status = "down"
            logger.error(
                "shard %d restart failed (%r); marking down", worker.index, exc
            )

    def kill_worker(self, index: int) -> None:
        """Fault injection (tests, ``--fail-shard``): SIGKILL one worker.

        The supervisor then observes the death exactly as it would a real
        crash and restarts or sheds per ``restart_limit``.
        """
        worker = self._workers[index]
        if worker.process is not None and worker.process.is_alive():
            os.kill(worker.process.pid, signal.SIGKILL)

    def worker_status(self, index: int) -> str:
        """Current supervision status of one shard worker."""
        return self._workers[index].status

    def liveness(self) -> list[dict]:
        """Per-worker liveness rows (as reported in ``extras``)."""
        return [worker.liveness() for worker in self._workers]

    # ------------------------------------------------------------------
    # Drain and merge
    # ------------------------------------------------------------------
    async def shutdown(self, drain_timeout: float = 5.0) -> SimulationResult:
        """Stop ingest, drain the surviving workers, merge their results.

        Dead or unresponsive workers cannot hang the drain: each result
        wait is bounded by ``drain_timeout + shutdown_grace``, every
        worker process is retired through the join -> terminate -> kill
        escalation, and the merged result notes the dead shards in
        ``extras["down_shards"]``.

        Raises:
            ShardDownError: when *no* worker reported a final result.
        """
        if self._result is not None:
            return self._result
        if self._supervisor is not None:
            self._supervisor.cancel()
            try:
                await self._supervisor
            except asyncio.CancelledError:
                pass
            self._supervisor = None
        for task in list(self._restart_tasks):
            task.cancel()
        if self._restart_tasks:
            await asyncio.gather(*self._restart_tasks, return_exceptions=True)
        await self.stop_ingest()
        for channel in self._control.values():
            await channel.aclose()
        self._control.clear()
        for worker in self._workers:
            if worker.status == "down" or worker.conn is None:
                continue
            try:
                worker.conn.send(("stop", drain_timeout))
            except (BrokenPipeError, OSError):
                worker.status = "down"
        per_shard: list[SimulationResult] = []
        indices: list[int] = []
        timeout = drain_timeout + self.shutdown_grace
        for worker in self._workers:
            if worker.status != "down":
                try:
                    payload = await self._recv_result(worker, timeout)
                    per_shard.append(result_from_dict(payload))
                    indices.append(worker.index)
                except (RuntimeError, TimeoutError, EOFError, OSError) as exc:
                    worker.status = "down"
                    logger.warning(
                        "shard %d reported no final result (%r); merging "
                        "without it", worker.index, exc,
                    )
            await self._retire_worker_resources(worker, release_ring=True)
        if not per_shard:
            raise ShardDownError(
                "every shard worker died without reporting a result"
            )
        self._result = self._merge(per_shard, indices)
        return self._result

    async def _recv_result(self, worker: WorkerState, timeout: float) -> dict:
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while True:
            remaining = max(_POLL_INTERVAL, deadline - loop.time())
            message = await _pipe_recv(worker.conn, worker.process, remaining)
            if message[0] == "result":
                return message[1]
            # e.g. a worker restarted moments before shutdown replays its
            # "ready" registration first; skip to the result.

    def _merge(
        self,
        per_shard: list[SimulationResult],
        indices: "list[int] | None" = None,
    ) -> SimulationResult:
        """Merge per-shard results (``indices`` names the shards present)."""
        if indices is None:
            indices = list(range(self.shards))
        weights = [self.router.counts(index) for index in indices]
        workers = self.liveness()
        return SimulationResult.merge(
            per_shard,
            weights_low=[low for low, _ in weights],
            weights_high=[high for _, high in weights],
            extras={
                **self.router.accounting(),
                "records_received": self.records_received,
                "protocol_errors": self.errors,
                "workers": workers,
                "worker_restarts": [w["restarts"] for w in workers],
                "shed_shard_down": [w["shed_shard_down"] for w in workers],
                "down_shards": [
                    w["shard"] for w in workers if w["status"] == "down"
                ],
                "merged_shards": list(indices),
                "wire": self.wire,
                "shm": self.shm,
                "cross_shard_submits": self.cross_shard_submits,
                "fanout_sub_reads": list(self.fanout_sub_reads),
                "sub_read_misses": list(self.sub_read_misses),
                "sub_read_aborts": list(self.sub_read_aborts),
                "sub_read_deadline_misses": list(
                    self.sub_read_deadline_misses
                ),
                "sub_read_latency_p99": self.sub_read_latency.percentile(
                    0.99
                ),
                "ring_records": [w["ring_records"] for w in workers],
                "ring_fallbacks": [w["ring_fallbacks"] for w in workers],
                "durability": self.log_dir is not None,
                "replayed_records": [w["replayed_records"] for w in workers],
                "replay_lag_s": [w["replay_lag_s"] for w in workers],
            },
        )

    # ------------------------------------------------------------------
    # Fleet snapshot
    # ------------------------------------------------------------------
    async def snapshot(self) -> SimulationResult:
        """One merged mid-run snapshot over the surviving shards.

        Shards that are down (or fail their bounded snapshot round trip)
        are skipped and noted in ``extras["workers"]`` /
        ``extras["merged_shards"]`` instead of poisoning the merge for
        every client.

        Raises:
            ShardDownError: when no live shard answered.
        """
        live = [worker for worker in self._workers if worker.status == "up"]
        results = await asyncio.gather(
            *(self._try_shard_snapshot(worker) for worker in live)
        )
        per_shard: list[SimulationResult] = []
        indices: list[int] = []
        for worker, result in zip(live, results):
            if result is not None:
                per_shard.append(result)
                indices.append(worker.index)
        if not per_shard:
            raise ShardDownError("no live shard worker answered a snapshot")
        return self._merge(per_shard, indices)

    async def _try_shard_snapshot(
        self, worker: WorkerState
    ) -> "SimulationResult | None":
        """One shard's snapshot, bounded and failure-typed (None = skip)."""
        try:
            return await asyncio.wait_for(
                self._shard_snapshot(worker.index), self.snapshot_timeout
            )
        except (
            ConnectionError,
            OSError,
            ValueError,
            EOFError,
            asyncio.TimeoutError,
            TimeoutError,
            asyncio.IncompleteReadError,
            RpcError,
        ) as exc:
            # The supervisor owns the status transition (it can tell a
            # crash from a transient hiccup via the process sentinel);
            # here the shard is only skipped for this snapshot.
            logger.warning("snapshot of shard %d failed: %r", worker.index, exc)
            return None

    async def _control_channel(self, shard: int) -> RpcChannel:
        """The cluster's persistent control channel to one worker.

        Carries low-rate request/reply traffic (snapshots) over the same
        :class:`RpcChannel` correlation machinery as the data plane; a
        channel whose transport died (worker crash/restart) is discarded
        and reopened against the worker's *current* port.
        """
        channel = self._control.get(shard)
        if channel is not None:
            if not channel.closing:
                return channel
            del self._control[shard]
            await channel.aclose()
        reader, writer = await connect_with_retry(
            "127.0.0.1",
            lambda: self._workers[shard].port,
            attempts=self.connect_attempts,
        )
        # Control traffic is rare: flush every request immediately.
        channel = RpcChannel(
            reader, writer, protocol=self.wire, batch_max=1, flush_us=0.0
        )
        self._control[shard] = channel
        return channel

    async def _shard_snapshot(self, shard: int) -> SimulationResult:
        """One worker's own snapshot, as an RPC over the control channel.

        Raises:
            ShardDownError: when the channel closed with the call in
                flight — the worker died between the request and the
                reply (must not surface as a decode crash).
        """
        channel = await self._control_channel(shard)
        rid = next(self._rid)
        try:
            record = await channel.call({"kind": "snapshot", "rid": rid}, rid)
        except RpcClosedError as exc:
            raise ShardDownError(
                f"shard {shard} closed the snapshot channel ({exc.message})"
            ) from exc
        record = dict(record)
        record.pop("kind", None)
        record.pop("rid", None)
        return result_from_dict(record)

    # ------------------------------------------------------------------
    # Public router socket
    # ------------------------------------------------------------------
    async def _handle(self, reader, writer) -> None:
        """One client session: route record batches, relay replies back.

        The session's protocol is negotiated from its first bytes, same
        as a plain :class:`~repro.live.server.IngestServer` session; it
        is independent of the internal hop's protocol (``self.wire``) —
        each upstream :class:`RpcChannel` re-frames pushed replies into
        the client's protocol.

        A shard worker dying mid-session never tears the session down:
        its records are shed with typed error replies (see
        :meth:`_shed`) while the other shards keep answering.
        """
        upstreams: "dict[int, RpcChannel]" = {}
        merges: "set[asyncio.Task]" = set()
        downstream = CoalescingWriter(
            writer, batch_max=self.batch_max, flush_us=self.flush_us
        )
        protocol = PROTOCOL_JSONL
        try:
            protocol, leftover = await negotiate_protocol(reader)
            if protocol == PROTOCOL_BINARY:
                # With a binary hop, update and spec frames stay raw end
                # to end: routed by field peek, forwarded byte-identical
                # (ids patched), never materialized in the router.
                raw = self.wire == PROTOCOL_BINARY
                batches = iter_frame_batches(
                    reader, raw_updates=raw, raw_specs=raw
                )
            else:
                batches = _jsonl_record_batches(reader, leftover)
            async for records in batches:
                await self._dispatch_batch(
                    records, downstream, upstreams, protocol, merges
                )
                await downstream.backpressure()
        except WireProtocolError as exc:
            self.errors += 1
            logger.warning("wire negotiation failed: %s", exc)
        except ValueError as exc:
            # Corrupt binary frame header: no resynchronization point.
            self.errors += 1
            logger.warning("binary session corrupt: %s", exc)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            await self._close_session(upstreams, downstream, merges)

    async def _close_session(self, upstreams, downstream, merges=()) -> None:
        """Tear down one session's merge tasks, channels, and writers.

        In-flight cross-shard gathers die with their client (nobody is
        left to read the merged outcome); an upstream channel whose
        reader failed with a real exception is logged and counted in
        ``protocol_errors`` instead of being silently swallowed.
        """
        for task in list(merges):
            task.cancel()
        if merges:
            await asyncio.gather(*merges, return_exceptions=True)
        for channel in upstreams.values():
            await channel.aclose()
            if channel.failure is not None:
                self.errors += 1
                logger.warning(
                    "upstream reply channel failed: %r", channel.failure
                )
        await downstream.aclose()

    async def _dispatch_batch(
        self,
        records,
        downstream,
        upstreams,
        protocol=PROTOCOL_JSONL,
        merges=None,
    ) -> None:
        """Route one decoded wire batch, forward per (shard, batch).

        ``records`` mixes dicts (JSONL lines, JSON frames),
        already-built :class:`Update` instances or raw update/spec
        frames (binary sessions), :class:`TransactionSpec` instances,
        and ``Exception`` entries.  Updates batch per shard through
        :meth:`_forward`; every transaction goes through
        :meth:`_submit_spec` (single-owner pass-through or cross-shard
        scatter-gather), flushing the updates collected so far first so
        the transaction observes every earlier record on each shard's
        connection.  A snapshot request likewise flushes, then answers
        with the merged fleet snapshot.  A malformed record gets its
        error reply and its neighbors proceed — same per-record error
        semantics as the unbatched path.
        """
        if merges is None:
            merges = set()
        items: list = []
        for record in records:
            try:
                if isinstance(record, Exception):
                    raise record
                if isinstance(record, bytes) and record[0] != TAG_SPEC:
                    items.append(record)  # raw update frame
                    continue
                if isinstance(record, Update):
                    items.append(record)
                    continue
                if isinstance(record, (TransactionSpec, bytes)):
                    if items:
                        await self._forward(
                            items, downstream, upstreams, protocol
                        )
                        items = []
                    await self._submit_spec(
                        record, downstream, upstreams, protocol, merges
                    )
                    continue
                if isinstance(record, dict) and record.get("kind") == "snapshot":
                    await self._forward(items, downstream, upstreams, protocol)
                    items = []
                    try:
                        merged = {"kind": "snapshot"}
                        merged.update(asdict(await self.snapshot()))
                        downstream.write(encode_reply(merged, protocol))
                    except ShardDownError as exc:
                        self.errors += 1
                        downstream.write(
                            encode_reply(
                                {
                                    "kind": "error",
                                    "reason": "shard_down",
                                    "message": str(exc),
                                },
                                protocol,
                            )
                        )
                    # Snapshot replies are full fleet results — orders of
                    # magnitude bigger than outcome lines — so they need
                    # the same backpressure point as every other write
                    # path, or a snapshot-spamming client grows the write
                    # buffer without bound.
                    await downstream.backpressure()
                    continue
                item = item_from_record(record)
                if isinstance(item, TransactionSpec):
                    if items:
                        await self._forward(
                            items, downstream, upstreams, protocol
                        )
                        items = []
                    await self._submit_spec(
                        item, downstream, upstreams, protocol, merges
                    )
                else:
                    items.append(item)
            except (ValueError, KeyError, TypeError) as exc:
                self.errors += 1
                self.router.note_routing_error()
                self._error_reply(downstream, exc, protocol)
        await self._forward(items, downstream, upstreams, protocol)

    async def _submit_spec(
        self, item, downstream, upstreams, protocol, merges
    ) -> None:
        """Route one transaction: pass-through or cross-shard scatter.

        ``item`` is a :class:`TransactionSpec` or a raw binary
        ``TAG_SPEC`` frame (binary client over a binary hop — split by
        field peek, re-id'd by in-place patch, never materialized).

        A read-set owned by one shard forwards as-is under the client's
        own seq; the worker's outcome pushes straight back.  A read-set
        spanning shards is split per owner, each sub-read submitted
        under a fresh correlation id (:data:`_RID_BASE` + counter), and
        a merge task gathers the per-shard verdicts under one shared
        firm-deadline window (see :meth:`_gather_verdict`).  The scatter
        refuses to start against a down owner: the whole transaction is
        shed with one typed ``shard_down`` reply instead of burning the
        live shards' work on a verdict that cannot commit.
        """
        router = self.router
        self.records_received += 1
        try:
            if isinstance(item, bytes):
                klass, seq, reads = peek_spec_route(item)
                compute_time, slack = peek_spec_budget(item)
                split = (
                    router.split_reads(klass, reads)
                    if reads
                    else {router.hash_shard(seq): ()}
                )

                def make_sub(sub_id, local):
                    return reroute_spec_frame(item, sub_id, local)

            else:
                seq = item.seq
                reads = item.reads
                compute_time, slack = item.compute_time, item.slack
                split = (
                    router.split_reads(item.view_class, reads)
                    if reads
                    else {router.hash_shard(seq): ()}
                )

                def make_sub(sub_id, local):
                    return replace(item, seq=sub_id, reads=tuple(local))

        except (ValueError, IndexError) as exc:
            self.errors += 1
            router.note_routing_error()
            self._error_reply(downstream, exc, protocol)
            return
        if self.wire == PROTOCOL_BINARY:
            def encode_one(sub):
                return sub if isinstance(sub, bytes) else encode_frame(sub)
        else:
            def encode_one(sub):
                return encode_lines([sub])
        if len(split) == 1:
            shard, local = next(iter(split.items()))
            worker = self._workers[shard]
            router.note_transaction_routed(shard)
            if worker.status != "up":
                self._shed(worker, 1, downstream, protocol)
                return
            try:
                channel = await self._upstream(
                    shard, downstream, upstreams, protocol
                )
                channel.post(encode_one(make_sub(seq, local)))
                await channel.backpressure()
            except (ConnectionError, OSError, asyncio.TimeoutError, TimeoutError):
                self._shed(worker, 1, downstream, protocol)
            return
        down = [s for s in split if self._workers[s].status != "up"]
        if down:
            self._shed(self._workers[down[0]], 1, downstream, protocol)
            return
        channels = {}
        try:
            for shard in split:
                channels[shard] = await self._upstream(
                    shard, downstream, upstreams, protocol
                )
        except (ConnectionError, OSError, asyncio.TimeoutError, TimeoutError):
            self._shed(self._workers[shard], 1, downstream, protocol)
            return
        self.cross_shard_submits += 1
        subs = []
        for shard, local in split.items():
            channel = channels[shard]
            rid = _RID_BASE + next(self._rid)
            channel.expect(rid)
            channel.post(encode_one(make_sub(rid, local)))
            channel.flush()
            router.note_transaction_routed(shard)
            self.fanout_sub_reads[shard] += 1
            subs.append((shard, rid, channel))
        # One shared window over the whole fan-out: the parent's own
        # firm deadline (estimate + slack against the *global* read
        # count) plus the configured wire grace.
        system = self.config.system
        timeout = (
            compute_time
            + len(reads) * (system.x_lookup / system.ips)
            + slack
            + self.rpc_grace
        )
        task = asyncio.ensure_future(
            self._gather_verdict(seq, subs, timeout, downstream, protocol)
        )
        merges.add(task)
        task.add_done_callback(merges.discard)

    async def _gather_verdict(
        self, seq, subs, timeout, downstream, protocol
    ) -> None:
        """Await every sub-read, merge the verdicts, reply to the client.

        The firm deadline is enforced across the *slowest* shard: all
        sub-reads share one deadline window, and a shard that cannot
        answer inside it — or whose channel died mid-call — scores a
        typed failure that merges as a parent miss
        (:func:`~repro.core.sharding.merge_verdicts`).  Per-shard miss /
        abort / deadline counters and observed sub-read round-trip
        latencies feed ``extras``.
        """
        loop = asyncio.get_running_loop()
        started = loop.time()
        deadline = started + timeout
        outcomes = []
        for shard, rid, channel in subs:
            remaining = max(0.0, deadline - loop.time())
            try:
                record = await channel.result(rid, timeout=remaining)
            except RpcDeadlineError:
                self.sub_read_deadline_misses[shard] += 1
                outcomes.append({
                    "outcome": "missed",
                    "read_stale": False,
                    "finish_time": None,
                    "failure": "sub_read_deadline",
                })
                continue
            except RpcError as exc:
                self.sub_read_deadline_misses[shard] += 1
                outcomes.append({
                    "outcome": "missed",
                    "read_stale": False,
                    "finish_time": None,
                    "failure": exc.reason,
                })
                continue
            self.sub_read_latency.record(loop.time() - started)
            outcome = record.get("outcome")
            if outcome == "missed":
                self.sub_read_misses[shard] += 1
            elif outcome == "aborted-stale":
                self.sub_read_aborts[shard] += 1
            outcomes.append(record)
        verdict = merge_verdicts(outcomes)
        reply = {
            "kind": "outcome",
            "seq": seq,
            "outcome": verdict["outcome"],
            "read_stale": verdict["read_stale"],
            "finish_time": verdict["finish_time"],
            "fanout": len(subs),
        }
        downstream.write(encode_reply(reply, protocol))
        await downstream.backpressure()

    async def _forward(
        self, items, downstream, upstreams, protocol=PROTOCOL_JSONL
    ) -> None:
        """Group a decoded update batch by shard; one write per shard.

        Transactions never reach this path any more (they go through
        :meth:`_submit_spec`); what remains is the fire-and-forget
        update stream.  With shm rings enabled, each shard's updates
        ride its ring as one binary blob (falling back to TCP when the
        ring is full or disabled).  Records owned by a shard that is not
        up — or whose worker dies between the liveness check and the
        write — are shed, not queued: the client gets one ``shard_down``
        error reply per record and the session keeps flowing.
        """
        if not items:
            return
        def on_error(_item, exc):
            self.errors += 1
            self._error_reply(downstream, exc, protocol)
        by_shard = route_batch(self.router, items, on_error=on_error)
        encode_batch = (
            _encode_hop_frames if self.wire == PROTOCOL_BINARY else encode_lines
        )
        for shard, routed in by_shard.items():
            self.records_received += len(routed)
            worker = self._workers[shard]
            if worker.status != "up":
                self._shed(worker, len(routed), downstream, protocol)
                continue
            if worker.ring_enabled:
                routed = self._push_ring(worker, routed)
                if not routed:
                    continue
            try:
                channel = await self._upstream(
                    shard, downstream, upstreams, protocol
                )
                channel.post(encode_batch(routed), len(routed))
                await channel.backpressure()
            except (ConnectionError, OSError, asyncio.TimeoutError, TimeoutError):
                self._shed(worker, len(routed), downstream, protocol)

    def _push_ring(self, worker: WorkerState, routed: list) -> list:
        """Offer a routed batch's updates to the shard's ring.

        Returns the records that still need the TCP path: transactions
        always, and the updates too when the ring had no room (the
        fallback; counted per shard).  Updates arrive either as raw
        frames (binary client, fast path) or :class:`Update` instances
        (JSONL client); both ride the ring as one frame blob.
        """
        updates = [
            item for item in routed if isinstance(item, (Update, bytes))
        ]
        if not updates:
            return routed
        rest = [
            item for item in routed if not isinstance(item, (Update, bytes))
        ]
        if worker.ring.push(_encode_hop_frames(updates)):
            worker.ring_records += len(updates)
            return rest
        worker.ring_fallbacks += 1
        return routed

    def _shed(
        self, worker: WorkerState, count: int, downstream, protocol
    ) -> None:
        """Account and reply for records dropped on a down shard.

        The cluster analogue of the paper's OSmax drop: the records are
        lost by design, the loss is *counted* (per shard, in
        ``extras["shed_shard_down"]``), and the sender is told with a
        typed outcome instead of a killed session.
        """
        worker.shed_shard_down += count
        reply = encode_reply(
            {"kind": "error", "reason": "shard_down", "shard": worker.index},
            protocol,
        )
        for _ in range(count):
            downstream.write(reply)

    @staticmethod
    def _error_reply(
        downstream: CoalescingWriter, exc: Exception, protocol
    ) -> None:
        downstream.write(
            encode_reply({"kind": "error", "message": str(exc)}, protocol)
        )

    async def _upstream(
        self, shard: int, downstream, upstreams, protocol
    ) -> RpcChannel:
        """This client's RPC channel to one shard, opened on first use.

        The channel speaks ``self.wire`` (a binary hop opens with the
        preamble); worker replies that match a pending cross-shard
        sub-read resolve its future, and everything else — pass-through
        outcomes, worker error frames — pushes straight back to the
        client, re-encoded into the session's protocol.  A cached
        channel that is closing belongs to a dead (or restarted) worker
        incarnation; it is discarded (its failure, if any, counted) and
        reopened against the worker's *current* port —
        :func:`~repro.live.wire.connect_with_retry` re-resolves the port
        every attempt, so a restart mid-reconnect still lands.
        """
        channel = upstreams.get(shard)
        if channel is not None:
            if not channel.closing:
                return channel
            del upstreams[shard]
            await channel.aclose()
            if channel.failure is not None:
                self.errors += 1
                logger.warning(
                    "upstream reply channel failed: %r", channel.failure
                )
        up_reader, up_writer = await connect_with_retry(
            "127.0.0.1",
            lambda: self._workers[shard].port,
            attempts=self.connect_attempts,
        )

        def push_reply(record, _down=downstream, _proto=protocol):
            _down.write(encode_reply(record, _proto))

        channel = RpcChannel(
            up_reader,
            up_writer,
            protocol=self.wire,
            batch_max=self.batch_max,
            flush_us=self.flush_us,
            on_push=push_reply,
        )
        upstreams[shard] = channel
        return channel


# ----------------------------------------------------------------------
# Sharded throughput benchmark
# ----------------------------------------------------------------------
@dataclass
class ShardedBenchResult:
    """Outcome of :func:`run_sharded_bench`.

    Attributes:
        shards: Shard count measured.
        mode: ``"parallel"`` (all workers concurrently; needs >= shards
            cores) or ``"sequential"`` (one worker at a time, each with
            the whole machine — the one-core-per-shard deployment model,
            used automatically when this host has fewer cores than
            shards).
        installs_per_second: Aggregate installed updates per wall second,
            summed over shards (each normalized by its own window).
        merged: The merged :class:`SimulationResult` of the fleet.
        per_shard: Each shard's own result.
    """

    shards: int
    mode: str
    installs_per_second: float
    merged: SimulationResult
    per_shard: list[SimulationResult] = field(default_factory=list)


def _recv_blocking(conn, process, timeout=_WORKER_TIMEOUT):
    if not conn.poll(timeout):
        raise TimeoutError("timed out waiting for a bench worker")
    return conn.recv()


def run_sharded_bench(
    config: SimulationConfig,
    algorithm: str = "TF",
    shards: int = 1,
    *,
    seconds: float = 2.0,
    ramp: float = 0.3,
    parallel: bool | None = None,
    algorithm_kwargs: dict | None = None,
    batch_max: int = DEFAULT_BATCH_MAX,
) -> ShardedBenchResult:
    """Measure aggregate live install throughput at one shard count.

    Every shard — including the ``shards=1`` baseline — runs in its own
    spawned process under identical conditions: a
    :class:`~repro.live.runtime.LiveRuntime` driven by an in-process
    Poisson :class:`~repro.live.loadgen.LoadGenerator` at the shard's
    keyspace share of the offered rate, with a ramp excluded from the
    measured window.

    When the host has at least ``shards`` cores the workers run
    concurrently; otherwise they run back-to-back, each getting the whole
    machine (the one-core-per-shard model — see ``docs/SCALING.md``).
    Pass ``parallel`` to force either mode.
    """
    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")
    config.validate()
    if parallel is None:
        parallel = (os.cpu_count() or 1) >= shards
    context = multiprocessing.get_context("spawn")
    kwargs = dict(algorithm_kwargs or {})

    def spawn(index: int):
        parent_conn, child_conn = context.Pipe()
        process = context.Process(
            target=_bench_worker_main,
            args=(child_conn, config, algorithm, kwargs, index, shards,
                  seconds, ramp, batch_max),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return process, parent_conn

    payloads: list[dict] = []
    if parallel:
        workers = [spawn(index) for index in range(shards)]
        for process, conn in workers:
            kind, payload = _recv_blocking(conn, process)
            assert kind == "result", kind
            payloads.append(payload)
            process.join(timeout=_WORKER_TIMEOUT)
    else:
        for index in range(shards):
            process, conn = spawn(index)
            kind, payload = _recv_blocking(conn, process)
            assert kind == "result", kind
            payloads.append(payload)
            process.join(timeout=_WORKER_TIMEOUT)

    per_shard = [result_from_dict(payload) for payload in payloads]
    # Bench shards draw decorrelated arrival streams on purpose; restore
    # the root seed so the merge's same-run guard sees one fleet.
    per_shard = [replace(result, seed=config.seed) for result in per_shard]
    if shards == 1:
        weights = [(config.updates.n_low, config.updates.n_high)]
    else:
        router = ShardRouter(config.updates.n_low, config.updates.n_high, shards)
        weights = [router.counts(index) for index in range(shards)]
    merged = SimulationResult.merge(
        per_shard,
        weights_low=[low for low, _ in weights],
        weights_high=[high for _, high in weights],
        extras={"shards": shards, "bench_mode": "parallel" if parallel else "sequential"},
    )
    installs_per_second = sum(
        result.updates_applied / result.duration
        for result in per_shard
        if result.duration > 0
    )
    return ShardedBenchResult(
        shards=shards,
        mode="parallel" if parallel else "sequential",
        installs_per_second=installs_per_second,
        merged=merged,
        per_shard=per_shard,
    )
