"""Shared-memory SPSC rings: the zero-copy router→worker hop.

The sharded cluster's data plane originally crossed the process boundary
over loopback TCP — every routed batch paid a socket write, a kernel
copy, a wakeup, and a socket read, per hop.  For the *fire-and-forget*
update stream none of that buys anything: there is no reply, no
backpressure contract beyond "drop and account", and exactly one
producer (the router) and one consumer (the shard worker).  That is the
textbook case for a single-producer/single-consumer ring buffer in
shared memory, which this module provides on top of
:mod:`multiprocessing.shared_memory`.

Layout of one ring (all little-endian)::

    [0:8)    head  — consumer cursor, free-running byte offset
    [8:16)   tail  — producer cursor, free-running byte offset
    [16:16+capacity)  data region, entries wrap byte-wise

One entry is a 4-byte length prefix followed by the payload (for the
cluster: one :class:`~repro.workload.codec.BinaryCodec` batch blob).
Cursors are free-running ``uint64`` — they never wrap in any realistic
run (2^64 bytes), so ``tail - head`` is always the exact number of
unconsumed bytes and the empty/full ambiguity of modular rings never
arises.

Ordering contract: the producer writes the entry bytes *before*
publishing the new ``tail``; the consumer reads ``tail`` before the
entry bytes, and publishes ``head`` only after it has copied them out.
Each cursor has exactly one writer, and an aligned 8-byte store is not
torn on the platforms CPython runs on, so no lock is needed.  (On
weakly-ordered ISAs the interpreter's own synchronization on every
bytecode boundary supplies more than enough fencing for this traffic.)

A full ring is not an error: :meth:`SpscRing.push` returns ``False`` and
the cluster falls back to the TCP path for that batch — the ring is an
opportunistic fast lane, TCP remains the reliable road.

``multiprocessing.resource_tracker`` quirk: attaching to an existing
segment *registers* it with the attaching process's tracker (fixed only
in Python 3.13's ``track=False``), so a worker exiting would unlink a
ring the router still owns.  :meth:`SpscRing.attach` unregisters the
segment from the tracker; lifetime stays with the creator.
"""

from __future__ import annotations

import struct
from multiprocessing import shared_memory

_CURSOR = struct.Struct("<Q")
_LENGTH = struct.Struct("<I")

#: Byte offset of each cursor in the header.
_HEAD_AT = 0
_TAIL_AT = 8

#: Header size; the data region starts here.
HEADER_SIZE = 16

#: Default data-region capacity of one ring (per shard).
DEFAULT_RING_BYTES = 1 << 20


class SpscRing:
    """One single-producer/single-consumer byte ring in shared memory.

    Construct through :meth:`create` (producer side, owns the segment)
    or :meth:`attach` (consumer side).  Exactly one process may call
    :meth:`push` and exactly one may call :meth:`pop_all`; nothing
    enforces this — it is the SPSC contract.

    Attributes:
        pushed / popped: Entries moved through this handle.
        rejected: Pushes refused because the ring was full.
    """

    __slots__ = (
        "_shm", "_buf", "_capacity", "_owner",
        "_head_cache", "_tail_cache",
        "pushed", "popped", "rejected",
    )

    def __init__(
        self, shm: shared_memory.SharedMemory, *, owner: bool
    ) -> None:
        self._shm = shm
        self._buf = shm.buf
        self._capacity = shm.size - HEADER_SIZE
        self._owner = owner
        self._head_cache = _CURSOR.unpack_from(self._buf, _HEAD_AT)[0]
        self._tail_cache = _CURSOR.unpack_from(self._buf, _TAIL_AT)[0]
        self.pushed = 0
        self.popped = 0
        self.rejected = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls, capacity: int = DEFAULT_RING_BYTES, name: "str | None" = None
    ) -> "SpscRing":
        """Allocate a fresh ring segment (this handle owns and unlinks it)."""
        if capacity < 64:
            raise ValueError(f"ring capacity {capacity} is too small")
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=HEADER_SIZE + capacity
        )
        shm.buf[:HEADER_SIZE] = b"\x00" * HEADER_SIZE
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name: str) -> "SpscRing":
        """Open an existing ring by name (does not take ownership)."""
        shm = shared_memory.SharedMemory(name=name)
        try:  # keep this process's tracker from unlinking the owner's ring
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals moved
            pass
        return cls(shm, owner=False)

    @property
    def name(self) -> str:
        """The segment name a consumer attaches by."""
        return self._shm.name

    @property
    def capacity(self) -> int:
        """Data-region bytes (max backlog the ring can hold)."""
        return self._capacity

    @property
    def backlog(self) -> int:
        """Unconsumed bytes currently in the ring (approximate: racy read)."""
        head = _CURSOR.unpack_from(self._buf, _HEAD_AT)[0]
        tail = _CURSOR.unpack_from(self._buf, _TAIL_AT)[0]
        return tail - head

    def close(self) -> None:
        """Drop this handle's mapping (the segment survives if owned)."""
        self._buf = None
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (owner side, after every peer closed)."""
        if not self._owner:
            return
        try:
            # Spawn children share the parent's tracker process, so the
            # consumer's attach-time unregister may have removed *this*
            # registration; re-adding it (tracker cache is a set — a
            # dedup no-op otherwise) keeps ``shm.unlink``'s own
            # unregister from logging a KeyError in the tracker.
            from multiprocessing import resource_tracker

            resource_tracker.register(self._shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals moved
            pass
        self._shm.unlink()

    # ------------------------------------------------------------------
    # Byte-wise wraparound I/O
    # ------------------------------------------------------------------
    def _write_at(self, position: int, data: bytes) -> None:
        cap = self._capacity
        start = position % cap
        end = start + len(data)
        buf = self._buf
        if end <= cap:
            buf[HEADER_SIZE + start: HEADER_SIZE + end] = data
        else:
            split = cap - start
            buf[HEADER_SIZE + start: HEADER_SIZE + cap] = data[:split]
            buf[HEADER_SIZE: HEADER_SIZE + end - cap] = data[split:]

    def _read_at(self, position: int, length: int) -> bytes:
        cap = self._capacity
        start = position % cap
        end = start + length
        buf = self._buf
        if end <= cap:
            return bytes(buf[HEADER_SIZE + start: HEADER_SIZE + end])
        split = cap - start
        return bytes(buf[HEADER_SIZE + start: HEADER_SIZE + cap]) + bytes(
            buf[HEADER_SIZE: HEADER_SIZE + end - cap]
        )

    # ------------------------------------------------------------------
    # Producer / consumer
    # ------------------------------------------------------------------
    def push(self, payload: bytes) -> bool:
        """Append one entry; ``False`` (and no partial write) when full.

        Raises:
            ValueError: when the entry could never fit an empty ring —
                that is a sizing bug, not transient pressure.
        """
        need = _LENGTH.size + len(payload)
        if need > self._capacity:
            raise ValueError(
                f"entry of {len(payload)} bytes exceeds ring capacity "
                f"{self._capacity}"
            )
        head = _CURSOR.unpack_from(self._buf, _HEAD_AT)[0]
        tail = self._tail_cache
        if self._capacity - (tail - head) < need:
            self.rejected += 1
            return False
        self._write_at(tail, _LENGTH.pack(len(payload)))
        self._write_at(tail + _LENGTH.size, payload)
        tail += need
        # Publish *after* the entry bytes are in place.
        _CURSOR.pack_into(self._buf, _TAIL_AT, tail)
        self._tail_cache = tail
        self.pushed += 1
        return True

    def pop_all(self) -> "list[bytes]":
        """Drain every complete entry currently published, in push order.

        Raises:
            ValueError: on a corrupt length prefix (longer than the ring)
                — the SPSC contract was broken, the ring is unusable.
        """
        tail = _CURSOR.unpack_from(self._buf, _TAIL_AT)[0]
        head = self._head_cache
        if head == tail:
            return []
        out: list[bytes] = []
        while head != tail:
            (length,) = _LENGTH.unpack(self._read_at(head, _LENGTH.size))
            if _LENGTH.size + length > self._capacity:
                raise ValueError(
                    f"ring entry declares {length} bytes "
                    f"(capacity {self._capacity}); ring is corrupt"
                )
            out.append(self._read_at(head + _LENGTH.size, length))
            head += _LENGTH.size + length
        # Free the space only after the copies out are complete.
        _CURSOR.pack_into(self._buf, _HEAD_AT, head)
        self._head_cache = head
        self.popped += len(out)
        return out
