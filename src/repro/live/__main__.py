"""Live runtime command line: ``python -m repro.live`` (or ``repro-live``).

Three subcommands::

    repro-live serve    # host the scheduler behind a TCP ingest socket
    repro-live loadgen  # stream synthesized or recorded traffic at a server
    repro-live bench    # in-process throughput/latency benchmark

``serve`` runs until SIGINT/SIGTERM (or ``--seconds``), then drains
gracefully — ingest stops, the controller finishes its queue, and the final
metrics snapshot is printed as one JSON line.  ``loadgen`` draws the same
workload a simulator run with the same seed would draw, or replays a
recorded trace file.  ``bench`` reports sustained installs/s and install
latency percentiles for one config on one core.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import signal
import sys
import time
from dataclasses import asdict

from repro.config import SimulationConfig, StalenessPolicy, baseline_config
from repro.core.algorithms.registry import ALGORITHMS
from repro.live.clock import WallClock
from repro.live.cluster import ShardCluster, run_sharded_bench
from repro.live.durability import FSYNC_POLICIES, DurabilityManager
from repro.live.loadgen import (
    CrossShardSpreader,
    DirectClient,
    LoadGenerator,
    WireClient,
)
from repro.live.observe import MetricsStreamer
from repro.live.runtime import LiveRuntime
from repro.live.server import IngestServer
from repro.live.wire import (
    DEFAULT_BATCH_MAX,
    DEFAULT_CONNECT_ATTEMPTS,
    DEFAULT_FLUSH_US,
)
from repro.sim.streams import StreamFamily
from repro.workload.trace import load_trace
from repro.workload.transactions import TransactionGenerator, TransactionSpec
from repro.workload.updates import UpdateStreamGenerator


def _add_config_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--algorithm", default="TF", type=str.upper,
                        choices=sorted(ALGORITHMS), metavar="ALGO",
                        help="scheduling algorithm: "
                        + ", ".join(sorted(ALGORITHMS)) + " (default TF)")
    parser.add_argument("--seed", type=int, default=1995)
    parser.add_argument("--lambda-u", type=float, default=None,
                        help="update arrival rate (default 400/s)")
    parser.add_argument("--lambda-t", type=float, default=None,
                        help="transaction arrival rate (default 10/s)")
    parser.add_argument("--max-age", type=float, default=None,
                        help="MA staleness threshold alpha (default 7s)")
    parser.add_argument("--mean-age", type=float, default=None,
                        help="mean pre-arrival network age of updates "
                        "(default 1s; 0 means generation order = "
                        "arrival order)")
    parser.add_argument("--staleness", choices=[p.value for p in StalenessPolicy],
                        default=StalenessPolicy.MAX_AGE.value)
    parser.add_argument("--ips", type=float, default=None,
                        help="CPU speed in instructions/second "
                        "(default: the paper's 50e6)")
    parser.add_argument("--indexed-queue", action="store_true", default=None,
                        help="hash-index the update queue (newest per object)")


def _add_batch_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--batch-max", type=int, default=DEFAULT_BATCH_MAX,
                        help="records per coalesced wire write / ingest "
                        f"batch (default {DEFAULT_BATCH_MAX}, from the "
                        "benchmark sweep in docs/PERFORMANCE.md; "
                        "1 = per-record, the pre-batching wire behavior)")
    parser.add_argument("--flush-us", type=float, default=DEFAULT_FLUSH_US,
                        help="flush deadline in microseconds for partially "
                        f"filled wire batches (default {DEFAULT_FLUSH_US:.0f}; "
                        "bounds how long a lone record can sit buffered)")


def _build_config(args) -> SimulationConfig:
    config = baseline_config(
        duration=1.0, seed=args.seed, staleness=StalenessPolicy(args.staleness)
    )
    config.warmup = 0.0
    if args.lambda_u is not None:
        config = config.with_updates(arrival_rate=args.lambda_u)
    if args.lambda_t is not None:
        config = config.with_transactions(arrival_rate=args.lambda_t)
    if args.max_age is not None:
        config = config.with_transactions(max_age=args.max_age)
    if args.mean_age is not None:
        config = config.with_updates(mean_age=args.mean_age)
    if args.ips is not None:
        config = config.with_system(ips=args.ips)
    if args.indexed_queue is not None:
        config = config.with_system(indexed_update_queue=args.indexed_queue)
    config.validate()
    return config


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-live",
        description="Wall-clock STRIP runtime for the paper's schedulers.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="host the scheduler on a TCP socket")
    _add_config_args(serve)
    _add_batch_args(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7995)
    serve.add_argument("--shards", type=int, default=1,
                       help="shard the keyspace over this many worker "
                       "processes behind one ingest socket (default 1)")
    serve.add_argument("--seconds", type=float, default=None,
                       help="exit after this long (default: until SIGINT)")
    serve.add_argument("--metrics", default="-",
                       help="JSONL metrics destination: '-' for stdout, "
                       "a path, or 'none'")
    serve.add_argument("--metrics-interval", type=float, default=1.0)
    serve.add_argument("--drain-timeout", type=float, default=5.0)
    serve.add_argument("--restart-limit", type=int, default=1,
                       help="times the supervisor restarts a crashed shard "
                       "worker before marking the shard down and shedding "
                       "its records (sharded mode; default 1, 0 = never "
                       "restart)")
    serve.add_argument("--fail-shard", type=int, default=None, metavar="INDEX",
                       help="fault injection: SIGKILL this shard worker "
                       "after --fail-after seconds (sharded mode only)")
    serve.add_argument("--fail-after", type=float, default=1.0,
                       metavar="SECONDS",
                       help="delay before --fail-shard fires (default 1)")
    serve.add_argument("--log-dir", default=None, metavar="DIR",
                       help="durability: append admitted updates to a "
                       "per-shard write-ahead log under DIR and snapshot "
                       "periodically, so crashed shard workers restart "
                       "*warm* — snapshot + replay instead of a cold "
                       "empty runtime (default: off, restarts are cold)")
    serve.add_argument("--fsync", choices=list(FSYNC_POLICIES),
                       default="never",
                       help="log fsync policy: 'never' trusts the OS page "
                       "cache (survives process crashes, not power loss), "
                       "'interval' syncs at most every 200ms, 'always' "
                       "syncs every append (default never)")
    serve.add_argument("--snapshot-interval", type=float, default=5.0,
                       metavar="SECONDS",
                       help="seconds between compacted snapshots; each "
                       "snapshot truncates the log to records newer than "
                       "it (default 5)")
    serve.add_argument("--wire", choices=["jsonl", "binary"],
                       default="binary",
                       help="router→worker hop protocol (sharded mode; "
                       "default binary — the public socket negotiates "
                       "per client session regardless)")
    serve.add_argument("--shm", action="store_true",
                       help="carry the update stream to shard workers over "
                       "shared-memory rings instead of loopback TCP "
                       "(sharded mode; implies --wire binary for the hop)")
    serve.add_argument("--view", action="append", default=[], metavar="SPEC",
                       help="register a derived view at startup "
                       "(repeatable); SPEC is NAME=KIND:PARTITION with "
                       "options, e.g. 'by8=sum:low,groups=8' or "
                       "'hot=top_k:high,k=4' — sharded mode registers it "
                       "on every worker and merges the per-shard reports")
    serve.add_argument("--routers", type=int, default=1,
                       help="router plane processes sharing the public port "
                       "via SO_REUSEPORT (sharded mode; default 1 — the "
                       "router runs in the supervisor process; needs >= 2 "
                       "to spread ingest parsing over cores; incompatible "
                       "with --shm)")

    loadgen = sub.add_parser("loadgen",
                             help="stream traffic at a running server")
    _add_config_args(loadgen)
    _add_batch_args(loadgen)
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=7995)
    loadgen.add_argument("--seconds", type=float, default=10.0)
    loadgen.add_argument("--trace", default=None,
                         help="replay this JSONL trace instead of synthesizing")
    loadgen.add_argument("--connect-attempts", type=int,
                         default=DEFAULT_CONNECT_ATTEMPTS,
                         help="connection attempts per (re)connect, with "
                         "exponential backoff — a restarting server is "
                         f"re-reached transparently (default "
                         f"{DEFAULT_CONNECT_ATTEMPTS})")
    loadgen.add_argument("--wire", choices=["jsonl", "binary"],
                         default="jsonl",
                         help="client wire protocol (default jsonl; binary "
                         "sends struct frames behind the magic-preamble "
                         "handshake — the server negotiates per session)")
    loadgen.add_argument("--cross-shard-frac", type=float, default=0.0,
                         metavar="FRAC",
                         help="rewrite this fraction of multi-read "
                         "transactions to span shard boundaries (exercises "
                         "the cluster's scatter-gather path; needs "
                         "--shards >= 2; default 0 — workload unchanged)")
    loadgen.add_argument("--shards", type=int, default=1,
                         help="shard count of the target deployment, for "
                         "--cross-shard-frac's routing (default 1)")
    loadgen.add_argument("--view", action="append", default=[], metavar="SPEC",
                         help="register a derived view on the server before "
                         "streaming (repeatable); same SPEC syntax as "
                         "serve --view — acks are tallied in the outcome "
                         "counts as 'views_registered'")
    loadgen.add_argument("--direct", action="store_true",
                         help="smart-client mode: fetch the cluster's "
                         "topology record, rebuild the shard map locally "
                         "and stream records straight to the owning "
                         "workers; cross-shard transactions still travel "
                         "via the router (needs a sharded server)")

    bench = sub.add_parser("bench",
                           help="in-process throughput/latency benchmark")
    _add_config_args(bench)
    _add_batch_args(bench)
    bench.add_argument("--seconds", type=float, default=2.0)
    bench.add_argument("--ramp", type=float, default=0.25,
                       help="warmup seconds excluded from the measurement")
    bench.add_argument("--shards", type=int, default=1,
                       help="measure aggregate throughput at this shard "
                       "count (worker processes; default 1)")
    # Throughput defaults: a fast CPU (24 µs/install against the paper's
    # cost model) pushed well past 10k updates/s, a light foreground
    # transaction load, and in-order generations (mean age 0) so every
    # serviced update is a real install rather than a stale skip.  All
    # overridable from the command line.
    bench.set_defaults(ips=1e9, lambda_u=20000.0, lambda_t=1.0,
                       mean_age=0.0)
    return parser


def _install_stop_handlers(stop: asyncio.Event) -> None:
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except NotImplementedError:  # non-Unix event loops
            signal.signal(sig, lambda *_: stop.set())


# ----------------------------------------------------------------------
# serve
# ----------------------------------------------------------------------
async def _serve(args) -> int:
    if args.shards > 1:
        return await _serve_sharded(args)
    stop = asyncio.Event()
    _install_stop_handlers(stop)  # before the banner: see it, can signal it
    config = _build_config(args)
    manager = None
    clock = None
    if args.log_dir is not None:
        manager = DurabilityManager(
            args.log_dir, 0, fsync=args.fsync,
            snapshot_interval=args.snapshot_interval,
        )
        # Resume the predecessor's time domain so restored generation
        # timestamps stay comparable with post-restart measurements.
        clock = WallClock(start_at=manager.resume_at)
    runtime = LiveRuntime(config, args.algorithm, clock=clock)
    # Views registered before recovery see every replayed install as a
    # delta, so a warm restart comes back with the views already current.
    for spec in args.view:
        runtime.register_view(spec)
    runtime.start()
    if manager is not None:
        stats = await manager.recover(runtime)
        manager.attach(runtime)
        manager.start(runtime)
        if stats.resumed:
            print(f"repro-live: warm restart — replayed "
                  f"{stats.replayed_records} logged records in "
                  f"{stats.replay_lag_s:.3f}s", file=sys.stderr, flush=True)
    server = IngestServer(runtime, args.host, args.port,
                          batch_max=args.batch_max, flush_us=args.flush_us)
    host, port = await server.start()
    print(f"repro-live: {args.algorithm} serving on {host}:{port} "
          f"(SIGINT drains and exits)", file=sys.stderr, flush=True)

    streamer = None
    if args.metrics != "none":
        out = sys.stdout if args.metrics == "-" else args.metrics
        streamer = MetricsStreamer(runtime, out, interval=args.metrics_interval)
        streamer.start()

    if args.seconds is not None:
        asyncio.get_running_loop().call_later(args.seconds, stop.set)
    await stop.wait()

    print("repro-live: draining ...", file=sys.stderr, flush=True)
    await server.stop()
    drained = await runtime.drain(args.drain_timeout)
    if manager is not None:
        # Final snapshot *after* the drain, *before* finalize: capture the
        # settled state while the ledgers are still live.
        await manager.stop(runtime)
    if streamer is not None:
        await streamer.stop(final_emit=False)
    result = await runtime.shutdown(drain_timeout=0.0)
    print(json.dumps(asdict(result)), flush=True)
    if not drained:
        print("repro-live: drain timed out with work still queued",
              file=sys.stderr)
    return 0


async def _serve_sharded(args) -> int:
    """``serve --shards N``: worker processes behind one ingest router.

    Same contract as the single-process path — one public socket, JSONL
    metric snapshots (here the *merged* fleet view), SIGINT drains and
    prints the final merged result as one JSON line.
    """
    stop = asyncio.Event()
    _install_stop_handlers(stop)
    config = _build_config(args)
    cluster = ShardCluster(
        config, args.algorithm, shards=args.shards,
        host=args.host, port=args.port,
        batch_max=args.batch_max, flush_us=args.flush_us,
        restart_limit=args.restart_limit,
        wire="binary" if args.shm else args.wire,
        shm=args.shm,
        log_dir=args.log_dir,
        fsync=args.fsync,
        snapshot_interval=args.snapshot_interval,
        routers=args.routers,
        views=args.view,
    )
    host, port = await cluster.start()
    planes = (f", {args.routers} router planes" if args.routers > 1 else "")
    print(f"repro-live: {args.algorithm} serving on {host}:{port} across "
          f"{args.shards} shard workers (ports {cluster.ports}{planes}; "
          f"SIGINT drains and exits)", file=sys.stderr, flush=True)

    if args.fail_shard is not None:
        if not 0 <= args.fail_shard < args.shards:
            raise SystemExit(
                f"--fail-shard {args.fail_shard} out of range for "
                f"{args.shards} shards"
            )
        print(f"repro-live: fault injection armed — SIGKILL shard "
              f"{args.fail_shard} after {args.fail_after:.1f}s",
              file=sys.stderr, flush=True)
        asyncio.get_running_loop().call_later(
            args.fail_after, cluster.kill_worker, args.fail_shard
        )

    streamer = None
    if args.metrics != "none":
        out = sys.stdout if args.metrics == "-" else args.metrics
        streamer = MetricsStreamer(cluster, out, interval=args.metrics_interval)
        streamer.start()

    if args.seconds is not None:
        asyncio.get_running_loop().call_later(args.seconds, stop.set)
    await stop.wait()

    print("repro-live: draining ...", file=sys.stderr, flush=True)
    await cluster.stop_ingest()
    if streamer is not None:
        await streamer.stop(final_emit=False)
    result = await cluster.shutdown(args.drain_timeout)
    print(json.dumps(asdict(result)), flush=True)
    return 0


# ----------------------------------------------------------------------
# loadgen (TCP client)
# ----------------------------------------------------------------------
async def _loadgen(args) -> int:
    """Stream records at a server through a reconnecting wire client.

    Connection loss mid-stream (a restarting shard worker, a bounced
    server) is absorbed by :class:`~repro.live.loadgen.WireClient`:
    the next record reconnects with backoff and the stream resumes —
    records in the gap are lost like any other shed update, and the
    tally reports how many reconnects happened.
    """
    counts: dict[str, int] = {}

    def on_line(line: bytes) -> None:
        try:
            record = json.loads(line)
        except ValueError:
            return
        if record.get("kind") == "outcome":
            key = record.get("outcome", "?")
            counts[key] = counts.get(key, 0) + 1
            if record.get("fanout"):  # merged cross-shard verdict
                counts["cross_shard"] = counts.get("cross_shard", 0) + 1
        elif record.get("kind") == "error" and record.get("reason") == "shard_down":
            counts["shed_shard_down"] = counts.get("shed_shard_down", 0) + 1
        elif record.get("kind") == "view-registered":
            counts["views_registered"] = counts.get("views_registered", 0) + 1

    client_cls = DirectClient if args.direct else WireClient
    client = client_cls(
        args.host, args.port, batch_max=args.batch_max,
        flush_us=args.flush_us, attempts=args.connect_attempts,
        on_line=on_line, wire=args.wire,
    )
    await client.connect()
    if args.direct:
        print(f"repro-live loadgen: direct mode — routing over "
              f"{client.router.shards} workers (topology epoch "
              f"{client.epoch})", file=sys.stderr, flush=True)
    config = _build_config(args)
    if args.view:
        # Registrations travel in-order ahead of the stream, so every
        # subsequent install is already a delta against the new views.
        from repro.db.views import ViewSpec
        from repro.live.wire import encode_reply
        for offset, spec_text in enumerate(args.view):
            record = {
                "kind": "register_view",
                "rid": 1_000_000_000 + offset,
                "view": ViewSpec.parse(spec_text).to_record(),
            }
            if args.direct:
                await client.send(record)
            else:
                await client.send_line(encode_reply(record, args.wire))
        client.flush()
    streams = StreamFamily(config.seed)
    spreader = None
    if args.cross_shard_frac > 0.0:
        spreader = CrossShardSpreader(
            config.updates.n_low, config.updates.n_high, streams,
            frac=args.cross_shard_frac, shards=args.shards,
        )
    sent = 0
    start = time.monotonic()

    async def write_item(item) -> None:
        nonlocal sent
        try:
            await client.send(item)
        except ConnectionError:
            return  # retry budget exhausted mid-stream; drop like a shed
        sent += 1

    if args.trace is not None:
        items = load_trace(args.trace)
        for item in sorted(items, key=lambda i: i.arrival_time):
            if spreader is not None and isinstance(item, TransactionSpec):
                item = spreader.spread(item)
            delay = item.arrival_time - (time.monotonic() - start)
            if delay > 0:
                await asyncio.sleep(delay)
            await write_item(item)
            await client.backpressure()
    else:
        update_gen = UpdateStreamGenerator(config, None, streams, lambda _: None)
        txn_gen = TransactionGenerator(config, None, streams, lambda _: None)
        next_update = update_gen.next_interarrival()
        next_txn = (txn_gen.next_interarrival()
                    if config.transactions.arrival_rate > 0 else float("inf"))
        while True:
            now = time.monotonic() - start
            if now >= args.seconds:
                break
            upcoming = min(next_update, next_txn)
            if upcoming > now:
                client.flush()  # nothing due: don't park what's buffered
                await asyncio.sleep(min(upcoming - now, args.seconds - now))
                continue
            if next_update <= next_txn:
                await write_item(update_gen.draw_update(next_update))
                next_update += update_gen.next_interarrival()
            else:
                spec = txn_gen.draw_spec(next_txn)
                if spreader is not None:
                    spec = spreader.spread(spec)
                await write_item(spec)
                next_txn += txn_gen.next_interarrival()
            await client.backpressure()

    with contextlib.suppress(ConnectionError):
        await client.drain()
    # Give in-flight transaction outcomes a moment to come back.
    await asyncio.sleep(0.25)
    await client.aclose()
    elapsed = time.monotonic() - start
    reconnects = (f"; reconnects: {client.reconnects}"
                  if client.reconnects else "")
    direct = ""
    if args.direct:
        direct = (f"; direct: {client.direct_sends} direct, "
                  f"{client.routed_specs} routed, "
                  f"{client.moved_redirects} moved, "
                  f"{client.topology_refreshes} refreshes")
    print(f"repro-live loadgen: sent {sent} records in {elapsed:.2f}s "
          f"({sent / elapsed:.0f}/s); outcomes: {counts or '{}'}"
          f"{reconnects}{direct}")
    return 0


# ----------------------------------------------------------------------
# bench
# ----------------------------------------------------------------------
async def _bench(args) -> int:
    if args.shards > 1:
        return _bench_sharded(args)
    config = _build_config(args)
    runtime = LiveRuntime(config, args.algorithm)
    runtime.start()
    generator = LoadGenerator(runtime, batch_max=args.batch_max)
    generator.start()
    if args.ramp > 0:
        await asyncio.sleep(args.ramp)
        runtime.begin_measurement()
    await asyncio.sleep(args.seconds)
    generator.stop()
    result = await runtime.shutdown()

    installs_per_second = (
        result.updates_applied / result.duration if result.duration > 0 else 0.0
    )
    extras = result.extras
    print(f"algorithm:        {args.algorithm}")
    print(f"offered rate:     {config.updates.arrival_rate:.0f} updates/s")
    print(f"measured window:  {result.duration:.2f}s")
    print(f"installs/s:       {installs_per_second:.0f}")
    print(f"os drops:         {result.updates_os_dropped}")
    print(f"expired (MA):     {result.updates_expired}")
    p50 = extras.get("install_latency_p50")
    p99 = extras.get("install_latency_p99")
    print(f"install latency:  p50={_ms(p50)} p99={_ms(p99)} "
          f"worst={_ms(extras.get('install_latency_worst'))}")
    print(f"dispatch lag:     worst={_ms(extras.get('dispatch_lag_worst'))}")
    return 0


def _bench_sharded(args) -> int:
    """``bench --shards N``: aggregate throughput over worker processes."""
    config = _build_config(args)
    outcome = run_sharded_bench(
        config, args.algorithm, args.shards,
        seconds=args.seconds, ramp=args.ramp, batch_max=args.batch_max,
    )
    merged = outcome.merged
    print(f"algorithm:        {args.algorithm}")
    print(f"shards:           {outcome.shards} ({outcome.mode})")
    print(f"offered rate:     {config.updates.arrival_rate:.0f} updates/s "
          f"(split by keyspace share)")
    per_shard = ", ".join(
        f"{r.updates_applied / r.duration:.0f}"
        for r in outcome.per_shard if r.duration > 0
    )
    print(f"installs/s:       {outcome.installs_per_second:.0f} "
          f"aggregate ({per_shard} per shard)")
    print(f"os drops:         {merged.updates_os_dropped}")
    print(f"expired (MA):     {merged.updates_expired}")
    return 0


def _ms(seconds: float | None) -> str:
    return "n/a" if seconds is None else f"{seconds * 1e3:.3f}ms"


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    runner = {"serve": _serve, "loadgen": _loadgen, "bench": _bench}[args.command]
    try:
        return asyncio.run(runner(args))
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    sys.exit(main())
