"""Routing planes: the cluster's data plane, one instance per process.

A :class:`RouterPlane` is everything the cluster's public socket does to
one client session — protocol negotiation, per-shard batch routing over
:class:`~repro.live.wire.RpcChannel` upstreams, cross-shard
scatter-gather, shedding against down shards, snapshot and topology
control records — extracted into a self-contained object so it can run

* **in the parent** (``routers=1``, the founding topology): one plane
  sharing the :class:`~repro.live.cluster.ShardCluster`'s router and
  worker table, exactly the pre-extraction behavior; or
* **in its own process** (``routers=N``): N planes each bound to the
  *same* public ``(host, port)`` via ``SO_REUSEPORT``, the kernel
  load-balancing client connections across them.  The PR 6 raw-frame
  fast path is stateless per record, so planes need no coordination
  beyond the worker topology the supervisor broadcasts over each
  plane's control pipe.

Every plane keeps its own routing/shed/fan-out counters and reports them
through :meth:`RouterPlane.stats`; the cluster merges the per-plane
stats into ``extras`` next to the per-shard results (see
``merge_extras_sources`` in :mod:`repro.live.cluster`), plus one
``extras["planes"]`` row per plane with its CPU seconds — the direct
measurement of how much of the machine the routing tier burns.

The plane also serves the ``{"kind": "topology"}`` control record
(:func:`repro.db.sharding.topology_record`): the shard map a smart
client needs to skip the router hop entirely and dial workers directly
(see :class:`~repro.live.loadgen.DirectClient` and ``docs/SCALING.md``).
"""

from __future__ import annotations

import asyncio
import itertools
import logging
import os
import time
from dataclasses import replace

from repro.config import SimulationConfig
from repro.core.sharding import merge_verdicts, route_batch
from repro.db.objects import Update
from repro.db.sharding import ShardRouter, topology_record
from repro.live.runtime import LatencyTracker
from repro.live.wire import (
    DEFAULT_BATCH_MAX,
    DEFAULT_CONNECT_ATTEMPTS,
    DEFAULT_FLUSH_US,
    PROTOCOL_BINARY,
    PROTOCOL_JSONL,
    CoalescingWriter,
    RpcChannel,
    RpcDeadlineError,
    RpcError,
    WireProtocolError,
    connect_with_retry,
    encode_reply,
    iter_frame_batches,
    iter_line_batches,
    negotiate_protocol,
)
from repro.workload.codec import (
    TAG_SPEC,
    decode_lines,
    encode_frame,
    encode_lines,
    item_from_record,
    peek_spec_budget,
    peek_spec_route,
    reroute_spec_frame,
)
from repro.workload.transactions import TransactionSpec

logger = logging.getLogger(__name__)

#: Correlation-id floor for cross-shard sub-reads.  Sub-reads share the
#: worker's outcome-correlation keyspace with pass-through client seqs,
#: so their rids start far above any plausible client sequence number —
#: still comfortably inside the wire format's int64.  Rids only need to
#: be unique *per upstream connection*, and every plane opens its own
#: upstreams, so independent per-plane counters cannot collide.
_RID_BASE = 1 << 62

#: Control-pipe poll period inside a plane process.
_PIPE_POLL = 0.02

#: Bound on a remote plane's snapshot round trip through the parent.
_SNAPSHOT_PIPE_WAIT = 30.0


class ShardDownError(ConnectionError):
    """A shard worker is dead or unreachable.

    Raised by ``ShardCluster._shard_snapshot`` when a worker connection
    yields EOF, and by ``ShardCluster.snapshot`` / ``shutdown`` when
    *no* shard survives.  A single down shard never raises: its records
    are shed and accounted while the survivors keep serving.
    """


def process_cpu_seconds() -> float:
    """CPU seconds (user + system) consumed by the calling process.

    Prefers :mod:`psutil` when the host has it; otherwise the
    :func:`os.times` delta — no extra dependency either way.
    """
    try:
        import psutil  # noqa: PLC0415 - optional, never installed by us
    except ImportError:
        t = os.times()
        return t[0] + t[1]
    try:
        t = psutil.Process().cpu_times()
        return t.user + t.system
    except Exception:  # pragma: no cover - psutil edge failure
        t = os.times()
        return t[0] + t[1]


def _encode_hop_frames(routed: list) -> bytes:
    """One binary-hop payload from a routed batch.

    Raw update frames (the binary-client fast path) are forwarded as-is;
    anything materialized (JSONL-client updates, transaction specs) is
    framed here.
    """
    return b"".join(
        item if isinstance(item, bytes) else encode_frame(item)
        for item in routed
    )


async def _jsonl_record_batches(reader, leftover: bytes):
    """JSONL sessions as decoded-record batches (the frame-batch dual)."""
    async for lines in iter_line_batches(reader, initial=leftover):
        yield decode_lines(lines)


class PlaneTopology:
    """A plane-process's mutable copy of the worker topology.

    Remote planes cannot read the parent's ``WorkerState`` table, so the
    supervisor broadcasts ``("topology", epoch, workers)`` over each
    plane's pipe whenever an endpoint changes (worker death, restart on
    a fresh port, final mark-down); :meth:`apply` installs it.  Routing
    decisions read :meth:`port_of` / :meth:`status_of` at use time, so a
    broadcast takes effect on the very next record.
    """

    def __init__(
        self,
        n_low: int,
        n_high: int,
        shards: int,
        *,
        epoch: int = 0,
        workers: "list[dict] | None" = None,
    ) -> None:
        self.n_low = n_low
        self.n_high = n_high
        self.shards = shards
        self.epoch = epoch
        self.workers = [dict(entry) for entry in workers or []] or [
            {"shard": i, "host": "127.0.0.1", "port": 0, "status": "starting"}
            for i in range(shards)
        ]

    def apply(self, epoch: int, workers: "list[dict]") -> None:
        self.epoch = epoch
        self.workers = [dict(entry) for entry in workers]

    def port_of(self, shard: int) -> int:
        return self.workers[shard]["port"]

    def host_of(self, shard: int) -> str:
        return self.workers[shard].get("host", "127.0.0.1")

    def status_of(self, shard: int) -> str:
        return self.workers[shard]["status"]

    def record(self) -> dict:
        return topology_record(
            shards=self.shards,
            n_low=self.n_low,
            n_high=self.n_high,
            epoch=self.epoch,
            workers=self.workers,
        )


class RouterPlane:
    """One routing plane: client sessions in, per-shard batches out.

    Args:
        config: The global configuration (object counts for the router,
            the cost model for cross-shard deadline windows).
        shards: Worker count.
        topology: Live worker endpoints — a :class:`PlaneTopology`
            (remote plane) or the cluster's adapter over its own
            ``WorkerState`` table (in-parent plane).
        wire: Protocol of the plane→worker hop (``"binary"``/``"jsonl"``).
        batch_max / flush_us: Coalescing bounds, client and upstream side.
        rpc_grace: Extra seconds on a cross-shard gather's firm deadline.
        connect_attempts: Per-connection retry budget upstream.
        index: This plane's index (0 for the in-parent plane).
        router: Share an existing router instead of building one — the
            in-parent plane shares the cluster's so accounting lands
            where it always did.
        snapshot_cb: Async callback returning one merged fleet snapshot
            as an ``asdict`` payload (raises :class:`ShardDownError`
            when no shard answers).  The parent owns the snapshot fan-in;
            remote planes reach it over their control pipe.
        shed_cb: Optional ``(shard, count)`` hook so the parent's
            liveness table can mirror in-parent shedding immediately.
        ring_push: Optional ``(shard, routed) -> list`` hook offering a
            routed batch to the shard's shm ring; returns what still
            needs TCP.  Only the in-parent plane can have one (a ring is
            single-producer).
    """

    def __init__(
        self,
        config: SimulationConfig,
        *,
        shards: int,
        topology,
        wire: str = PROTOCOL_BINARY,
        batch_max: int = DEFAULT_BATCH_MAX,
        flush_us: float = DEFAULT_FLUSH_US,
        rpc_grace: float = 0.25,
        connect_attempts: int = DEFAULT_CONNECT_ATTEMPTS,
        index: int = 0,
        router: "ShardRouter | None" = None,
        snapshot_cb=None,
        shed_cb=None,
        ring_push=None,
    ) -> None:
        self.config = config
        self.shards = shards
        self.topology = topology
        self.wire = wire
        self.batch_max = batch_max
        self.flush_us = flush_us
        self.rpc_grace = rpc_grace
        self.connect_attempts = connect_attempts
        self.index = index
        self.router = router if router is not None else ShardRouter(
            config.updates.n_low, config.updates.n_high, shards
        )
        self.snapshot_cb = snapshot_cb
        self.shed_cb = shed_cb
        self.ring_push = ring_push
        self.records_received = 0
        self.errors = 0
        self.sessions = 0
        self.topology_requests = 0
        self.shed_shard_down = [0] * shards
        # Cross-shard scatter-gather accounting (merged into extras).
        self.cross_shard_submits = 0
        self.fanout_sub_reads = [0] * shards
        self.sub_read_misses = [0] * shards
        self.sub_read_aborts = [0] * shards
        self.sub_read_deadline_misses = [0] * shards
        self.sub_read_latency = LatencyTracker()
        # One plane-wide correlation-id counter: a sub-read's rid is
        # unique across this plane's sessions, so per-worker outcome
        # keys never collide (rids scope to the upstream connection, and
        # upstreams are never shared between planes).
        self._rid = itertools.count(1)
        self._cpu0 = process_cpu_seconds()
        self._wall0 = time.monotonic()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """This plane's counters, shaped for ``merge_extras_sources``.

        The ``"plane"`` entry is this plane's row in
        ``extras["planes"]``; ``cpu_seconds`` is the plane *process*'s
        CPU time since construction (for the in-parent plane: the parent
        process, which is almost entirely routing work).
        """
        return {
            **self.router.accounting(),
            "records_received": self.records_received,
            "protocol_errors": self.errors,
            "cross_shard_submits": self.cross_shard_submits,
            "fanout_sub_reads": list(self.fanout_sub_reads),
            "sub_read_misses": list(self.sub_read_misses),
            "sub_read_aborts": list(self.sub_read_aborts),
            "sub_read_deadline_misses": list(self.sub_read_deadline_misses),
            "sub_read_latency_p99": self.sub_read_latency.percentile(0.99),
            "shed_shard_down": list(self.shed_shard_down),
            "topology_requests": self.topology_requests,
            "plane": {
                "plane": self.index,
                "sessions": self.sessions,
                "records_received": self.records_received,
                "cpu_seconds": process_cpu_seconds() - self._cpu0,
                "wall_seconds": time.monotonic() - self._wall0,
            },
        }

    # ------------------------------------------------------------------
    # Client sessions
    # ------------------------------------------------------------------
    async def handle(self, reader, writer) -> None:
        """One client session: route record batches, relay replies back.

        The session's protocol is negotiated from its first bytes, same
        as a plain :class:`~repro.live.server.IngestServer` session; it
        is independent of the internal hop's protocol (``self.wire``) —
        each upstream :class:`RpcChannel` re-frames pushed replies into
        the client's protocol.

        A shard worker dying mid-session never tears the session down:
        its records are shed with typed error replies (see
        :meth:`_shed`) while the other shards keep answering.
        """
        self.sessions += 1
        upstreams: "dict[int, RpcChannel]" = {}
        merges: "set[asyncio.Task]" = set()
        downstream = CoalescingWriter(
            writer, batch_max=self.batch_max, flush_us=self.flush_us
        )
        protocol = PROTOCOL_JSONL
        try:
            protocol, leftover = await negotiate_protocol(reader)
            if protocol == PROTOCOL_BINARY:
                # With a binary hop, update and spec frames stay raw end
                # to end: routed by field peek, forwarded byte-identical
                # (ids patched), never materialized in the router.
                raw = self.wire == PROTOCOL_BINARY
                batches = iter_frame_batches(
                    reader, raw_updates=raw, raw_specs=raw
                )
            else:
                batches = _jsonl_record_batches(reader, leftover)
            async for records in batches:
                await self._dispatch_batch(
                    records, downstream, upstreams, protocol, merges
                )
                await downstream.backpressure()
        except WireProtocolError as exc:
            self.errors += 1
            logger.warning("wire negotiation failed: %s", exc)
        except ValueError as exc:
            # Corrupt binary frame header: no resynchronization point.
            self.errors += 1
            logger.warning("binary session corrupt: %s", exc)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            await self._close_session(upstreams, downstream, merges)

    async def _close_session(self, upstreams, downstream, merges=()) -> None:
        """Tear down one session's merge tasks, channels, and writers.

        In-flight cross-shard gathers die with their client (nobody is
        left to read the merged outcome); an upstream channel whose
        reader failed with a real exception is logged and counted in
        ``protocol_errors`` instead of being silently swallowed.
        """
        for task in list(merges):
            task.cancel()
        if merges:
            await asyncio.gather(*merges, return_exceptions=True)
        for channel in upstreams.values():
            await channel.aclose()
            if channel.failure is not None:
                self.errors += 1
                logger.warning(
                    "upstream reply channel failed: %r", channel.failure
                )
        await downstream.aclose()

    async def _dispatch_batch(
        self,
        records,
        downstream,
        upstreams,
        protocol=PROTOCOL_JSONL,
        merges=None,
    ) -> None:
        """Route one decoded wire batch, forward per (shard, batch).

        ``records`` mixes dicts (JSONL lines, JSON frames),
        already-built :class:`Update` instances or raw update/spec
        frames (binary sessions), :class:`TransactionSpec` instances,
        and ``Exception`` entries.  Updates batch per shard through
        :meth:`_forward`; every transaction goes through
        :meth:`_submit_spec` (single-owner pass-through or cross-shard
        scatter-gather), flushing the updates collected so far first so
        the transaction observes every earlier record on each shard's
        connection.  A snapshot request likewise flushes, then answers
        with the merged fleet snapshot; a topology request answers with
        the current shard map.  A malformed record gets its error reply
        and its neighbors proceed — same per-record error semantics as
        the unbatched path.
        """
        if merges is None:
            merges = set()
        items: list = []
        for record in records:
            try:
                if isinstance(record, Exception):
                    raise record
                if isinstance(record, bytes) and record[0] != TAG_SPEC:
                    items.append(record)  # raw update frame
                    continue
                if isinstance(record, Update):
                    items.append(record)
                    continue
                if isinstance(record, (TransactionSpec, bytes)):
                    if items:
                        await self._forward(
                            items, downstream, upstreams, protocol
                        )
                        items = []
                    await self._submit_spec(
                        record, downstream, upstreams, protocol, merges
                    )
                    continue
                if isinstance(record, dict) and record.get("kind") == "topology":
                    self.topology_requests += 1
                    reply = self.topology.record()
                    rid = record.get("rid")
                    if rid is not None:
                        reply = {**reply, "rid": rid}
                    downstream.write(encode_reply(reply, protocol))
                    continue
                if isinstance(record, dict) and record.get("kind") == "register_view":
                    await self._forward(items, downstream, upstreams, protocol)
                    items = []
                    await self._register_view(
                        record, downstream, upstreams, protocol
                    )
                    continue
                if isinstance(record, dict) and record.get("kind") == "snapshot":
                    await self._forward(items, downstream, upstreams, protocol)
                    items = []
                    try:
                        merged = {"kind": "snapshot"}
                        merged.update(await self.snapshot_cb())
                        downstream.write(encode_reply(merged, protocol))
                    except ShardDownError as exc:
                        self.errors += 1
                        downstream.write(
                            encode_reply(
                                {
                                    "kind": "error",
                                    "reason": "shard_down",
                                    "message": str(exc),
                                },
                                protocol,
                            )
                        )
                    # Snapshot replies are full fleet results — orders of
                    # magnitude bigger than outcome lines — so they need
                    # the same backpressure point as every other write
                    # path, or a snapshot-spamming client grows the write
                    # buffer without bound.
                    await downstream.backpressure()
                    continue
                item = item_from_record(record)
                if isinstance(item, TransactionSpec):
                    if items:
                        await self._forward(
                            items, downstream, upstreams, protocol
                        )
                        items = []
                    await self._submit_spec(
                        item, downstream, upstreams, protocol, merges
                    )
                else:
                    items.append(item)
            except (ValueError, KeyError, TypeError) as exc:
                self.errors += 1
                self.router.note_routing_error()
                self._error_reply(downstream, exc, protocol)
        await self._forward(items, downstream, upstreams, protocol)

    async def _submit_spec(
        self, item, downstream, upstreams, protocol, merges
    ) -> None:
        """Route one transaction: pass-through or cross-shard scatter.

        ``item`` is a :class:`TransactionSpec` or a raw binary
        ``TAG_SPEC`` frame (binary client over a binary hop — split by
        field peek, re-id'd by in-place patch, never materialized).

        A read-set owned by one shard forwards as-is under the client's
        own seq; the worker's outcome pushes straight back.  A read-set
        spanning shards is split per owner, each sub-read submitted
        under a fresh correlation id (:data:`_RID_BASE` + counter), and
        a merge task gathers the per-shard verdicts under one shared
        firm-deadline window (see :meth:`_gather_verdict`).  The scatter
        refuses to start against a down owner: the whole transaction is
        shed with one typed ``shard_down`` reply instead of burning the
        live shards' work on a verdict that cannot commit.
        """
        router = self.router
        self.records_received += 1
        try:
            if isinstance(item, bytes):
                klass, seq, reads = peek_spec_route(item)
                compute_time, slack = peek_spec_budget(item)
                split = (
                    router.split_reads(klass, reads)
                    if reads
                    else {router.hash_shard(seq): ()}
                )

                def make_sub(sub_id, local):
                    return reroute_spec_frame(item, sub_id, local)

            else:
                seq = item.seq
                reads = item.reads
                compute_time, slack = item.compute_time, item.slack
                split = (
                    router.split_reads(item.view_class, reads)
                    if reads
                    else {router.hash_shard(seq): ()}
                )

                def make_sub(sub_id, local):
                    return replace(item, seq=sub_id, reads=tuple(local))

        except (ValueError, IndexError) as exc:
            self.errors += 1
            router.note_routing_error()
            self._error_reply(downstream, exc, protocol)
            return
        if self.wire == PROTOCOL_BINARY:
            def encode_one(sub):
                return sub if isinstance(sub, bytes) else encode_frame(sub)
        else:
            def encode_one(sub):
                return encode_lines([sub])
        if len(split) == 1:
            shard, local = next(iter(split.items()))
            router.note_transaction_routed(shard)
            if self.topology.status_of(shard) != "up":
                self._shed(shard, 1, downstream, protocol)
                return
            try:
                channel = await self._upstream(
                    shard, downstream, upstreams, protocol
                )
                channel.post(encode_one(make_sub(seq, local)))
                await channel.backpressure()
            except (ConnectionError, OSError, asyncio.TimeoutError, TimeoutError):
                self._shed(shard, 1, downstream, protocol)
            return
        down = [s for s in split if self.topology.status_of(s) != "up"]
        if down:
            self._shed(down[0], 1, downstream, protocol)
            return
        channels = {}
        try:
            for shard in split:
                channels[shard] = await self._upstream(
                    shard, downstream, upstreams, protocol
                )
        except (ConnectionError, OSError, asyncio.TimeoutError, TimeoutError):
            self._shed(shard, 1, downstream, protocol)
            return
        self.cross_shard_submits += 1
        subs = []
        for shard, local in split.items():
            channel = channels[shard]
            rid = _RID_BASE + next(self._rid)
            channel.expect(rid)
            channel.post(encode_one(make_sub(rid, local)))
            channel.flush()
            router.note_transaction_routed(shard)
            self.fanout_sub_reads[shard] += 1
            subs.append((shard, rid, channel))
        # One shared window over the whole fan-out: the parent's own
        # firm deadline (estimate + slack against the *global* read
        # count) plus the configured wire grace.
        system = self.config.system
        timeout = (
            compute_time
            + len(reads) * (system.x_lookup / system.ips)
            + slack
            + self.rpc_grace
        )
        task = asyncio.ensure_future(
            self._gather_verdict(seq, subs, timeout, downstream, protocol)
        )
        merges.add(task)
        task.add_done_callback(merges.discard)

    async def _gather_verdict(
        self, seq, subs, timeout, downstream, protocol
    ) -> None:
        """Await every sub-read, merge the verdicts, reply to the client.

        The firm deadline is enforced across the *slowest* shard: all
        sub-reads share one deadline window, and a shard that cannot
        answer inside it — or whose channel died mid-call — scores a
        typed failure that merges as a parent miss
        (:func:`~repro.core.sharding.merge_verdicts`).  Per-shard miss /
        abort / deadline counters and observed sub-read round-trip
        latencies feed ``extras``.
        """
        loop = asyncio.get_running_loop()
        started = loop.time()
        deadline = started + timeout
        outcomes = []
        for shard, rid, channel in subs:
            remaining = max(0.0, deadline - loop.time())
            try:
                record = await channel.result(rid, timeout=remaining)
            except RpcDeadlineError:
                self.sub_read_deadline_misses[shard] += 1
                outcomes.append({
                    "outcome": "missed",
                    "read_stale": False,
                    "finish_time": None,
                    "failure": "sub_read_deadline",
                })
                continue
            except RpcError as exc:
                self.sub_read_deadline_misses[shard] += 1
                outcomes.append({
                    "outcome": "missed",
                    "read_stale": False,
                    "finish_time": None,
                    "failure": exc.reason,
                })
                continue
            self.sub_read_latency.record(loop.time() - started)
            outcome = record.get("outcome")
            if outcome == "missed":
                self.sub_read_misses[shard] += 1
            elif outcome == "aborted-stale":
                self.sub_read_aborts[shard] += 1
            outcomes.append(record)
        verdict = merge_verdicts(outcomes)
        reply = {
            "kind": "outcome",
            "seq": seq,
            "outcome": verdict["outcome"],
            "read_stale": verdict["read_stale"],
            "finish_time": verdict["finish_time"],
            "fanout": len(subs),
        }
        downstream.write(encode_reply(reply, protocol))
        await downstream.backpressure()

    async def _register_view(
        self, record, downstream, upstreams, protocol
    ) -> None:
        """Broadcast one view registration to every shard; ack once.

        A derived view over a sharded keyspace is only correct when
        every shard maintains its local slice (the merged report sums
        per-shard partial aggregates — see
        :func:`repro.db.views.merge_view_reports`), so the registration
        fans out to *all* shards and the client's single ack waits for
        the slowest one.  A down shard — or any shard rejecting the
        spec — fails the whole registration with a typed error reply: a
        view maintained on a subset of shards would merge to silently
        wrong values.  Dynamically registered views live in the worker
        processes only; a worker restart comes back without them.
        """
        client_rid = record.get("rid")
        down = [
            shard for shard in range(self.shards)
            if self.topology.status_of(shard) != "up"
        ]
        if down:
            self._shed(down[0], 1, downstream, protocol)
            return
        subs = []
        try:
            for shard in range(self.shards):
                channel = await self._upstream(
                    shard, downstream, upstreams, protocol
                )
                rid = _RID_BASE + next(self._rid)
                channel.expect(rid)
                channel.request({**record, "rid": rid})
                channel.flush()
                subs.append((shard, rid, channel))
        except (ConnectionError, OSError, asyncio.TimeoutError, TimeoutError):
            self._shed(shard, 1, downstream, protocol)
            return
        reply = {
            "kind": "view-registered",
            "name": (record.get("view") or {}).get("name"),
            "shards": len(subs),
        }
        for shard, rid, channel in subs:
            try:
                await channel.result(rid, timeout=_SNAPSHOT_PIPE_WAIT)
            except RpcError as exc:
                self.errors += 1
                reply = {
                    "kind": "error",
                    "shard": shard,
                    "message": getattr(exc, "message", str(exc)),
                }
                break
        if client_rid is not None:
            reply["rid"] = client_rid
        downstream.write(encode_reply(reply, protocol))
        await downstream.backpressure()

    async def _forward(
        self, items, downstream, upstreams, protocol=PROTOCOL_JSONL
    ) -> None:
        """Group a decoded update batch by shard; one write per shard.

        Transactions never reach this path any more (they go through
        :meth:`_submit_spec`); what remains is the fire-and-forget
        update stream.  With shm rings enabled (in-parent plane only),
        each shard's updates ride its ring as one binary blob (falling
        back to TCP when the ring is full or disabled).  Records owned
        by a shard that is not up — or whose worker dies between the
        liveness check and the write — are shed, not queued: the client
        gets one ``shard_down`` error reply per record and the session
        keeps flowing.
        """
        if not items:
            return
        def on_error(_item, exc):
            self.errors += 1
            self._error_reply(downstream, exc, protocol)
        by_shard = route_batch(self.router, items, on_error=on_error)
        encode_batch = (
            _encode_hop_frames if self.wire == PROTOCOL_BINARY else encode_lines
        )
        for shard, routed in by_shard.items():
            self.records_received += len(routed)
            if self.topology.status_of(shard) != "up":
                self._shed(shard, len(routed), downstream, protocol)
                continue
            if self.ring_push is not None:
                routed = self.ring_push(shard, routed)
                if not routed:
                    continue
            try:
                channel = await self._upstream(
                    shard, downstream, upstreams, protocol
                )
                channel.post(encode_batch(routed), len(routed))
                await channel.backpressure()
            except (ConnectionError, OSError, asyncio.TimeoutError, TimeoutError):
                self._shed(shard, len(routed), downstream, protocol)

    def _shed(self, shard: int, count: int, downstream, protocol) -> None:
        """Account and reply for records dropped on a down shard.

        The cluster analogue of the paper's OSmax drop: the records are
        lost by design, the loss is *counted* (per shard per plane,
        summed into ``extras["shed_shard_down"]``), and the sender is
        told with a typed outcome instead of a killed session.
        """
        self.shed_shard_down[shard] += count
        if self.shed_cb is not None:
            self.shed_cb(shard, count)
        reply = encode_reply(
            {"kind": "error", "reason": "shard_down", "shard": shard},
            protocol,
        )
        for _ in range(count):
            downstream.write(reply)

    @staticmethod
    def _error_reply(
        downstream: CoalescingWriter, exc: Exception, protocol
    ) -> None:
        downstream.write(
            encode_reply({"kind": "error", "message": str(exc)}, protocol)
        )

    async def _upstream(
        self, shard: int, downstream, upstreams, protocol
    ) -> RpcChannel:
        """This client's RPC channel to one shard, opened on first use.

        The channel speaks ``self.wire`` (a binary hop opens with the
        preamble); worker replies that match a pending cross-shard
        sub-read resolve its future, and everything else — pass-through
        outcomes, worker error frames — pushes straight back to the
        client, re-encoded into the session's protocol.  A cached
        channel that is closing belongs to a dead (or restarted) worker
        incarnation; it is discarded (its failure, if any, counted) and
        reopened against the worker's *current* port —
        :func:`~repro.live.wire.connect_with_retry` re-resolves the port
        every attempt, so a restart mid-reconnect still lands.
        """
        channel = upstreams.get(shard)
        if channel is not None:
            if not channel.closing:
                return channel
            del upstreams[shard]
            await channel.aclose()
            if channel.failure is not None:
                self.errors += 1
                logger.warning(
                    "upstream reply channel failed: %r", channel.failure
                )
        up_reader, up_writer = await connect_with_retry(
            self.topology.host_of(shard),
            lambda: self.topology.port_of(shard),
            attempts=self.connect_attempts,
        )

        def push_reply(record, _down=downstream, _proto=protocol):
            _down.write(encode_reply(record, _proto))

        channel = RpcChannel(
            up_reader,
            up_writer,
            protocol=self.wire,
            batch_max=self.batch_max,
            flush_us=self.flush_us,
            on_push=push_reply,
        )
        upstreams[shard] = channel
        return channel


# ----------------------------------------------------------------------
# Plane processes (routers >= 2)
# ----------------------------------------------------------------------
def _ignore_signals() -> None:
    import signal

    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_IGN)


def _router_plane_main(
    conn, config, host, port, shards, wire, batch_max, flush_us,
    rpc_grace, connect_attempts, index, epoch, workers,
):
    """Entry point of one routing-plane process (spawn context)."""
    _ignore_signals()
    asyncio.run(
        _router_plane_async(
            conn, config, host, port, shards, wire, batch_max, flush_us,
            rpc_grace, connect_attempts, index, epoch, workers,
        )
    )


async def _router_plane_async(
    conn, config, host, port, shards, wire, batch_max, flush_us,
    rpc_grace, connect_attempts, index, epoch, workers,
):
    """One plane process: serve the shared public port, obey the pipe.

    The pipe protocol (parent → plane) is tokened request/reply:

    * ``("topology", epoch, workers)`` — install a new shard map.
    * ``("stats", token)`` → ``("stats", token, stats)``.
    * ``("stop_ingest", token)`` → close the listening socket →
      ``("ingest_closed", token)``.
    * ``("snapshot_res", token, ok, payload)`` — the parent's answer to
      this plane's ``("snapshot_req", token)`` (a client asked this
      plane for a fleet snapshot; only the parent can fan it in).
    * ``("stop", token)`` → ``("result", token, stats)``, then exit.
    """
    topology = PlaneTopology(
        config.updates.n_low, config.updates.n_high, shards,
        epoch=epoch, workers=workers,
    )
    snapshot_waiters: "dict[int, asyncio.Future]" = {}
    tokens = itertools.count(1)

    async def snapshot_cb() -> dict:
        token = next(tokens)
        waiter = asyncio.get_running_loop().create_future()
        snapshot_waiters[token] = waiter
        conn.send(("snapshot_req", token))
        try:
            ok, payload = await asyncio.wait_for(waiter, _SNAPSHOT_PIPE_WAIT)
        finally:
            snapshot_waiters.pop(token, None)
        if not ok:
            raise ShardDownError(str(payload))
        return payload

    plane = RouterPlane(
        config,
        shards=shards,
        topology=topology,
        wire=wire,
        batch_max=batch_max,
        flush_us=flush_us,
        rpc_grace=rpc_grace,
        connect_attempts=connect_attempts,
        index=index,
        snapshot_cb=snapshot_cb,
    )
    server = await asyncio.start_server(
        plane.handle, host, port, reuse_port=True
    )
    conn.send(("ready", index))
    stop_token = None
    while stop_token is None:
        while not conn.poll():
            await asyncio.sleep(_PIPE_POLL)
        message = conn.recv()
        kind = message[0]
        if kind == "topology":
            topology.apply(message[1], message[2])
        elif kind == "stats":
            conn.send(("stats", message[1], plane.stats()))
        elif kind == "stop_ingest":
            if server is not None:
                server.close()
                try:
                    await asyncio.wait_for(server.wait_closed(), 2.0)
                except asyncio.TimeoutError:  # pragma: no cover - slow close
                    pass
                server = None
            conn.send(("ingest_closed", message[1]))
        elif kind == "snapshot_res":
            waiter = snapshot_waiters.pop(message[1], None)
            if waiter is not None and not waiter.done():
                waiter.set_result((message[2], message[3]))
        elif kind == "stop":
            stop_token = message[1]
    if server is not None:
        server.close()
    conn.send(("result", stop_token, plane.stats()))
