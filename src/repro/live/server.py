"""Network ingest for the live runtime: JSON lines over TCP.

The wire format is exactly the trace JSONL format
(:mod:`repro.workload.trace`), one record per line:

* ``{"kind": "update", ...}`` — delivered to :meth:`LiveRuntime.ingest`.
  Fire-and-forget, like the paper's stream: a dropped update is accounted
  (``OSmax``) but never NACKed to the sender.
* ``{"kind": "transaction", ...}`` — submitted to the scheduler.  When the
  controller finishes it, the server writes back
  ``{"kind": "outcome", "seq": ..., "outcome": "committed" | "missed" |
  "aborted-stale" | "rejected", "read_stale": ...}``.
* ``{"kind": "snapshot"}`` — replies with one full metrics snapshot line
  (the same record :class:`~repro.live.observe.MetricsStreamer` emits).

Malformed lines get an ``{"kind": "error", ...}`` reply and the connection
stays up; a client that disconnects mid-flight simply stops receiving
outcomes (the transactions it submitted still run to completion).

The server reads and writes in *batches* (see :mod:`repro.live.wire`):
every complete line buffered on the socket is decoded with one batched
``json.loads`` per wakeup, consecutive updates are delivered through
:meth:`LiveRuntime.ingest_batch`, and replies coalesce through a
:class:`~repro.live.wire.CoalescingWriter`.  A batch is just N
newline-delimited records in one write, so per-record clients interoperate
unchanged in both directions.  All records in one coalesced batch share a
single delivery instant (``clock.now`` sampled once per batch) — the
batch *is* the arrival burst.
"""

from __future__ import annotations

import asyncio
import json
import logging
from dataclasses import asdict, replace

from repro.live.runtime import LiveRuntime, TransactionHandle
from repro.live.wire import (
    DEFAULT_BATCH_MAX,
    DEFAULT_FLUSH_US,
    CoalescingWriter,
    iter_line_batches,
)
from repro.workload.codec import decode_lines, item_from_record
from repro.db.objects import Update

logger = logging.getLogger(__name__)


class IngestServer:
    """TCP front door for a :class:`LiveRuntime`.

    Args:
        runtime: The runtime to feed.
        host: Bind address.
        port: Bind port; 0 picks a free one (read it from ``self.port``
            after :meth:`start`).
        batch_max: Records per coalesced reply write (``1`` = per-record
            replies, the pre-batching wire behavior).
        flush_us: Reply flush deadline in microseconds for partially
            filled batches.
    """

    def __init__(
        self,
        runtime: LiveRuntime,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        batch_max: int = DEFAULT_BATCH_MAX,
        flush_us: float = DEFAULT_FLUSH_US,
    ) -> None:
        self.runtime = runtime
        self.host = host
        self.port = port
        self.batch_max = batch_max
        self.flush_us = flush_us
        self.connections = 0
        self.records_received = 0
        self.errors = 0
        self._server: asyncio.AbstractServer | None = None
        self._outcome_tasks: set[asyncio.Task] = set()

    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        if self._server is not None:
            raise RuntimeError("server is already running")
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def stop(self) -> None:
        """Stop accepting connections and cancel pending outcome writers."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._outcome_tasks):
            task.cancel()
        if self._outcome_tasks:
            await asyncio.gather(*self._outcome_tasks, return_exceptions=True)
        self._outcome_tasks.clear()

    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections += 1
        replies = CoalescingWriter(
            writer, batch_max=self.batch_max, flush_us=self.flush_us
        )
        try:
            async for lines in iter_line_batches(reader):
                self._dispatch_batch(lines, replies)
                # One backpressure point per read batch: ingestion never
                # outruns a reply reader that has stopped consuming.
                await replies.backpressure()
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            await replies.aclose()

    def _dispatch_batch(self, lines: "list[bytes]", replies: CoalescingWriter) -> None:
        """Decode one wire batch and deliver it in order.

        Consecutive updates within the batch collapse into one
        :meth:`LiveRuntime.ingest_batch` call; a transaction or snapshot
        record flushes the pending updates first, so every record observes
        exactly the runtime state the wire order implies.
        """
        records = decode_lines(lines)
        runtime = self.runtime
        # The whole batch arrived in one socket read: it shares one
        # delivery instant, exactly like a burst in the paper's stream.
        now = runtime.clock.now
        updates: list[Update] = []
        for record in records:
            try:
                if isinstance(record, Exception):
                    raise record
                kind = record.get("kind") if isinstance(record, dict) else None
                if kind == "snapshot":
                    if updates:
                        runtime.ingest_batch(updates)
                        updates.clear()
                    reply = {"kind": "snapshot"}
                    reply.update(asdict(runtime.snapshot()))
                    self._reply(replies, reply)
                    continue
                item = item_from_record(record)
            except (ValueError, KeyError, TypeError) as exc:
                self.errors += 1
                self._reply(replies, {"kind": "error", "message": str(exc)})
                continue
            self.records_received += 1
            if isinstance(item, Update):
                # Live arrivals are stamped at delivery time: the wire
                # record's arrival_time is in the *sender's* clock domain,
                # and deadlines / staleness are measured against this
                # runtime's clock.
                delta = now - item.arrival_time
                if delta > 0:  # shift, preserving the drawn network age
                    item.arrival_time = now
                    item.generation_time += delta
                updates.append(item)
            else:
                if updates:
                    runtime.ingest_batch(updates)
                    updates.clear()
                handle = runtime.submit(replace(item, arrival_time=now))
                task = asyncio.ensure_future(self._write_outcome(handle, replies))
                self._outcome_tasks.add(task)
                task.add_done_callback(self._retire_outcome_task)
        if updates:
            runtime.ingest_batch(updates)

    def _retire_outcome_task(self, task: asyncio.Task) -> None:
        """Drop a finished outcome writer; surface a real failure.

        A cancelled writer is normal shutdown; anything else means an
        outcome could not reach its client — counted in ``errors`` and
        logged instead of dying as an unretrieved task exception.
        """
        self._outcome_tasks.discard(task)
        if task.cancelled():
            return
        exc = task.exception()
        if exc is not None:
            self.errors += 1
            logger.warning("outcome writer failed: %r", exc)

    async def _write_outcome(
        self, handle: TransactionHandle, replies: CoalescingWriter
    ) -> None:
        outcome = await handle.wait()
        self._reply(
            replies,
            {
                "kind": "outcome",
                "seq": handle.spec.seq,
                "outcome": outcome,
                "read_stale": handle.read_stale,
                "finish_time": handle.finish_time,
            },
        )

    @staticmethod
    def _reply(replies: CoalescingWriter, record: dict) -> None:
        replies.write(json.dumps(record).encode("utf-8") + b"\n")
