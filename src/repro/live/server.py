"""Network ingest for the live runtime: JSON lines over TCP.

The wire format is exactly the trace JSONL format
(:mod:`repro.workload.trace`), one record per line:

* ``{"kind": "update", ...}`` — delivered to :meth:`LiveRuntime.ingest`.
  Fire-and-forget, like the paper's stream: a dropped update is accounted
  (``OSmax``) but never NACKed to the sender.
* ``{"kind": "transaction", ...}`` — submitted to the scheduler.  When the
  controller finishes it, the server writes back
  ``{"kind": "outcome", "seq": ..., "outcome": "committed" | "missed" |
  "aborted-stale" | "rejected", "read_stale": ...}``.
* ``{"kind": "snapshot"}`` — replies with one full metrics snapshot line
  (the same record :class:`~repro.live.observe.MetricsStreamer` emits).

Malformed lines get an ``{"kind": "error", ...}`` reply and the connection
stays up; a client that disconnects mid-flight simply stops receiving
outcomes (the transactions it submitted still run to completion).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import asdict, replace

from repro.live.runtime import LiveRuntime, TransactionHandle
from repro.workload.trace import item_from_dict
from repro.db.objects import Update


class IngestServer:
    """TCP front door for a :class:`LiveRuntime`.

    Args:
        runtime: The runtime to feed.
        host: Bind address.
        port: Bind port; 0 picks a free one (read it from ``self.port``
            after :meth:`start`).
    """

    def __init__(
        self, runtime: LiveRuntime, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.runtime = runtime
        self.host = host
        self.port = port
        self.connections = 0
        self.records_received = 0
        self.errors = 0
        self._server: asyncio.AbstractServer | None = None
        self._outcome_tasks: set[asyncio.Task] = set()

    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        if self._server is not None:
            raise RuntimeError("server is already running")
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def stop(self) -> None:
        """Stop accepting connections and cancel pending outcome writers."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._outcome_tasks):
            task.cancel()
        if self._outcome_tasks:
            await asyncio.gather(*self._outcome_tasks, return_exceptions=True)
        self._outcome_tasks.clear()

    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections += 1
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                await self._dispatch_line(line, writer)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch_line(self, line: bytes, writer: asyncio.StreamWriter) -> None:
        try:
            record = json.loads(line)
            kind = record.get("kind")
            if kind == "snapshot":
                record = {"kind": "snapshot"}
                record.update(asdict(self.runtime.snapshot()))
                await self._reply(writer, record)
                return
            item = item_from_dict(record)
        except (ValueError, KeyError, TypeError) as exc:
            self.errors += 1
            await self._reply(writer, {"kind": "error", "message": str(exc)})
            return
        self.records_received += 1
        # Live arrivals are stamped at delivery time: the wire record's
        # arrival_time is in the *sender's* clock domain, and deadlines /
        # staleness are measured against this runtime's clock.
        now = self.runtime.clock.now
        if isinstance(item, Update):
            delta = now - item.arrival_time
            if delta > 0:  # shift, preserving the update's drawn network age
                item.arrival_time = now
                item.generation_time += delta
            self.runtime.ingest(item)
        else:
            handle = self.runtime.submit(replace(item, arrival_time=now))
            task = asyncio.ensure_future(self._write_outcome(handle, writer))
            self._outcome_tasks.add(task)
            task.add_done_callback(self._outcome_tasks.discard)

    async def _write_outcome(
        self, handle: TransactionHandle, writer: asyncio.StreamWriter
    ) -> None:
        outcome = await handle.wait()
        try:
            await self._reply(
                writer,
                {
                    "kind": "outcome",
                    "seq": handle.spec.seq,
                    "outcome": outcome,
                    "read_stale": handle.read_stale,
                    "finish_time": handle.finish_time,
                },
            )
        except (ConnectionResetError, BrokenPipeError):
            pass

    @staticmethod
    async def _reply(writer: asyncio.StreamWriter, record: dict) -> None:
        writer.write(json.dumps(record).encode("utf-8") + b"\n")
        await writer.drain()
