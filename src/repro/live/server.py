"""Network ingest for the live runtime: JSONL or binary frames over TCP.

The founding wire format is exactly the trace JSONL format
(:mod:`repro.workload.trace`), one record per line:

* ``{"kind": "update", ...}`` — delivered to :meth:`LiveRuntime.ingest`.
  Fire-and-forget, like the paper's stream: a dropped update is accounted
  (``OSmax``) but never NACKed to the sender.
* ``{"kind": "transaction", ...}`` — submitted to the scheduler.  When the
  controller finishes it, the server writes back
  ``{"kind": "outcome", "seq": ..., "outcome": "committed" | "missed" |
  "aborted-stale" | "rejected", "read_stale": ...}``.
* ``{"kind": "snapshot"}`` — replies with one full metrics snapshot line
  (the same record :class:`~repro.live.observe.MetricsStreamer` emits).

Every reply is a valid :class:`~repro.live.wire.RpcChannel` frame: an
outcome correlates by ``seq``, and a snapshot or error reply echoes the
request's ``rid`` field when the client sent one, so a caller multiplexing
requests over one session can match replies without ordering assumptions.

Malformed lines get an ``{"kind": "error", ...}`` reply and the connection
stays up; a client that disconnects mid-flight simply stops receiving
outcomes (the transactions it submitted still run to completion).

The server reads and writes in *batches* (see :mod:`repro.live.wire`):
every complete line buffered on the socket is decoded with one batched
``json.loads`` per wakeup, consecutive updates are delivered through
:meth:`LiveRuntime.ingest_batch`, and replies coalesce through a
:class:`~repro.live.wire.CoalescingWriter`.  A batch is just N
newline-delimited records in one write, so per-record clients interoperate
unchanged in both directions.  All records in one coalesced batch share a
single delivery instant (``clock.now`` sampled once per batch) — the
batch *is* the arrival burst.

Each session additionally **negotiates its protocol** from its first
bytes (:func:`~repro.live.wire.negotiate_protocol`): a session that opens
with the :data:`~repro.workload.codec.WIRE_PREAMBLE` magic speaks the
length-prefixed binary frame format of
:class:`~repro.workload.codec.BinaryCodec` instead of JSONL — same
records, same semantics, same reply kinds (replies travel as JSON frame
bodies), minus the per-record JSON tax.  JSONL and binary sessions coexist
behind one listening socket.

**Smart clients** (see ``docs/SCALING.md``) add three control records:

* ``{"kind": "topology"}`` — replies with the cluster's shard map
  (:func:`~repro.db.sharding.topology_record`): everything a client
  needs to rebuild the routing function and dial workers directly.  A
  standalone server answers a degenerate one-shard map for itself.
* ``{"kind": "hello", "mode": "direct", "epoch": E}`` — declares this
  session a *direct* session: the client routed its own records and
  sends **global** object ids, which the worker translates to its dense
  local ids on ownership-checked acceptance.
* ``{"kind": "moved", ...}`` (server → client) — a direct record this
  shard does not own (stale map after a restart/reshard) is dropped and
  redirected: the reply names the owning shard, the current epoch, and
  embeds a fresh topology record so the client refreshes without an
  extra round trip.  An epoch change is also announced once per session
  as an advisory ``moved`` (``reason="stale_epoch"``) ahead of the next
  batch's records.
"""

from __future__ import annotations

import asyncio
import logging
from dataclasses import asdict, replace

from repro.db.sharding import topology_record
from repro.live.runtime import LiveRuntime
from repro.live.wire import (
    DEFAULT_BATCH_MAX,
    DEFAULT_FLUSH_US,
    PROTOCOL_BINARY,
    PROTOCOL_JSONL,
    CoalescingWriter,
    WireProtocolError,
    encode_reply,
    iter_frame_batches,
    iter_line_batches,
    negotiate_protocol,
)
from repro.workload.codec import decode_lines, item_from_record
from repro.db.objects import Update
from repro.workload.transactions import TransactionSpec

logger = logging.getLogger(__name__)


class ClusterView:
    """One worker's live view of the cluster topology.

    The supervisor broadcasts ``("topology", epoch, workers)`` over each
    worker's control pipe whenever an endpoint changes; :meth:`apply`
    installs it.  The worker uses the view to answer smart clients'
    ``topology`` requests, to ownership-check direct records against the
    shared (deterministic) router, and to stamp ``moved`` redirects with
    the current epoch.
    """

    def __init__(
        self,
        router,
        index: int,
        *,
        host: str = "127.0.0.1",
        epoch: int = 0,
        workers: "list[dict] | None" = None,
    ) -> None:
        self.router = router
        self.index = index
        self.host = host
        self.epoch = epoch
        self.workers = [dict(entry) for entry in workers or []]

    def apply(self, epoch: int, workers: "list[dict]") -> None:
        self.epoch = epoch
        self.workers = [dict(entry) for entry in workers]

    def record(self) -> dict:
        return topology_record(
            shards=self.router.shards,
            n_low=self.router.n_low,
            n_high=self.router.n_high,
            epoch=self.epoch,
            workers=self.workers,
        )


class _SessionState:
    """Per-connection ingest state (direct-mode flag and last-seen epoch)."""

    __slots__ = ("direct", "epoch")

    def __init__(self) -> None:
        self.direct = False
        self.epoch = -1


class IngestServer:
    """TCP front door for a :class:`LiveRuntime`.

    Args:
        runtime: The runtime to feed.
        host: Bind address.
        port: Bind port; 0 picks a free one (read it from ``self.port``
            after :meth:`start`).
        batch_max: Records per coalesced reply write (``1`` = per-record
            replies, the pre-batching wire behavior).
        flush_us: Reply flush deadline in microseconds for partially
            filled batches.
        cluster_view: This worker's :class:`ClusterView` when it serves
            one shard of a cluster (enables direct sessions with
            ownership checks and ``moved`` redirects); ``None`` for a
            standalone server, which answers a degenerate one-shard
            topology and accepts direct sessions trivially (global and
            local ids coincide at ``shards=1``).
    """

    def __init__(
        self,
        runtime: LiveRuntime,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        batch_max: int = DEFAULT_BATCH_MAX,
        flush_us: float = DEFAULT_FLUSH_US,
        cluster_view: "ClusterView | None" = None,
    ) -> None:
        self.runtime = runtime
        self.host = host
        self.port = port
        self.batch_max = batch_max
        self.flush_us = flush_us
        self.cluster_view = cluster_view
        self.connections = 0
        self.records_received = 0
        self.errors = 0
        # Smart-client accounting (merged into cluster extras).
        self.topology_requests = 0
        self.hello_records = 0
        self.direct_records = 0
        self.moved_replies = 0
        self.stale_epoch_redirects = 0
        self._server: asyncio.AbstractServer | None = None

    def direct_accounting(self) -> "dict | None":
        """Smart-client counters, or ``None`` when no client used them."""
        counters = {
            "topology_requests": self.topology_requests,
            "hello_records": self.hello_records,
            "direct_records": self.direct_records,
            "moved_replies": self.moved_replies,
            "stale_epoch_redirects": self.stale_epoch_redirects,
        }
        if not any(counters.values()):
            return None
        return counters

    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        if self._server is not None:
            raise RuntimeError("server is already running")
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def stop(self) -> None:
        """Stop accepting connections.

        In-flight transactions run to completion; their outcome
        callbacks write into (possibly already closed) session writers,
        which drop the reply exactly as the old task-per-outcome path
        did.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections += 1
        session = _SessionState()
        replies = CoalescingWriter(
            writer, batch_max=self.batch_max, flush_us=self.flush_us
        )
        try:
            protocol, leftover = await negotiate_protocol(reader)
            if protocol == PROTOCOL_BINARY:
                batches = iter_frame_batches(reader)
            else:
                batches = self._jsonl_record_batches(reader, leftover)
            async for records in batches:
                self._dispatch_batch(records, replies, protocol, session)
                # One backpressure point per read batch: ingestion never
                # outruns a reply reader that has stopped consuming.
                await replies.backpressure()
        except WireProtocolError as exc:
            self.errors += 1
            logger.warning("wire negotiation failed: %s", exc)
        except ValueError as exc:
            # A corrupt binary frame header: past it there is no
            # resynchronization point, so the one session is closed.
            self.errors += 1
            logger.warning("binary session corrupt: %s", exc)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            await replies.aclose()

    @staticmethod
    async def _jsonl_record_batches(
        reader: asyncio.StreamReader, leftover: bytes
    ):
        """JSONL sessions as decoded-record batches (the frame-batch dual)."""
        async for lines in iter_line_batches(reader, initial=leftover):
            yield decode_lines(lines)

    def _dispatch_batch(
        self,
        records: list,
        replies: CoalescingWriter,
        protocol: str = PROTOCOL_JSONL,
        session: "_SessionState | None" = None,
    ) -> None:
        """Deliver one decoded wire batch in order.

        ``records`` mixes dicts (JSONL lines, JSON frames), already-built
        :class:`Update` / :class:`TransactionSpec` instances (binary
        frames), and ``Exception`` entries for malformed records.
        Consecutive updates within the batch collapse into one
        :meth:`LiveRuntime.ingest_batch` call; a transaction or snapshot
        record flushes the pending updates first, so every record observes
        exactly the runtime state the wire order implies.

        On a *direct* session (``session.direct``) against a cluster
        worker, every record is ownership-checked first: a record this
        shard does not own is dropped with a ``moved`` redirect, an
        owned record has its global object ids translated to this
        shard's dense local ids before delivery.
        """
        runtime = self.runtime
        view = self.cluster_view
        # A direct client's shard map went stale (worker restart bumped
        # the epoch): announce it once, ahead of this batch's records,
        # so the client refreshes before burning sends on redirects.
        if (
            session is not None and session.direct and view is not None
            and session.epoch != view.epoch
        ):
            self._stale_advisory(session, replies, protocol)
        # The whole batch arrived in one socket read: it shares one
        # delivery instant, exactly like a burst in the paper's stream.
        now = runtime.clock.now
        updates: list[Update] = []

        def on_outcome(handle) -> None:
            # Fires synchronously when the controller (or the reject
            # path) lands the outcome — the RPC reply for one submitted
            # transaction, correlated by its seq.
            self._reply(replies, {
                "kind": "outcome",
                "seq": handle.spec.seq,
                "outcome": handle.outcome,
                "read_stale": handle.read_stale,
                "finish_time": handle.finish_time,
            }, protocol)

        for record in records:
            rid = None
            try:
                if isinstance(record, Exception):
                    raise record
                if isinstance(record, (Update, TransactionSpec)):
                    item = record
                else:
                    if isinstance(record, dict):
                        kind = record.get("kind")
                        rid = record.get("rid")
                    else:
                        kind = None
                    if kind == "snapshot":
                        if updates:
                            runtime.ingest_batch(updates)
                            updates.clear()
                        reply = {"kind": "snapshot"}
                        if rid is not None:
                            reply["rid"] = rid
                        reply.update(asdict(runtime.snapshot()))
                        direct = self.direct_accounting()
                        if direct is not None:
                            # Ship the smart-client counters with every
                            # snapshot so the cluster merge can fold them
                            # in next to the planes' routing counters.
                            extras = dict(reply.get("extras") or {})
                            extras["direct"] = direct
                            reply["extras"] = extras
                        self._reply(replies, reply, protocol)
                        continue
                    if kind == "topology":
                        self.topology_requests += 1
                        reply = self._topology_record()
                        if rid is not None:
                            reply = {**reply, "rid": rid}
                        self._reply(replies, reply, protocol)
                        continue
                    if kind == "register_view":
                        # Flush pending updates first so the new view's
                        # initial materialization sees every install the
                        # wire order implies.
                        if updates:
                            runtime.ingest_batch(updates)
                            updates.clear()
                        runtime.register_view(dict(record.get("view") or {}))
                        reply = {
                            "kind": "view-registered",
                            "name": record.get("view", {}).get("name"),
                        }
                        if rid is not None:
                            reply["rid"] = rid
                        self._reply(replies, reply, protocol)
                        continue
                    if kind == "hello":
                        self.hello_records += 1
                        if record.get("mode") == "direct" and session is not None:
                            session.direct = True
                            session.epoch = int(record.get("epoch", -1))
                        reply = {
                            "kind": "hello",
                            "shard": view.index if view is not None else 0,
                            "epoch": view.epoch if view is not None else 0,
                        }
                        if rid is not None:
                            reply["rid"] = rid
                        self._reply(replies, reply, protocol)
                        if (
                            session is not None and session.direct
                            and view is not None
                            and session.epoch != view.epoch
                        ):
                            # The hello itself announced a stale map —
                            # advise now, not at the *next* batch, so a
                            # hello+records burst gets its refresh ahead
                            # of the records that follow it here.
                            self._stale_advisory(session, replies, protocol)
                        continue
                    item = item_from_record(record)
            except (ValueError, KeyError, TypeError) as exc:
                self.errors += 1
                error = {"kind": "error", "message": str(exc)}
                if rid is not None:
                    error["rid"] = rid
                self._reply(replies, error, protocol)
                continue
            if session is not None and session.direct and view is not None:
                item = self._localize_direct(item, replies, protocol)
                if item is None:
                    continue
                self.direct_records += 1
            self.records_received += 1
            if isinstance(item, Update):
                # Live arrivals are stamped at delivery time: the wire
                # record's arrival_time is in the *sender's* clock domain,
                # and deadlines / staleness are measured against this
                # runtime's clock.
                delta = now - item.arrival_time
                if delta > 0:  # shift, preserving the drawn network age
                    item.arrival_time = now
                    item.generation_time += delta
                updates.append(item)
            else:
                if updates:
                    runtime.ingest_batch(updates)
                    updates.clear()
                handle = runtime.submit(replace(item, arrival_time=now))
                handle.add_done_callback(on_outcome)
        if updates:
            runtime.ingest_batch(updates)

    def _stale_advisory(self, session, replies, protocol) -> None:
        """Tell a direct session its shard map is stale — once per epoch
        change, with the fresh topology embedded for a free refresh."""
        view = self.cluster_view
        self.stale_epoch_redirects += 1
        self._reply(replies, {
            "kind": "moved",
            "reason": "stale_epoch",
            "shard": view.index,
            "epoch": view.epoch,
            "topology": view.record(),
        }, protocol)
        session.epoch = view.epoch

    def _topology_record(self) -> dict:
        """The topology record this server serves to smart clients.

        A cluster worker serves the supervisor-broadcast fleet map; a
        standalone server serves a degenerate one-shard map naming
        itself (at ``shards=1`` the dense local ids coincide with the
        global ids, so direct routing degenerates to plain sends).
        """
        view = self.cluster_view
        if view is not None:
            return view.record()
        config = self.runtime.config
        return topology_record(
            shards=1,
            n_low=config.updates.n_low,
            n_high=config.updates.n_high,
            epoch=0,
            workers=[{
                "shard": 0,
                "host": self.host,
                "port": self.port,
                "status": "up",
            }],
        )

    def _localize_direct(self, item, replies, protocol):
        """Ownership-check one direct record; translate ids or redirect.

        Returns the shard-local item to deliver, or ``None`` when the
        record was dropped with a ``moved`` reply: this shard does not
        own it (stale client map), or the spec's read-set spans shards
        (direct clients must send those via a router plane).
        """
        view = self.cluster_view
        router = view.router
        if isinstance(item, Update):
            owner = router.shard_of(item.klass, item.object_id)
            if owner != view.index:
                self._moved(replies, protocol, owner=owner)
                return None
            item.object_id = router.local_id(item.klass, item.object_id)
            return item
        if item.reads:
            owners = {
                router.shard_of(item.view_class, gid) for gid in item.reads
            }
            if owners != {view.index}:
                foreign = next(iter(owners - {view.index}))
                self._moved(
                    replies, protocol, owner=foreign, seq=item.seq,
                    reason="cross_shard" if len(owners) > 1 else "misrouted",
                )
                return None
            local = tuple(
                router.local_id(item.view_class, gid) for gid in item.reads
            )
            return replace(item, reads=local)
        owner = router.hash_shard(item.seq)
        if owner != view.index:
            self._moved(replies, protocol, owner=owner, seq=item.seq)
            return None
        return item

    def _moved(
        self, replies, protocol, *, owner, seq=None, reason="misrouted"
    ) -> None:
        """Drop one direct record with a typed redirect.

        The reply names the owning shard and the current epoch, and
        embeds a fresh topology record so the client can refresh its map
        (and resend) without an extra round trip.
        """
        view = self.cluster_view
        self.moved_replies += 1
        reply = {
            "kind": "moved",
            "reason": reason,
            "shard": owner,
            "epoch": view.epoch,
            "topology": view.record(),
        }
        if seq is not None:
            reply["seq"] = seq
        self._reply(replies, reply, protocol)

    @staticmethod
    def _reply(
        replies: CoalescingWriter,
        record: dict,
        protocol: str = PROTOCOL_JSONL,
    ) -> None:
        replies.write(encode_reply(record, protocol))
