"""Network ingest for the live runtime: JSONL or binary frames over TCP.

The founding wire format is exactly the trace JSONL format
(:mod:`repro.workload.trace`), one record per line:

* ``{"kind": "update", ...}`` — delivered to :meth:`LiveRuntime.ingest`.
  Fire-and-forget, like the paper's stream: a dropped update is accounted
  (``OSmax``) but never NACKed to the sender.
* ``{"kind": "transaction", ...}`` — submitted to the scheduler.  When the
  controller finishes it, the server writes back
  ``{"kind": "outcome", "seq": ..., "outcome": "committed" | "missed" |
  "aborted-stale" | "rejected", "read_stale": ...}``.
* ``{"kind": "snapshot"}`` — replies with one full metrics snapshot line
  (the same record :class:`~repro.live.observe.MetricsStreamer` emits).

Every reply is a valid :class:`~repro.live.wire.RpcChannel` frame: an
outcome correlates by ``seq``, and a snapshot or error reply echoes the
request's ``rid`` field when the client sent one, so a caller multiplexing
requests over one session can match replies without ordering assumptions.

Malformed lines get an ``{"kind": "error", ...}`` reply and the connection
stays up; a client that disconnects mid-flight simply stops receiving
outcomes (the transactions it submitted still run to completion).

The server reads and writes in *batches* (see :mod:`repro.live.wire`):
every complete line buffered on the socket is decoded with one batched
``json.loads`` per wakeup, consecutive updates are delivered through
:meth:`LiveRuntime.ingest_batch`, and replies coalesce through a
:class:`~repro.live.wire.CoalescingWriter`.  A batch is just N
newline-delimited records in one write, so per-record clients interoperate
unchanged in both directions.  All records in one coalesced batch share a
single delivery instant (``clock.now`` sampled once per batch) — the
batch *is* the arrival burst.

Each session additionally **negotiates its protocol** from its first
bytes (:func:`~repro.live.wire.negotiate_protocol`): a session that opens
with the :data:`~repro.workload.codec.WIRE_PREAMBLE` magic speaks the
length-prefixed binary frame format of
:class:`~repro.workload.codec.BinaryCodec` instead of JSONL — same
records, same semantics, same reply kinds (replies travel as JSON frame
bodies), minus the per-record JSON tax.  JSONL and binary sessions coexist
behind one listening socket.
"""

from __future__ import annotations

import asyncio
import logging
from dataclasses import asdict, replace

from repro.live.runtime import LiveRuntime
from repro.live.wire import (
    DEFAULT_BATCH_MAX,
    DEFAULT_FLUSH_US,
    PROTOCOL_BINARY,
    PROTOCOL_JSONL,
    CoalescingWriter,
    WireProtocolError,
    encode_reply,
    iter_frame_batches,
    iter_line_batches,
    negotiate_protocol,
)
from repro.workload.codec import decode_lines, item_from_record
from repro.db.objects import Update
from repro.workload.transactions import TransactionSpec

logger = logging.getLogger(__name__)


class IngestServer:
    """TCP front door for a :class:`LiveRuntime`.

    Args:
        runtime: The runtime to feed.
        host: Bind address.
        port: Bind port; 0 picks a free one (read it from ``self.port``
            after :meth:`start`).
        batch_max: Records per coalesced reply write (``1`` = per-record
            replies, the pre-batching wire behavior).
        flush_us: Reply flush deadline in microseconds for partially
            filled batches.
    """

    def __init__(
        self,
        runtime: LiveRuntime,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        batch_max: int = DEFAULT_BATCH_MAX,
        flush_us: float = DEFAULT_FLUSH_US,
    ) -> None:
        self.runtime = runtime
        self.host = host
        self.port = port
        self.batch_max = batch_max
        self.flush_us = flush_us
        self.connections = 0
        self.records_received = 0
        self.errors = 0
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        if self._server is not None:
            raise RuntimeError("server is already running")
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def stop(self) -> None:
        """Stop accepting connections.

        In-flight transactions run to completion; their outcome
        callbacks write into (possibly already closed) session writers,
        which drop the reply exactly as the old task-per-outcome path
        did.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections += 1
        replies = CoalescingWriter(
            writer, batch_max=self.batch_max, flush_us=self.flush_us
        )
        try:
            protocol, leftover = await negotiate_protocol(reader)
            if protocol == PROTOCOL_BINARY:
                batches = iter_frame_batches(reader)
            else:
                batches = self._jsonl_record_batches(reader, leftover)
            async for records in batches:
                self._dispatch_batch(records, replies, protocol)
                # One backpressure point per read batch: ingestion never
                # outruns a reply reader that has stopped consuming.
                await replies.backpressure()
        except WireProtocolError as exc:
            self.errors += 1
            logger.warning("wire negotiation failed: %s", exc)
        except ValueError as exc:
            # A corrupt binary frame header: past it there is no
            # resynchronization point, so the one session is closed.
            self.errors += 1
            logger.warning("binary session corrupt: %s", exc)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            await replies.aclose()

    @staticmethod
    async def _jsonl_record_batches(
        reader: asyncio.StreamReader, leftover: bytes
    ):
        """JSONL sessions as decoded-record batches (the frame-batch dual)."""
        async for lines in iter_line_batches(reader, initial=leftover):
            yield decode_lines(lines)

    def _dispatch_batch(
        self,
        records: list,
        replies: CoalescingWriter,
        protocol: str = PROTOCOL_JSONL,
    ) -> None:
        """Deliver one decoded wire batch in order.

        ``records`` mixes dicts (JSONL lines, JSON frames), already-built
        :class:`Update` / :class:`TransactionSpec` instances (binary
        frames), and ``Exception`` entries for malformed records.
        Consecutive updates within the batch collapse into one
        :meth:`LiveRuntime.ingest_batch` call; a transaction or snapshot
        record flushes the pending updates first, so every record observes
        exactly the runtime state the wire order implies.
        """
        runtime = self.runtime
        # The whole batch arrived in one socket read: it shares one
        # delivery instant, exactly like a burst in the paper's stream.
        now = runtime.clock.now
        updates: list[Update] = []

        def on_outcome(handle) -> None:
            # Fires synchronously when the controller (or the reject
            # path) lands the outcome — the RPC reply for one submitted
            # transaction, correlated by its seq.
            self._reply(replies, {
                "kind": "outcome",
                "seq": handle.spec.seq,
                "outcome": handle.outcome,
                "read_stale": handle.read_stale,
                "finish_time": handle.finish_time,
            }, protocol)

        for record in records:
            rid = None
            try:
                if isinstance(record, Exception):
                    raise record
                if isinstance(record, (Update, TransactionSpec)):
                    item = record
                else:
                    if isinstance(record, dict):
                        kind = record.get("kind")
                        rid = record.get("rid")
                    else:
                        kind = None
                    if kind == "snapshot":
                        if updates:
                            runtime.ingest_batch(updates)
                            updates.clear()
                        reply = {"kind": "snapshot"}
                        if rid is not None:
                            reply["rid"] = rid
                        reply.update(asdict(runtime.snapshot()))
                        self._reply(replies, reply, protocol)
                        continue
                    item = item_from_record(record)
            except (ValueError, KeyError, TypeError) as exc:
                self.errors += 1
                error = {"kind": "error", "message": str(exc)}
                if rid is not None:
                    error["rid"] = rid
                self._reply(replies, error, protocol)
                continue
            self.records_received += 1
            if isinstance(item, Update):
                # Live arrivals are stamped at delivery time: the wire
                # record's arrival_time is in the *sender's* clock domain,
                # and deadlines / staleness are measured against this
                # runtime's clock.
                delta = now - item.arrival_time
                if delta > 0:  # shift, preserving the drawn network age
                    item.arrival_time = now
                    item.generation_time += delta
                updates.append(item)
            else:
                if updates:
                    runtime.ingest_batch(updates)
                    updates.clear()
                handle = runtime.submit(replace(item, arrival_time=now))
                handle.add_done_callback(on_outcome)
        if updates:
            runtime.ingest_batch(updates)

    @staticmethod
    def _reply(
        replies: CoalescingWriter,
        record: dict,
        protocol: str = PROTOCOL_JSONL,
    ) -> None:
        replies.write(encode_reply(record, protocol))
