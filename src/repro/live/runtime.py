"""The live STRIP runtime: the paper's model, pointed at real traffic.

:class:`LiveRuntime` assembles the exact same model as the simulator —
controller, scheduling algorithm, bounded OS queue, generation-ordered
update queue, staleness ledgers, metric collectors — via
:func:`repro.core.wiring.build_parts`, but clocks it with a
:class:`~repro.live.clock.WallClock`.  There is no forked controller: feed
the runtime a recorded trace with an :class:`~repro.sim.engine.Engine` as
its clock and it reproduces the simulator bit-for-bit (the parity tests do
exactly this).

On top of the shared model it adds what a *service* needs:

* **Ingest** (:meth:`ingest`): network delivery of one stream update into
  the bounded OS queue.  When the scheduler cannot keep up, the queue
  fills and the kernel-drop accounting (``OSmax``) becomes real load
  shedding; queued updates past the MA age are expired (``UQmax``/MA)
  exactly as in the paper.
* **Transaction submission** (:meth:`submit`): returns a
  :class:`TransactionHandle` that resolves to committed / missed /
  aborted-stale, with the staleness flag, when the controller finishes it.
* **Observability** (:meth:`snapshot`): mid-run,
  :class:`~repro.metrics.results.SimulationResult`-compatible metric
  snapshots plus live gauges (queue depths, install-latency percentiles,
  dispatch lag) — see :class:`repro.live.observe.MetricsStreamer` for the
  JSONL stream.
* **Graceful degradation**: a watchdog that flags when install latency
  exceeds the soft real-time budget and sheds doomed transactions via the
  controller's feasible-deadline discard policy
  (:meth:`~repro.core.controller.Controller.shed_infeasible`), and a clean
  drain on shutdown that stops ingest, lets the controller finish, and
  emits a final snapshot.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque

from repro.config import SimulationConfig
from repro.core.transaction import LiveTransaction, TransactionState
from repro.core.wiring import build_parts, collect_result, reset_measurement
from repro.db.objects import Update
from repro.live.clock import WallClock
from repro.metrics.freshness import SampledLedger
from repro.metrics.results import SimulationResult
from repro.sim.clock import Clock
from repro.workload.transactions import TransactionSpec


class LatencyTracker:
    """Sliding window of install latencies with percentile readouts."""

    def __init__(self, window: int = 4096) -> None:
        self._samples: deque[float] = deque(maxlen=window)
        self.count = 0
        self.worst = 0.0

    def record(self, latency: float) -> None:
        self._samples.append(latency)
        self.count += 1
        if latency > self.worst:
            self.worst = latency

    def percentile(self, fraction: float) -> float | None:
        """The ``fraction`` quantile of the window, or None when empty."""
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]

    def __len__(self) -> int:
        return len(self._samples)


class _InstallTap:
    """Install listener that feeds the ledger *and* the latency tracker.

    ``now - obj.arrival_time`` at install time is the paper's install
    latency: how long the new value sat in the OS/update queues before the
    scheduler let it into the database.
    """

    __slots__ = ("ledger", "tracker")

    def __init__(self, ledger, tracker: LatencyTracker) -> None:
        self.ledger = ledger
        self.tracker = tracker

    def note_install(self, obj, old_generation, old_arrival_time, old_install_time, now):
        self.ledger.note_install(
            obj, old_generation, old_arrival_time, old_install_time, now
        )
        self.tracker.record(now - obj.arrival_time)


class TransactionHandle:
    """Resolvable outcome of one submitted transaction.

    Attributes:
        spec: The submitted :class:`TransactionSpec`.
        outcome: None while in flight, then one of ``"committed"``,
            ``"missed"``, ``"aborted-stale"``, or ``"rejected"`` (submitted
            while the runtime was draining).
        read_stale: Whether any view read returned stale data.
        finish_time: Clock time of the final outcome.
    """

    __slots__ = ("spec", "outcome", "read_stale", "warned", "finish_time",
                 "_done", "_callbacks")

    def __init__(self, spec: TransactionSpec) -> None:
        self.spec = spec
        self.outcome: str | None = None
        self.read_stale = False
        self.warned = False
        self.finish_time: float | None = None
        self._done = asyncio.Event()
        self._callbacks: list = []

    @property
    def done(self) -> bool:
        return self.outcome is not None

    @property
    def committed(self) -> bool:
        return self.outcome == TransactionState.COMMITTED.value

    async def wait(self) -> str:
        """Wait for the controller to finish the transaction; returns outcome."""
        await self._done.wait()
        assert self.outcome is not None
        return self.outcome

    def add_done_callback(self, fn) -> None:
        """Run ``fn(handle)`` when the outcome lands.

        Fires synchronously from the resolving call (the controller's
        outcome hook, or ``submit`` itself on the reject path) —
        immediately if the handle is already done.  This is how the
        ingest server turns outcomes into reply writes without parking a
        task per in-flight transaction.
        """
        if self.outcome is not None:
            fn(self)
            return
        self._callbacks.append(fn)

    def _finish(self) -> None:
        self._done.set()
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)

    def _resolve(self, txn: LiveTransaction) -> None:
        self.outcome = txn.state.value
        self.read_stale = txn.read_stale
        self.warned = txn.warned
        self.finish_time = txn.finish_time
        self._finish()

    def _reject(self, now: float) -> None:
        self.outcome = "rejected"
        self.finish_time = now
        self._finish()


class LiveRuntime:
    """The wall-clock runtime: shared model + ingest/submit/observe APIs.

    Args:
        config: Standard simulation config.  ``duration``/``warmup`` are
            ignored (a service has no scripted end); everything else —
            cost model, queue bounds, staleness policy, stale-read action —
            applies unchanged.
        algorithm: Scheduler name or instance, as for ``run_simulation``.
        clock: A :class:`Clock`; defaults to a fresh :class:`WallClock`.
            Pass an :class:`~repro.sim.engine.Engine` for deterministic
            (mocked-clock) runs driven by ``engine.run_until``.
        latency_budget: Install-latency watchdog threshold in seconds;
            defaults to the MA staleness bound ``config.transactions.max_age``
            (an install that slow is stale on arrival in the database).
        watchdog_interval: Seconds between watchdog checks.
    """

    def __init__(
        self,
        config: SimulationConfig,
        algorithm="TF",
        *,
        clock: Clock | None = None,
        latency_budget: float | None = None,
        watchdog_interval: float = 1.0,
        **algorithm_kwargs,
    ) -> None:
        self.clock: Clock = clock if clock is not None else WallClock()
        parts = build_parts(config, algorithm, self.clock, **algorithm_kwargs)
        self._parts = parts
        self.config = config
        self.algorithm = parts.algorithm
        self.controller = parts.controller
        self.database = parts.database
        self.os_queue = parts.os_queue
        self.update_queue = parts.update_queue
        self.ledger = parts.ledger
        self.transaction_log = parts.transaction_log
        self.update_accounting = parts.update_accounting
        self.cpu = parts.cpu
        self.views = parts.views

        self.latency = LatencyTracker()
        self.database.install_listener = _InstallTap(self.ledger, self.latency)
        self.controller.outcome_listener = self._on_outcome
        self._handles: dict[int, TransactionHandle] = {}

        self.latency_budget = (
            latency_budget
            if latency_budget is not None
            else config.transactions.max_age
        )
        self.watchdog_interval = watchdog_interval
        self.watchdog_alerts = 0
        self.transactions_shed = 0
        self.ingest_rejected = 0

        # Durability (repro.live.durability): when a DurabilityManager is
        # attached, every OSmax-admitted update is appended to the
        # write-ahead log, and recovery stats surface in the gauges.
        self.update_log = None
        self.durability = None
        self.replayed_records = 0
        self.replay_lag_s = 0.0

        self.measure_start = self.clock.now
        self.accepting = True
        self._finalized: SimulationResult | None = None
        self._clock_task: asyncio.Task | None = None
        self._watchdog_task: asyncio.Task | None = None
        if isinstance(self.ledger, SampledLedger):
            self.ledger.start()

    # ------------------------------------------------------------------
    # Traffic APIs
    # ------------------------------------------------------------------
    def ingest(self, update: Update) -> bool:
        """Network delivery of one stream update.

        Returns:
            True when the update entered the OS queue; False when it was
            dropped (queue full — the ``OSmax`` kernel drop) or refused
            because the runtime is draining.
        """
        if not self.accepting:
            self.ingest_rejected += 1
            return False
        os_queue = self.os_queue
        dropped_before = os_queue.dropped
        self.controller.on_update_arrival(update)
        admitted = os_queue.dropped == dropped_before
        if admitted and self.update_log is not None:
            self.update_log.append_batch((update,))
        return admitted

    def ingest_batch(self, updates: "list[Update]") -> int:
        """Network delivery of a coalesced batch of stream updates.

        Equivalent to calling :meth:`ingest` once per update — each record
        still goes through :meth:`Controller.on_update_arrival`
        individually, so OSmax drops, UQmax overflow, MA expiry, and the
        dispatch-if-idle scheduling point all happen per record and the
        result is bit-identical to the per-record path.  What the batch
        amortizes is everything *around* the model: one accepting check,
        one drop-count delta, and hoisted attribute/method lookups instead
        of per-record ones.

        Returns:
            The number of updates that entered the OS queue (batch size
            minus OSmax drops; 0 when the runtime is draining).
        """
        if not self.accepting:
            self.ingest_rejected += len(updates)
            return 0
        os_queue = self.os_queue
        dropped_before = os_queue.dropped
        on_arrival = self.controller.on_update_arrival
        log = self.update_log
        if log is None:
            for update in updates:
                on_arrival(update)
            return len(updates) - (os_queue.dropped - dropped_before)
        # Logging path: the log must record admitted records only (the
        # paper's OSmax drop is *meant* to be lossy), so the drop delta is
        # checked per record; the whole admitted batch is still one append
        # — one write(2) — so the amortization survives.
        admitted = []
        append = admitted.append
        dropped = dropped_before
        for update in updates:
            on_arrival(update)
            now_dropped = os_queue.dropped
            if now_dropped == dropped:
                append(update)
            else:
                dropped = now_dropped
        if admitted:
            log.append_batch(admitted)
        return len(admitted)

    def register_view(self, spec) -> None:
        """Register a derived view (:class:`~repro.db.views.ViewSpec`, its
        wire record, or its CLI string form) on the live pipeline.

        Eager views refresh inside every applied install on the ingest
        path; deferred views buffer deltas and refresh at every snapshot
        and at finalize.
        """
        from repro.db.views import ViewSpec

        if isinstance(spec, str):
            spec = ViewSpec.parse(spec)
        elif isinstance(spec, dict):
            spec = ViewSpec.from_record(spec)
        self.views.register(spec, self.clock.now)

    def submit(self, spec: TransactionSpec) -> TransactionHandle:
        """Submit one transaction; resolve its handle on commit/miss/abort."""
        handle = TransactionHandle(spec)
        if not self.accepting:
            handle._reject(self.clock.now)
            return handle
        self._handles[spec.seq] = handle
        self.controller.on_transaction_arrival(spec)
        return handle

    async def submit_and_wait(self, spec: TransactionSpec) -> TransactionHandle:
        """Submit and await the outcome (convenience for async callers)."""
        handle = self.submit(spec)
        await handle.wait()
        return handle

    def _on_outcome(self, txn: LiveTransaction) -> None:
        handle = self._handles.pop(txn.spec.seq, None)
        if handle is not None:
            handle._resolve(txn)

    @property
    def in_flight(self) -> int:
        """Submitted transactions without a final outcome yet."""
        return len(self._handles)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the clock dispatcher and watchdog tasks (WallClock only)."""
        if not isinstance(self.clock, WallClock):
            raise RuntimeError(
                "start() drives a WallClock; with a mocked clock, advance it "
                "directly (e.g. engine.run_until)"
            )
        if self._clock_task is not None:
            raise RuntimeError("runtime is already started")
        self._clock_task = asyncio.ensure_future(self.clock.run())
        if self.watchdog_interval > 0:
            self._watchdog_task = asyncio.ensure_future(self._watchdog())

    async def drain(self, timeout: float = 5.0) -> bool:
        """Stop accepting traffic and let the controller finish what it has.

        Waits until the CPU is idle, the OS queue and direct-install list
        are empty, and no transaction is live — or until ``timeout``.
        Updates still parked in the update queue are legitimate leftovers
        (e.g. On-Demand never installs proactively) and are reported as
        pending in the final snapshot.

        Returns:
            True when the system drained fully; False on timeout.
        """
        self.accepting = False
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            controller = self.controller
            if controller.idle and not self.os_queue and not controller.direct_installs:
                if controller.live_transaction_count() == 0:
                    return True
                controller.dispatch()
            await asyncio.sleep(0.01)
        return False

    async def shutdown(self, drain_timeout: float = 5.0) -> SimulationResult:
        """Drain, stop the background tasks, and return the final snapshot."""
        await self.drain(drain_timeout)
        if self._watchdog_task is not None:
            self._watchdog_task.cancel()
            try:
                await self._watchdog_task
            except asyncio.CancelledError:
                pass
            self._watchdog_task = None
        if self._clock_task is not None:
            assert isinstance(self.clock, WallClock)
            self.clock.stop()
            await self._clock_task
            self._clock_task = None
        return self.finalize()

    def finalize(self) -> SimulationResult:
        """Close the ledgers and collect the end-of-run result (idempotent)."""
        if self._finalized is None:
            now = self.clock.now
            self.controller.finalize(now)
            self.ledger.finalize(now)
            self.views.finalize(now)
            self._finalized = collect_result(
                self._parts,
                now - self.measure_start,
                extras=self._gauges(now),
            )
        return self._finalized

    def begin_measurement(self) -> None:
        """Warmup-style reset: discard all metrics, keep the live content."""
        now = self.clock.now
        reset_measurement(self._parts, now)
        self.measure_start = now
        self.latency = LatencyTracker()
        self.database.install_listener = _InstallTap(self.ledger, self.latency)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def snapshot(self) -> SimulationResult:
        """Mid-run metrics over ``[measure_start, now]``, non-destructive.

        Deferred views refresh here: the snapshot is their observation
        point, so the reported view values reflect every install taken so
        far (staleness accounting stays exact — the refresh closes the
        deferred portion of the stale interval at ``now``).
        """
        now = self.clock.now
        if len(self.views):
            self.views.refresh(now)
        return collect_result(
            self._parts,
            now - self.measure_start,
            now=now,
            final=False,
            extras=self._gauges(now),
        )

    def _gauges(self, now: float) -> dict:
        gauges = {
            "wall_time": now,
            "os_queue_depth": len(self.os_queue),
            "update_queue_depth": len(self.update_queue),
            "install_latency_p50": self.latency.percentile(0.50),
            "install_latency_p99": self.latency.percentile(0.99),
            "install_latency_worst": self.latency.worst,
            "watchdog_alerts": self.watchdog_alerts,
            "transactions_shed": self.transactions_shed,
            "ingest_rejected": self.ingest_rejected,
            "transactions_waiting": self.in_flight,
        }
        if isinstance(self.clock, WallClock):
            gauges["dispatch_lag_worst"] = self.clock.max_lag
        if self.update_log is not None or self.replayed_records:
            gauges["replayed_records"] = self.replayed_records
            gauges["replay_lag_s"] = self.replay_lag_s
            if self.update_log is not None:
                gauges["log_records_appended"] = self.update_log.records_appended
                gauges["log_next_lsn"] = self.update_log.next_lsn
        if self.durability is not None:
            gauges["snapshots_taken"] = self.durability.snapshots_taken
            gauges["snapshot_errors"] = self.durability.snapshot_errors
            gauges["last_snapshot_error"] = self.durability.last_snapshot_error
        if len(self.views):
            gauges["views_registered"] = len(self.views)
            gauges["view_refreshes"] = self.views.refreshes
            gauges["view_pending_deltas"] = self.views.pending_deltas()
        return gauges

    # ------------------------------------------------------------------
    # Watchdog
    # ------------------------------------------------------------------
    async def _watchdog(self) -> None:
        """Flag budget-breaking install latency and shed doomed work.

        When the p99 install latency over the recent window exceeds the
        soft real-time budget, the system is falling behind its stream;
        transactions whose deadlines are already infeasible are discarded
        (the paper's feasible-deadline policy) so the CPU goes to work that
        can still earn value.
        """
        while True:
            await asyncio.sleep(self.watchdog_interval)
            p99 = self.latency.percentile(0.99)
            if p99 is not None and p99 > self.latency_budget:
                self.watchdog_alerts += 1
                self.transactions_shed += self.controller.shed_infeasible()
