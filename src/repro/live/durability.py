"""Durability for the live runtime: write-ahead log, snapshots, replay.

A supervised restart (see :mod:`repro.live.cluster`) used to bring a shard
back *empty*: every crash silently reset generation timestamps and
staleness integrals for that keyspace slice.  This module makes restarts
warm with the classic log + snapshot pair:

* :class:`UpdateLog` — a per-shard append-only log of binary update
  frames, written from the ingest path *after* OSmax admission so the log
  records installed intent, not shed traffic.  The on-disk record format
  is exactly the wire format (:func:`repro.workload.codec.
  encode_update_frame`); a small header frame carries the wire schema
  version, the shard id, and the base LSN.  Update frames are fixed-size,
  so LSNs are implicit: ``lsn = base_lsn + record_ordinal``, and a torn
  tail is recognized byte-exactly.
* :class:`SnapshotStore` — atomically replaced compacted snapshots of the
  full measured state: view-object values + generation timestamps, the
  staleness-integral ledgers, and every counter behind
  :class:`~repro.metrics.results.SimulationResult`.  After a snapshot at
  LSN ``L`` the log is truncated (``rotate``) to base LSN ``L``.
* :class:`Replayer` / :class:`DurabilityManager` — restart-path recovery:
  load the snapshot, re-ingest the log records at or past the snapshot
  LSN through the normal ingest path (idempotent — the database's
  worthiness check skips any frame whose generation is not newer than the
  installed value), and resume the predecessor's *time domain* via
  ``WallClock(start_at=...)`` so restored timestamps and new measurements
  share one clock.

Consistency note: the snapshot LSN is read, the state captured, the file
replaced, and the log rotated in one synchronous block on the worker's
event loop, so a crash can only leave *more* log records than the
snapshot needs — replay filters on the recorded LSN and the worthiness
check guards the (unreachable in practice) overlap.

Fsync policy trade-offs (see docs/DURABILITY.md): the log file is opened
unbuffered, so every append is a single ``write(2)`` and survives a
*process* crash even with ``fsync=never``; ``interval`` bounds data loss
on a *machine* crash to the sync interval; ``always`` makes every batch
durable before ingest returns.
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import struct
import time
from dataclasses import asdict, dataclass, field

from repro.db.objects import Update
from repro.db.update_queue import PartitionedUpdateQueue
from repro.live.clock import WallClock
from repro.metrics.freshness import SampledLedger, UnappliedUpdateLedger
from repro.workload.codec import (
    _UPDATE_BODY,
    CLASS_BY_VALUE,
    FRAME_HEADER,
    FrameDecoder,
    WIRE_MAGIC,
    WIRE_SCHEMA_VERSION,
    encode_update_frame,
)

logger = logging.getLogger(__name__)

#: Log header frame tag — outside the wire tags (0x01/0x02/0x1F) so a log
#: file can never be mistaken for a wire capture and vice versa.
TAG_LOG_HEADER = 0x10

#: Header body: magic, wire schema version, shard id, base LSN.
_LOG_HEADER = struct.Struct("<4sBIq")

#: The complete header frame size (frame header + body).
LOG_HEADER_BYTES = FRAME_HEADER.size + _LOG_HEADER.size

#: Every log record is one update frame: fixed size, hence implicit LSNs.
LOG_RECORD_BYTES = FRAME_HEADER.size + _UPDATE_BODY.size

#: Snapshot payload schema, versioned independently of the wire.
SNAPSHOT_SCHEMA = 1

#: Fsync policies accepted by :class:`UpdateLog`.
FSYNC_POLICIES = ("never", "interval", "always")


def _encode_log_header(shard: int, base_lsn: int) -> bytes:
    body = _LOG_HEADER.pack(WIRE_MAGIC, WIRE_SCHEMA_VERSION, shard, base_lsn)
    return FRAME_HEADER.pack(TAG_LOG_HEADER, len(body)) + body


@dataclass
class LogReplay:
    """Everything :func:`read_log` learned about one log file."""

    shard: int = 0
    schema_version: int = WIRE_SCHEMA_VERSION
    base_lsn: int = 0
    updates: list = field(default_factory=list)
    #: Prefix of the file that parsed cleanly; the tail past it is torn or
    #: corrupt and is truncated away when the log is reopened for append.
    valid_bytes: int = 0
    truncated: bool = False
    reason: str | None = None

    @property
    def next_lsn(self) -> int:
        return self.base_lsn + len(self.updates)


def read_log(path: str) -> LogReplay:
    """Parse one log file, tolerating (and stopping at) a corrupt tail.

    A missing file, a bad header, or a schema-version mismatch yields an
    empty replay with ``reason`` set — the caller starts cold and
    :meth:`UpdateLog.open` lays down a fresh header.  A torn or corrupt
    record stops the parse at the last clean frame; everything before it
    replays, everything after it is lost (it was never acknowledged as
    durable at ``fsync=never``/``interval`` anyway).
    """
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as exc:
        return LogReplay(reason=f"unreadable: {exc}")
    if len(blob) < LOG_HEADER_BYTES:
        return LogReplay(reason="missing or short log header")
    tag, length = FRAME_HEADER.unpack_from(blob, 0)
    if tag != TAG_LOG_HEADER or length != _LOG_HEADER.size:
        return LogReplay(reason="not an update log (bad header frame)")
    magic, version, shard, base_lsn = _LOG_HEADER.unpack_from(
        blob, FRAME_HEADER.size
    )
    if magic != WIRE_MAGIC:
        return LogReplay(reason="not an update log (bad magic)")
    if version != WIRE_SCHEMA_VERSION:
        return LogReplay(
            reason=f"log schema v{version}, this build speaks "
            f"v{WIRE_SCHEMA_VERSION}"
        )
    replay = LogReplay(shard=shard, base_lsn=base_lsn)
    # The body cap is the satellite knob on FrameDecoder: any declared
    # length beyond one update body is garbage, and capping there makes
    # the decoder *raise* on it instead of buffering up to 16 MiB of
    # bytes that will never arrive — tolerate-and-stop, not hang.
    decoder = FrameDecoder(max_body=_UPDATE_BODY.size)
    truncated = False
    reason = None
    updates = replay.updates
    # Feed one record-sized chunk at a time: the decoder's corrupt-length
    # raise discards whatever else was decoded in the same feed() call, so
    # a whole-blob feed would lose the clean prefix ahead of the bad
    # header.  Records are fixed-size, so a clean log parses one complete
    # frame per chunk.
    body = blob[LOG_HEADER_BYTES:]
    for start in range(0, len(body), LOG_RECORD_BYTES):
        try:
            records = decoder.feed(body[start:start + LOG_RECORD_BYTES])
        except ValueError as exc:
            truncated = True
            reason = f"corrupt record header: {exc}"
            break
        for record in records:
            if isinstance(record, Update):
                updates.append(record)
                continue
            truncated = True
            reason = f"corrupt record body: {record!r}"
            break
        if truncated:
            break
    if not truncated and decoder.pending_bytes:
        truncated = True
        reason = f"torn tail frame ({decoder.pending_bytes} bytes)"
    replay.valid_bytes = LOG_HEADER_BYTES + len(updates) * LOG_RECORD_BYTES
    replay.truncated = truncated or replay.valid_bytes < len(blob)
    replay.reason = reason
    return replay


class UpdateLog:
    """Append-only per-shard update log with a configurable fsync policy.

    Opened unbuffered: each :meth:`append_batch` is one ``write(2)``, so
    appended records reach the OS page cache immediately and survive a
    process SIGKILL even at ``fsync=never`` — the policy only governs how
    hard the data is pushed toward the platter.

    Attributes:
        next_lsn: LSN the next appended record will get.
        records_appended: Records appended through this handle.
        syncs: fsync calls issued (fsync-policy observability).
    """

    def __init__(
        self,
        path: str,
        shard: int = 0,
        *,
        fsync: str = "never",
        fsync_interval: float = 0.2,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        if fsync_interval <= 0:
            raise ValueError(f"fsync_interval must be > 0, got {fsync_interval}")
        self.path = path
        self.shard = shard
        self.fsync = fsync
        self.fsync_interval = fsync_interval
        self.next_lsn = 0
        self.records_appended = 0
        self.syncs = 0
        self._file = None
        self._last_sync = time.monotonic()

    def open(self) -> LogReplay:
        """Open for append, truncating any corrupt tail; returns the scan.

        An existing healthy log keeps its records (they stay replayable
        until the next :meth:`rotate`); a missing or unusable file is
        replaced with a fresh header at base LSN 0.
        """
        if self._file is not None:
            raise RuntimeError("log is already open")
        replay = read_log(self.path)
        if replay.reason is not None and replay.valid_bytes == 0:
            self._file = open(self.path, "wb", buffering=0)
            self._file.write(_encode_log_header(self.shard, 0))
            self.next_lsn = 0
            return replay
        if replay.truncated:
            os.truncate(self.path, replay.valid_bytes)
        self._file = open(self.path, "ab", buffering=0)
        self.next_lsn = replay.next_lsn
        return replay

    def append_batch(self, updates) -> None:
        """Append admitted updates as one contiguous write.

        Each record is exactly :func:`~repro.workload.codec.
        encode_update_frame` output — the wire format *is* the disk
        format — joined so the whole batch costs one ``write(2)``.
        """
        file = self._file
        if file is None:
            raise RuntimeError("log is not open")
        file.write(b"".join([encode_update_frame(u) for u in updates]))
        count = len(updates)
        self.next_lsn += count
        self.records_appended += count
        if self.fsync == "always":
            os.fsync(file.fileno())
            self.syncs += 1
        elif self.fsync == "interval":
            now = time.monotonic()
            if now - self._last_sync >= self.fsync_interval:
                os.fsync(file.fileno())
                self.syncs += 1
                self._last_sync = now

    def rotate(self, base_lsn: int) -> None:
        """Truncate to a fresh header at ``base_lsn`` (post-snapshot).

        Called right after the snapshot covering everything below
        ``base_lsn`` has been atomically replaced, so the dropped prefix
        is recoverable from the snapshot alone.
        """
        file = self._file
        if file is None:
            raise RuntimeError("log is not open")
        file.truncate(0)
        # Reset the offset too: truncate() leaves it past the dropped
        # bytes, and a non-O_APPEND handle would write there, leaving a
        # null-byte hole at the front of the log.
        file.seek(0)
        file.write(_encode_log_header(self.shard, base_lsn))
        if self.fsync != "never":
            os.fsync(file.fileno())
            self.syncs += 1
        self.next_lsn = base_lsn

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


class SnapshotStore:
    """Atomically replaced JSON snapshot of one shard's full state."""

    def __init__(self, path: str) -> None:
        self.path = path

    def save(self, state: dict) -> None:
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(state, handle, separators=(",", ":"))
        os.replace(tmp, self.path)

    def load(self) -> dict | None:
        """The last complete snapshot, or None (missing/corrupt → cold)."""
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                state = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(state, dict) or state.get("schema") != SNAPSHOT_SCHEMA:
            return None
        return state


# ----------------------------------------------------------------------
# State capture / restore
# ----------------------------------------------------------------------
def _capture_objects(database) -> dict:
    out = {}
    for name, partition in (("low", database.low), ("high", database.high)):
        out[name] = [
            [
                obj.value,
                obj.generation_time,
                obj.arrival_time,
                obj.install_time,
                obj.installs,
                obj.attribute_generations,
            ]
            for obj in partition
        ]
    return out


def _restore_objects(database, objects: dict) -> None:
    for name, partition in (("low", database.low), ("high", database.high)):
        rows = objects[name]
        if len(rows) != len(partition):
            raise ValueError(
                f"snapshot has {len(rows)} {name} objects, config builds "
                f"{len(partition)}"
            )
        for obj, row in zip(partition, rows):
            (obj.value, obj.generation_time, obj.arrival_time,
             obj.install_time, obj.installs, attribute_generations) = row
            if attribute_generations is not None:
                obj.attribute_generations = list(attribute_generations)


def _capture_ledger(ledger) -> dict:
    state: dict = {
        "stale_seconds": {
            klass.value: seconds
            for klass, seconds in ledger.stale_seconds.items()
        },
        "measure_start": ledger.measure_start,
    }
    if isinstance(ledger, UnappliedUpdateLedger):
        state["stale_since"] = [
            [klass.value, object_id, since]
            for (klass, object_id), since in ledger._stale_since.items()
        ]
    elif isinstance(ledger, SampledLedger):
        state["last_sample"] = ledger._last_sample
    return state


def _restore_ledger(ledger, state: dict) -> None:
    for value, seconds in state["stale_seconds"].items():
        ledger.stale_seconds[CLASS_BY_VALUE[value]] = seconds
    ledger.measure_start = state["measure_start"]
    if isinstance(ledger, UnappliedUpdateLedger):
        ledger._stale_since = {
            (CLASS_BY_VALUE[value], object_id): since
            for value, object_id, since in state.get("stale_since", [])
        }
    elif isinstance(ledger, SampledLedger):
        # Resuming the sample anchor makes the next sample span the
        # replay window too — the rectangle rule absorbs it.
        ledger._last_sample = state.get("last_sample", ledger._last_sample)
    # MaxAgeLedger needs nothing extra: its open intervals are implicit
    # in the restored objects' generation/install timestamps.


def _queue_parts(queue) -> dict:
    if isinstance(queue, PartitionedUpdateQueue):
        return {"high": queue.high, "low": queue.low}
    return {"single": queue}


def _capture_queues(queue) -> dict:
    # ``total_pushed - len(part)``: records still parked in the queue die
    # with the process, so their pushes leave the books with them (the
    # same subtraction the arrival counters get in restore_state).
    return {
        name: [
            part.total_pushed - len(part),
            part.overflow_discards,
            part.expired_discards,
            part.superseded_discards,
        ]
        for name, part in _queue_parts(queue).items()
    }


def _restore_queues(queue, state: dict) -> None:
    for name, part in _queue_parts(queue).items():
        row = state.get(name)
        if row is None:
            continue
        (part.total_pushed, part.overflow_discards,
         part.expired_discards, part.superseded_discards) = row


def capture_state(runtime, *, lsn: int, shard: int = 0) -> dict:
    """Serialize everything a warm restart needs, as one JSON document.

    Must run while the runtime is live but between ingest batches (the
    worker's event loop guarantees that) and *before*
    ``runtime.finalize()`` — finalization destructively closes the
    ledgers' open stale intervals, and this capture records them open.
    """
    database = runtime.database
    log = runtime.transaction_log
    accounting = runtime.update_accounting
    cpu = runtime.cpu
    return {
        "schema": SNAPSHOT_SCHEMA,
        "wire_schema": WIRE_SCHEMA_VERSION,
        "shard": shard,
        "lsn": lsn,
        "wall_time": runtime.clock.now,
        "measure_start": runtime.measure_start,
        "algorithm": runtime.algorithm.name,
        "result": asdict(runtime.snapshot()),
        "objects": _capture_objects(database),
        "ledger": _capture_ledger(runtime.ledger),
        "queues": _capture_queues(runtime.update_queue),
        "db_installs": [database.installs_applied, database.installs_skipped],
        "aux": {
            "committed_warned": log.committed_warned,
            "committed_low": log.committed_low,
            "committed_high": log.committed_high,
            "queue_length_sum": accounting.queue_length_sum,
            "queue_length_samples": accounting.queue_length_samples,
            "cpu_busy": [cpu.transaction_seconds, cpu.update_seconds],
            "os_total_enqueued": runtime.os_queue.total_enqueued,
            "watchdog_alerts": runtime.watchdog_alerts,
            "transactions_shed": runtime.transactions_shed,
            "ingest_rejected": runtime.ingest_rejected,
        },
    }


def restore_state(runtime, state: dict) -> None:
    """Load a captured snapshot into a *fresh* runtime.

    The runtime must have been built from the same config/algorithm, on a
    clock resumed in the snapshot's time domain (``WallClock(start_at=
    manager.resume_at)`` or ``Engine(start_time=...)``).

    Counter rebalancing: records that were parked in the OS/update queues
    (and transactions in flight) at capture time died with the process
    and are *not* replayed — they were logged before the snapshot LSN.
    Their arrivals are subtracted so both conservation laws hold exactly
    over the stitched pre+post-crash ledger::

        arrived' = arrived - pending_os - pending_queue   (updates)
        arrived' = arrived - in_flight                    (transactions)
    """
    if state.get("algorithm") != runtime.algorithm.name:
        raise ValueError(
            f"snapshot was taken under {state.get('algorithm')!r}, runtime "
            f"runs {runtime.algorithm.name!r}"
        )
    result = state["result"]
    pending_os = result["updates_pending_os"]
    pending_queue = result["updates_pending_queue"]

    _restore_objects(runtime.database, state["objects"])
    runtime.database.installs_applied, runtime.database.installs_skipped = (
        state["db_installs"]
    )

    log = runtime.transaction_log
    log.arrived = result["transactions_arrived"] - result["transactions_in_flight"]
    log.committed = result["transactions_committed"]
    log.committed_fresh = result["transactions_committed_fresh"]
    log.missed_deadline = result["transactions_missed"]
    log.infeasible_aborts = result["transactions_infeasible"]
    log.aborted_stale = result["transactions_aborted_stale"]
    log.value_earned = result["value_earned"]
    log.value_offered = result["value_offered"]
    log.stale_reads = result["stale_reads"]
    log.view_reads = result["view_reads"]

    accounting = runtime.update_accounting
    accounting.arrived = result["updates_arrived"] - pending_os - pending_queue
    accounting.received = result["updates_received"] - pending_queue
    accounting.enqueued = result["updates_enqueued"] - pending_queue
    accounting.installed_applied = result["updates_applied"]
    accounting.installed_skipped = result["updates_skipped"]
    accounting.on_demand_applied = result["updates_on_demand_applied"]
    accounting.on_demand_scans = result["updates_on_demand_scans"]

    aux = state["aux"]
    log.committed_warned = aux["committed_warned"]
    log.committed_low = aux["committed_low"]
    log.committed_high = aux["committed_high"]
    accounting.queue_length_sum = aux["queue_length_sum"]
    accounting.queue_length_samples = aux["queue_length_samples"]

    cpu = runtime.cpu
    cpu.busy_seconds[cpu.TRANSACTION] = aux["cpu_busy"][0]
    cpu.busy_seconds[cpu.UPDATE] = aux["cpu_busy"][1]
    cpu.context_switches = result["context_switches"]
    cpu.preemptions = result["preemptions"]
    runtime.clock.events_dispatched = result["events_dispatched"]

    os_queue = runtime.os_queue
    os_queue.dropped = result["updates_os_dropped"]
    depth = result["extras"].get("os_queue_depth", 0) or 0
    os_queue.total_enqueued = max(0, aux["os_total_enqueued"] - depth)

    _restore_queues(runtime.update_queue, state["queues"])
    _restore_ledger(runtime.ledger, state["ledger"])

    runtime.measure_start = state["measure_start"]
    runtime.watchdog_alerts = aux["watchdog_alerts"]
    runtime.transactions_shed = aux["transactions_shed"]
    runtime.ingest_rejected = aux["ingest_rejected"]


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReplayStats:
    """What one recovery did, surfaced into ``liveness()``/``extras``."""

    replayed_records: int
    replay_lag_s: float
    snapshot_lsn: int
    log_records: int
    resumed: bool


async def replay_into(runtime, records) -> int:
    """Re-ingest logged records through the normal ingest path.

    Paced by the OS queue's free capacity so a long log does not turn
    into OSmax drops of durably-logged records: the replayer fills the
    queue, yields so the scheduler services it, and continues.  Works on
    both clock families — a WallClock services installs on its own task;
    a mocked Engine clock is nudged forward explicitly.

    Returns the number of records the OS queue admitted.
    """
    replayed = 0
    os_queue = runtime.os_queue
    live = isinstance(runtime.clock, WallClock)
    index = 0
    total = len(records)
    while index < total:
        free = os_queue.capacity - len(os_queue)
        if free <= 0:
            if live:
                await asyncio.sleep(0.002)
            else:
                runtime.clock.run_until(runtime.clock.now + 0.005)
            continue
        chunk = records[index:index + free]
        replayed += runtime.ingest_batch(chunk)
        index += len(chunk)
        if live:
            await asyncio.sleep(0)
    return replayed


class Replayer:
    """Recovery plan for one shard: snapshot + log, read once, up front.

    Reads both files at construction (before the worker announces ready)
    and exposes:

    * :attr:`resume_at` — where the predecessor's clock domain ended; the
      new runtime's clock must start there.
    * :meth:`recover` — restore the snapshot into a fresh runtime, then
      replay the log records at or past the snapshot LSN.
    """

    def __init__(self, snapshot_path: str, log_path: str) -> None:
        self.snapshots = SnapshotStore(snapshot_path)
        self.state = self.snapshots.load()
        self.scan = read_log(log_path)
        self.snapshot_lsn = self.state["lsn"] if self.state else 0
        base = self.scan.base_lsn
        self.pending = [
            update
            for ordinal, update in enumerate(self.scan.updates)
            if base + ordinal >= self.snapshot_lsn
        ]

    @property
    def resumed(self) -> bool:
        """Whether there is anything to warm-start from."""
        return self.state is not None or bool(self.pending)

    @property
    def resume_at(self) -> float:
        """Clock time the restarted runtime must resume at."""
        at = 0.0
        if self.state is not None:
            at = max(self.state["wall_time"], self.state["measure_start"])
        if self.pending:
            at = max(at, max(u.arrival_time for u in self.pending))
        return at

    async def recover(self, runtime) -> ReplayStats:
        """Restore + replay into ``runtime``; returns what happened."""
        started = time.monotonic()
        if self.state is not None:
            restore_state(runtime, self.state)
        replayed = await replay_into(runtime, self.pending)
        stats = ReplayStats(
            replayed_records=replayed,
            replay_lag_s=time.monotonic() - started,
            snapshot_lsn=self.snapshot_lsn,
            log_records=len(self.scan.updates),
            resumed=self.resumed,
        )
        runtime.replayed_records = stats.replayed_records
        runtime.replay_lag_s = stats.replay_lag_s
        return stats


class DurabilityManager:
    """One shard's durability: recovery in, logging + snapshots out.

    Lifecycle (the worker's order of operations)::

        manager = DurabilityManager(log_dir, shard, fsync=..., ...)
        runtime = LiveRuntime(..., clock=WallClock(start_at=manager.resume_at))
        runtime.start()
        stats = await manager.recover(runtime)   # restore + replay
        manager.attach(runtime)                  # open log, hook ingest
        manager.start(runtime)                   # periodic snapshots
        ...
        await runtime.drain(...)
        await manager.stop(runtime)              # final snapshot, close log
        result = await runtime.shutdown(drain_timeout=0.0)

    ``recover`` runs *before* ``attach`` so replayed records are not
    re-appended — they are already in the log, below ``next_lsn``.
    """

    def __init__(
        self,
        directory: str,
        shard: int = 0,
        *,
        fsync: str = "never",
        fsync_interval: float = 0.2,
        snapshot_interval: float = 5.0,
    ) -> None:
        if snapshot_interval <= 0:
            raise ValueError(
                f"snapshot_interval must be > 0, got {snapshot_interval}"
            )
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.shard = shard
        self.snapshot_interval = snapshot_interval
        self.log_path = os.path.join(directory, f"shard-{shard:02d}.log")
        self.snapshot_path = os.path.join(
            directory, f"shard-{shard:02d}.snapshot.json"
        )
        self.replayer = Replayer(self.snapshot_path, self.log_path)
        self.log = UpdateLog(
            self.log_path, shard, fsync=fsync, fsync_interval=fsync_interval
        )
        self.stats: ReplayStats | None = None
        self.snapshots_taken = 0
        self.snapshot_errors = 0
        self.last_snapshot_error: str | None = None
        self._task: asyncio.Task | None = None

    @property
    def resume_at(self) -> float:
        return self.replayer.resume_at

    async def recover(self, runtime) -> ReplayStats:
        self.stats = await self.replayer.recover(runtime)
        return self.stats

    def attach(self, runtime) -> None:
        """Open the log for append and hook it into the ingest path."""
        self.log.open()
        runtime.update_log = self.log
        runtime.durability = self

    def start(self, runtime) -> None:
        """Spawn the periodic snapshot loop (asyncio context required)."""
        if self._task is not None:
            raise RuntimeError("durability manager is already started")
        self._task = asyncio.ensure_future(self._snapshot_loop(runtime))

    def snapshot_now(self, runtime) -> None:
        """Capture → atomically replace → truncate the log, synchronously.

        One synchronous block on the event loop: no ingest can interleave
        between reading the LSN and rotating, so the snapshot + rotated
        log always describe the same prefix of the record stream.
        """
        lsn = self.log.next_lsn
        state = capture_state(runtime, lsn=lsn, shard=self.shard)
        self.replayer.snapshots.save(state)
        self.log.rotate(lsn)
        self.snapshots_taken += 1

    def _note_snapshot_error(self, exc: BaseException) -> None:
        """Record a failed capture so operators can see it (mirrors
        ``MetricsStreamer._note_sample_error``): counted, kept as the last
        error string, logged — and surfaced in worker ``liveness()`` and
        merged cluster extras."""
        self.snapshot_errors += 1
        self.last_snapshot_error = repr(exc)
        logger.warning("shard %d snapshot failed: %r", self.shard, exc)

    async def _snapshot_loop(self, runtime) -> None:
        while True:
            await asyncio.sleep(self.snapshot_interval)
            try:
                self.snapshot_now(runtime)
            except Exception as exc:
                self._note_snapshot_error(exc)

    async def stop(self, runtime, *, final_snapshot: bool = True) -> None:
        """Cancel the loop, take the final snapshot, close the log.

        Must run after :meth:`LiveRuntime.drain` but *before*
        ``runtime.finalize()`` (capture needs the ledgers un-finalized).
        """
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        if final_snapshot:
            self.snapshot_now(runtime)
        self.log.close()

    def close(self) -> None:
        """Release the log handle without snapshotting (error paths)."""
        self.log.close()
