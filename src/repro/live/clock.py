"""Wall-clock implementation of the :class:`repro.sim.Clock` contract.

The simulator's :class:`~repro.sim.engine.Engine` *jumps* its clock to each
event's timestamp; a :class:`WallClock` has to *wait* for
``time.monotonic()`` to catch up instead.  A single asyncio task owns the
timer heap: it dispatches every due event in a tight synchronous loop
(yielding to the event loop every few hundred dispatches so ingest
coroutines stay responsive), then sleeps until the next timer or until a
newly scheduled event preempts the head of the heap.

Differences from the engine, both deliberate:

* ``schedule_at`` with a past timestamp fires as-soon-as-possible instead
  of raising — for real time, "in the past" just means "late" (a deadline
  computed from an arrival timestamp may already be due by the time the
  ingest path runs).
* ``run_end`` is a *rolling burst horizon* (``now + burst_horizon``)
  instead of a run segment boundary.  The controller's install-burst
  coalescing reads it to bound how far ahead it may assemble a chain of
  installs with a single completion event; on the simulator the horizon is
  the next heap event, which is exact because every future arrival is
  itself a heap event.  On a wall clock network arrivals are *not* in the
  heap, so the horizon must be a policy choice: within one horizon slice a
  newly arrived transaction waits for the whole coalesced burst instead of
  the next per-install boundary, and a mid-slice observer (snapshot,
  metrics tick) can see installs accounted at serial completion times up
  to ``burst_horizon`` ahead of its own wakeup.  The default (2 ms) keeps
  that skew two orders of magnitude below the paper's deadline and MA
  scales while amortizing the dominant per-install cost — the
  dispatch/select/schedule cycle — across dozens of installs.  Pass
  ``burst_horizon=0.0`` to restore strict one-event-per-install dispatch.

The event objects are the engine's own :class:`~repro.sim.events.Event`, so
cancellation semantics (lazy deletion, O(1) cancel) are identical.
"""

from __future__ import annotations

import asyncio
import heapq
import time
from typing import Any, Callable

from repro.sim.events import Event

#: Dispatch this many overdue events before yielding to the event loop.
_YIELD_EVERY = 256

#: When the next timer is due sooner than this (seconds), spin-yield on the
#: event loop instead of arming a timed sleep: asyncio timers cost far more
#: than the paper-model bursts they would wait for (tens of microseconds),
#: and a timed sleep per install caps throughput at a few thousand events/s.
_SPIN_THRESHOLD = 0.001

#: Below this gap (seconds), even a single event-loop yield costs more than
#: the wait itself: busy-wait synchronously.  The streak counter still
#: yields every ``_YIELD_EVERY`` dispatches, so ingest I/O cannot starve.
_SYNC_SPIN = 0.0002

#: Default install-burst coalescing horizon (seconds); see module docstring.
DEFAULT_BURST_HORIZON = 0.002


class WallClock:
    """Real-time clock + timer dispatcher for the live runtime.

    Usage::

        clock = WallClock()
        clock.schedule(0.5, callback)
        await clock.run()            # dispatches until stop() is called

    Attributes:
        events_dispatched: Number of events fired so far.
        run_end: Rolling burst horizon, ``now + burst_horizon`` (see module
            docstring); None when coalescing is disabled.
        max_lag: Worst observed dispatch lag (seconds between an event's
            due time and the moment it actually fired) — the live system's
            "how far behind real time am I" gauge.
    """

    def __init__(
        self,
        time_source: Callable[[], float] = time.monotonic,
        *,
        burst_horizon: float = DEFAULT_BURST_HORIZON,
        start_at: float = 0.0,
    ) -> None:
        self._time = time_source
        # ``start_at`` shifts the origin so ``now`` starts there instead of
        # at zero: a warm-restarted shard resumes its predecessor's time
        # domain, keeping restored generation timestamps and staleness
        # integrals comparable with everything measured after the restart.
        self._origin = time_source() - start_at
        self._last_now = start_at
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._cancelled = 0
        self._stopped = False
        self._wakeup: asyncio.Event | None = None
        self._burst_horizon = max(0.0, burst_horizon)
        self.events_dispatched = 0
        self.max_lag = 0.0

    @property
    def run_end(self) -> float | None:
        """Install-coalescing horizon: how far ahead a burst may extend."""
        if not self._burst_horizon:
            return None
        return self.now + self._burst_horizon

    # ------------------------------------------------------------------
    # Clock protocol
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Seconds since the clock was created (monotone non-decreasing)."""
        current = self._time() - self._origin
        if current > self._last_now:
            self._last_now = current
        return self._last_now

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            delay = 0.0
        return self._push(self.now + delay, callback, args)

    def schedule_at(self, when: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule at absolute time ``when``; past times fire immediately."""
        return self._push(when, callback, args)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (idempotent)."""
        event.cancel()

    def peek_time(self) -> float | None:
        """Due time of the next live event, or None when idle."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._cancelled -= 1
        return heap[0][0] if heap else None

    def pending_count(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1))."""
        return len(self._heap) - self._cancelled

    # ------------------------------------------------------------------
    # Dispatching
    # ------------------------------------------------------------------
    async def run(self) -> None:
        """Dispatch events as real time reaches them, until :meth:`stop`.

        Overdue events are drained in a tight loop in due order; the task
        then sleeps until the earliest pending timer (or indefinitely when
        idle) and wakes early if something earlier is scheduled meanwhile.
        """
        if self._wakeup is not None:
            raise RuntimeError("WallClock.run() is already active")
        self._stopped = False
        self._wakeup = asyncio.Event()
        heap = self._heap
        pop = heapq.heappop
        try:
            while not self._stopped:
                streak = 0
                while heap:
                    head = heap[0]
                    event = head[2]
                    if event.cancelled:
                        pop(heap)
                        self._cancelled -= 1
                        continue
                    due = head[0]
                    now = self.now
                    if due > now:
                        if due - now >= _SYNC_SPIN:
                            break
                        # Dispatch-grade busy-wait on the raw time source;
                        # one property read afterwards refreshes _last_now.
                        raw_due = due + self._origin
                        raw_time = self._time
                        while raw_time() < raw_due:
                            pass
                        now = self.now
                    pop(heap)
                    event.engine = None
                    lag = now - due
                    if lag > self.max_lag:
                        self.max_lag = lag
                    self.events_dispatched += 1
                    event.callback(*event.args)
                    streak += 1
                    if streak % _YIELD_EVERY == 0:
                        await asyncio.sleep(0)
                        if self._stopped:
                            break
                if self._stopped:
                    break
                timeout = None
                if heap:
                    timeout = max(0.0, heap[0][0] - self.now)
                    if timeout < _SPIN_THRESHOLD:
                        # Due almost immediately: yield once so ingest
                        # coroutines run, then re-check the heap.
                        await asyncio.sleep(0)
                        continue
                try:
                    await asyncio.wait_for(self._wakeup.wait(), timeout)
                except asyncio.TimeoutError:
                    pass
                self._wakeup.clear()
        finally:
            self._wakeup = None

    def stop(self) -> None:
        """Ask :meth:`run` to return after the current dispatch."""
        self._stopped = True
        if self._wakeup is not None:
            self._wakeup.set()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _push(self, when: float, callback: Callable[..., Any], args: tuple) -> Event:
        seq = self._seq
        self._seq = seq + 1
        event = Event.__new__(Event)
        event.time = when
        event.seq = seq
        event.callback = callback
        event.args = args
        event.cancelled = False
        event.engine = self
        heap = self._heap
        heapq.heappush(heap, (when, seq, event))
        # Wake the dispatcher only when this event became the new head —
        # anything later will be picked up by the existing sleep anyway.
        if self._wakeup is not None and heap[0][2] is event:
            self._wakeup.set()
        return event
