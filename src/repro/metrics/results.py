"""Result of one simulation run (paper section 3.5 metrics).

:class:`SimulationResult` is a frozen snapshot of every metric the paper
reports, plus the raw counters the reproduction exposes for debugging and
the conservation-law tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SimulationResult:
    """Metrics of one simulation run.

    The field names mirror the paper:

    * ``p_md`` — fraction of transactions that did not complete by their
      deadline (includes stale-data aborts, which by definition do not
      complete).
    * ``p_success`` — fraction that completed on time *and* read only fresh
      data.
    * ``p_suc_nontardy`` — of the transactions that completed on time, the
      fraction that read only fresh data.
    * ``average_value`` — value earned per simulated second (AV).
    * ``fold_low`` / ``fold_high`` — time-averaged stale fraction of the
      low/high-importance view partitions.
    * ``rho_transactions`` / ``rho_updates`` — CPU fraction spent on
      transaction / update work.
    """

    algorithm: str
    staleness: str
    duration: float
    seed: int

    # Headline metrics
    p_md: float
    p_success: float
    p_suc_nontardy: float
    average_value: float
    fold_low: float
    fold_high: float
    rho_transactions: float
    rho_updates: float

    # Transaction accounting
    transactions_arrived: int
    transactions_committed: int
    transactions_committed_fresh: int
    transactions_missed: int
    transactions_aborted_stale: int
    transactions_infeasible: int
    transactions_in_flight: int
    value_earned: float
    value_offered: float
    stale_reads: int
    view_reads: int

    # Update accounting
    updates_arrived: int
    updates_received: int
    updates_enqueued: int
    updates_applied: int
    updates_skipped: int
    updates_on_demand_applied: int
    updates_on_demand_scans: int
    updates_os_dropped: int
    updates_expired: int
    updates_overflowed: int
    updates_superseded: int
    updates_pending_os: int
    updates_pending_queue: int
    mean_update_queue_length: float

    # Engine accounting
    context_switches: int
    preemptions: int
    events_dispatched: int

    extras: dict = field(default_factory=dict)

    @property
    def rho_total(self) -> float:
        """Total CPU utilization."""
        return self.rho_transactions + self.rho_updates

    @property
    def fraction_stale_reads(self) -> float:
        """Fraction of view reads that returned stale data."""
        if self.view_reads == 0:
            return 0.0
        return self.stale_reads / self.view_reads

    def update_conservation_gap(self) -> int:
        """Arrived-updates minus all accounted fates; zero when consistent.

        On-demand applies remove updates from the update queue, and the
        installed/skipped counters already include them, so they need no
        separate term.
        """
        accounted = (
            self.updates_os_dropped
            + self.updates_applied
            + self.updates_skipped
            + self.updates_expired
            + self.updates_overflowed
            + self.updates_superseded
            + self.updates_pending_os
            + self.updates_pending_queue
        )
        return self.updates_arrived - accounted

    def transaction_conservation_gap(self) -> int:
        """Arrived-transactions minus all accounted fates; zero when consistent."""
        accounted = (
            self.transactions_committed
            + self.transactions_missed
            + self.transactions_aborted_stale
            + self.transactions_in_flight
        )
        return self.transactions_arrived - accounted

    def summary(self) -> str:
        """One-line digest for logs."""
        return (
            f"{self.algorithm:>4} [{self.staleness}] "
            f"pMD={self.p_md:.3f} psucc={self.p_success:.3f} "
            f"AV={self.average_value:.2f} "
            f"fold_l={self.fold_low:.3f} fold_h={self.fold_high:.3f} "
            f"rho=({self.rho_transactions:.2f},{self.rho_updates:.2f})"
        )
