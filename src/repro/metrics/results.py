"""Result of one simulation run (paper section 3.5 metrics).

:class:`SimulationResult` is a frozen snapshot of every metric the paper
reports, plus the raw counters the reproduction exposes for debugging and
the conservation-law tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence


@dataclass(frozen=True)
class SimulationResult:
    """Metrics of one simulation run.

    The field names mirror the paper:

    * ``p_md`` — fraction of transactions that did not complete by their
      deadline (includes stale-data aborts, which by definition do not
      complete).
    * ``p_success`` — fraction that completed on time *and* read only fresh
      data.
    * ``p_suc_nontardy`` — of the transactions that completed on time, the
      fraction that read only fresh data.
    * ``average_value`` — value earned per simulated second (AV).
    * ``fold_low`` / ``fold_high`` — time-averaged stale fraction of the
      low/high-importance view partitions.
    * ``rho_transactions`` / ``rho_updates`` — CPU fraction spent on
      transaction / update work.
    """

    algorithm: str
    staleness: str
    duration: float
    seed: int

    # Headline metrics
    p_md: float
    p_success: float
    p_suc_nontardy: float
    average_value: float
    fold_low: float
    fold_high: float
    rho_transactions: float
    rho_updates: float

    # Transaction accounting
    transactions_arrived: int
    transactions_committed: int
    transactions_committed_fresh: int
    transactions_missed: int
    transactions_aborted_stale: int
    transactions_infeasible: int
    transactions_in_flight: int
    value_earned: float
    value_offered: float
    stale_reads: int
    view_reads: int

    # Update accounting
    updates_arrived: int
    updates_received: int
    updates_enqueued: int
    updates_applied: int
    updates_skipped: int
    updates_on_demand_applied: int
    updates_on_demand_scans: int
    updates_os_dropped: int
    updates_expired: int
    updates_overflowed: int
    updates_superseded: int
    updates_pending_os: int
    updates_pending_queue: int
    mean_update_queue_length: float

    # Engine accounting
    context_switches: int
    preemptions: int
    events_dispatched: int

    # Derived views (repro.db.views); all zero when none are registered.
    fold_views: float = 0.0
    views_registered: int = 0
    view_refreshes: int = 0

    extras: dict = field(default_factory=dict)

    @property
    def rho_total(self) -> float:
        """Total CPU utilization."""
        return self.rho_transactions + self.rho_updates

    @property
    def fraction_stale_reads(self) -> float:
        """Fraction of view reads that returned stale data."""
        if self.view_reads == 0:
            return 0.0
        return self.stale_reads / self.view_reads

    def update_conservation_gap(self) -> int:
        """Arrived-updates minus all accounted fates; zero when consistent.

        On-demand applies remove updates from the update queue, and the
        installed/skipped counters already include them, so they need no
        separate term.
        """
        accounted = (
            self.updates_os_dropped
            + self.updates_applied
            + self.updates_skipped
            + self.updates_expired
            + self.updates_overflowed
            + self.updates_superseded
            + self.updates_pending_os
            + self.updates_pending_queue
        )
        return self.updates_arrived - accounted

    def transaction_conservation_gap(self) -> int:
        """Arrived-transactions minus all accounted fates; zero when consistent."""
        accounted = (
            self.transactions_committed
            + self.transactions_missed
            + self.transactions_aborted_stale
            + self.transactions_in_flight
        )
        return self.transactions_arrived - accounted

    @staticmethod
    def merge(
        results: "Iterable[SimulationResult]",
        *,
        weights_low: Sequence[float] | None = None,
        weights_high: Sequence[float] | None = None,
        extras: dict | None = None,
    ) -> "SimulationResult":
        """Aggregate per-shard results into one report.

        Counters (transaction outcomes, update fates, context switches)
        are summed, so both conservation laws — linear in those counters —
        carry over exactly: if every input has a zero gap, the merged
        result does too.  The headline fractions are *recomputed from the
        summed counters*, not averaged, so ``p_md``/``p_success`` weight
        every transaction equally regardless of which shard ran it.

        The staleness integrals ``fold_low``/``fold_high`` are per-shard
        time-averages over that shard's objects; their exact global
        counterpart is the object-count-weighted mean, so pass each
        shard's owned object counts as ``weights_low``/``weights_high``
        (equal weights are assumed otherwise).  CPU utilizations are
        averaged: each shard runs on its own core, so the merged rho is
        the busy fraction of the *aggregate* capacity and the
        ``rho_total <= 1`` invariant is preserved.

        ``duration`` is the maximum over shards (windows are expected to
        be near-identical; rates are normalized by this common window),
        and ``mean_update_queue_length`` is summed (total queued updates
        across the fleet).

        Args:
            results: Per-shard results; must agree on algorithm,
                staleness policy, and seed.
            weights_low: Per-shard low-importance object counts (fold
                weighting); defaults to equal weights.
            weights_high: Per-shard high-importance object counts.
            extras: ``extras`` dict of the merged result (per-shard extras
                are shard-local gauges and are intentionally not merged).

        Returns:
            The merged result.  A single-element input is returned as-is
            (with ``extras`` replaced when given) — the one-shard path
            stays bit-identical.
        """
        shard_results = list(results)
        if not shard_results:
            raise ValueError("cannot merge zero results")
        if len(shard_results) == 1:
            only = shard_results[0]
            return only if extras is None else replace(only, extras=extras)
        first = shard_results[0]
        for other in shard_results[1:]:
            if (
                other.algorithm != first.algorithm
                or other.staleness != first.staleness
                or other.seed != first.seed
            ):
                raise ValueError(
                    "refusing to merge results from different runs: "
                    f"{(first.algorithm, first.staleness, first.seed)} vs "
                    f"{(other.algorithm, other.staleness, other.seed)}"
                )

        def total(name: str):
            return sum(getattr(result, name) for result in shard_results)

        def mean(name: str) -> float:
            return total(name) / len(shard_results)

        def weighted(name: str, weights: Sequence[float] | None) -> float:
            values = [getattr(result, name) for result in shard_results]
            if weights is None:
                weights = [1.0] * len(values)
            if len(weights) != len(values):
                raise ValueError(
                    f"{len(values)} results but {len(weights)} weights"
                )
            denominator = sum(weights)
            if denominator == 0:
                return 0.0
            numerator = sum(v * w for v, w in zip(values, weights))
            return numerator / denominator

        duration = max(result.duration for result in shard_results)
        # fold_views is each shard's time-average over its *registered*
        # views, so the exact fleet-wide counterpart weights by how many
        # views each shard maintains (every shard normally registers the
        # same specs, making this the plain mean).
        view_weights = [
            float(result.views_registered) for result in shard_results
        ]
        if sum(view_weights) == 0:
            view_weights = None
        committed = total("transactions_committed")
        committed_fresh = total("transactions_committed_fresh")
        missed = total("transactions_missed")
        aborted_stale = total("transactions_aborted_stale")
        finished = committed + missed + aborted_stale
        value_earned = total("value_earned")

        return SimulationResult(
            algorithm=first.algorithm,
            staleness=first.staleness,
            duration=duration,
            seed=first.seed,
            p_md=1.0 - (committed / finished) if finished else 0.0,
            p_success=(committed_fresh / finished) if finished else 0.0,
            p_suc_nontardy=(committed_fresh / committed) if committed else 0.0,
            average_value=value_earned / duration if duration > 0 else 0.0,
            fold_low=weighted("fold_low", weights_low),
            fold_high=weighted("fold_high", weights_high),
            rho_transactions=mean("rho_transactions"),
            rho_updates=mean("rho_updates"),
            transactions_arrived=total("transactions_arrived"),
            transactions_committed=committed,
            transactions_committed_fresh=committed_fresh,
            transactions_missed=missed,
            transactions_aborted_stale=aborted_stale,
            transactions_infeasible=total("transactions_infeasible"),
            transactions_in_flight=total("transactions_in_flight"),
            value_earned=value_earned,
            value_offered=total("value_offered"),
            stale_reads=total("stale_reads"),
            view_reads=total("view_reads"),
            updates_arrived=total("updates_arrived"),
            updates_received=total("updates_received"),
            updates_enqueued=total("updates_enqueued"),
            updates_applied=total("updates_applied"),
            updates_skipped=total("updates_skipped"),
            updates_on_demand_applied=total("updates_on_demand_applied"),
            updates_on_demand_scans=total("updates_on_demand_scans"),
            updates_os_dropped=total("updates_os_dropped"),
            updates_expired=total("updates_expired"),
            updates_overflowed=total("updates_overflowed"),
            updates_superseded=total("updates_superseded"),
            updates_pending_os=total("updates_pending_os"),
            updates_pending_queue=total("updates_pending_queue"),
            mean_update_queue_length=total("mean_update_queue_length"),
            context_switches=total("context_switches"),
            preemptions=total("preemptions"),
            events_dispatched=total("events_dispatched"),
            fold_views=weighted("fold_views", view_weights),
            views_registered=total("views_registered"),
            view_refreshes=total("view_refreshes"),
            extras=extras if extras is not None else {},
        )

    def summary(self) -> str:
        """One-line digest for logs."""
        return (
            f"{self.algorithm:>4} [{self.staleness}] "
            f"pMD={self.p_md:.3f} psucc={self.p_success:.3f} "
            f"AV={self.average_value:.2f} "
            f"fold_l={self.fold_low:.3f} fold_h={self.fold_high:.3f} "
            f"rho=({self.rho_transactions:.2f},{self.rho_updates:.2f})"
        )
