"""Plain-text reporting helpers for experiment output.

The benchmark harness prints paper-style series with these formatters so
every figure's reproduction is readable directly from the pytest output.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.metrics.results import SimulationResult


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    Floats are shown with 4 significant decimals; everything else with
    ``str``.  Column widths adapt to content.
    """
    rendered_rows = [
        [_format_cell(cell) for cell in row]
        for row in rows
    ]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_result(result: SimulationResult) -> str:
    """A multi-line human-readable dump of one run's metrics."""
    rows = [
        ("p_MD (missed deadlines)", f"{result.p_md:.4f}"),
        ("p_success", f"{result.p_success:.4f}"),
        ("p_suc|nontardy", f"{result.p_suc_nontardy:.4f}"),
        ("AV (value/sec)", f"{result.average_value:.4f}"),
        ("fold_low", f"{result.fold_low:.4f}"),
        ("fold_high", f"{result.fold_high:.4f}"),
        ("rho_transactions", f"{result.rho_transactions:.4f}"),
        ("rho_updates", f"{result.rho_updates:.4f}"),
        ("transactions arrived", result.transactions_arrived),
        ("transactions committed", result.transactions_committed),
        ("transactions aborted (stale)", result.transactions_aborted_stale),
        ("updates arrived", result.updates_arrived),
        ("updates applied", result.updates_applied),
        ("updates expired", result.updates_expired),
        ("mean update-queue length", f"{result.mean_update_queue_length:.1f}"),
    ]
    if result.views_registered:
        rows.append(("fold_views", f"{result.fold_views:.4f}"))
        rows.append(("views registered", result.views_registered))
        rows.append(("view delta refreshes", result.view_refreshes))
    return format_table(
        ("metric", "value"),
        rows,
        title=f"{result.algorithm} under {result.staleness} "
        f"({result.duration:g}s simulated, seed {result.seed})",
    )


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4f}"
    return str(cell)
