"""Exact time-weighted staleness accounting.

The paper's headline freshness metric is::

    fold = (1 / t_end) * integral_0^t_end  fold(t) dt

where ``fold(t)`` is the fraction of a view partition that is stale at time
``t``.  Sampling that integral introduces noise, so the ledgers here compute
it *exactly*:

* :class:`MaxAgeLedger` (MA) exploits the fact that, between installs, an
  object's staleness trajectory is fully determined: the value installed
  with generation ``g`` is fresh until ``g + max_age`` and stale afterwards.
  Each install therefore closes the previous value's interval and adds its
  clipped stale portion to the partition integral in O(1).
* :class:`UnappliedUpdateLedger` (UU) tracks, per object, whether the update
  queue currently holds a strictly newer generation than the installed one;
  it opens an interval on the False→True transition and closes it on
  True→False.  The update queue's observer hook plus the database's install
  listener provide every transition point.
* :class:`SampledLedger` periodically samples any
  :class:`~repro.db.staleness.StalenessChecker`; it backs the COMBINED
  policy and cross-validates the exact ledgers in the test suite.
"""

from __future__ import annotations

from repro.config import SimulationConfig, StalenessPolicy
from repro.db.database import Database
from repro.db.objects import DataObject, ObjectClass
from repro.db.staleness import StalenessChecker
from repro.db.update_queue import ObjectKey, UpdateQueue
from repro.sim.clock import Clock


class FreshnessLedger:
    """Base class: partition stale-time integrals plus the hook points."""

    def __init__(self) -> None:
        self.stale_seconds: dict[ObjectClass, float] = {
            ObjectClass.VIEW_LOW: 0.0,
            ObjectClass.VIEW_HIGH: 0.0,
        }
        self.measure_start = 0.0
        self._database: Database | None = None
        self._queue: UpdateQueue | None = None
        self._finalized = False

    def begin_measurement(self, now: float) -> None:
        """Discard staleness accumulated before ``now`` (warmup cutoff)."""
        self.measure_start = now
        for klass in self.stale_seconds:
            self.stale_seconds[klass] = 0.0

    # -- wiring ----------------------------------------------------------
    def bind(self, database: Database, queue: UpdateQueue) -> None:
        """Attach the run's database and update queue."""
        self._database = database
        self._queue = queue

    # -- hook points (no-ops by default) -----------------------------------
    def note_install(
        self,
        obj: DataObject,
        old_generation: float,
        old_arrival_time: float,
        old_install_time: float,
        now: float,
    ) -> None:
        """Install listener (see :class:`repro.db.database.InstallListener`)."""

    def on_queue_event(self, key: ObjectKey, now: float) -> None:
        """Update-queue observer (see :class:`repro.db.update_queue.UpdateQueue`)."""

    # -- results -----------------------------------------------------------
    def finalize(self, now: float) -> None:
        """Close all open stale intervals at the end of the run."""
        self._finalized = True

    def stale_fraction(self, klass: ObjectClass, duration: float) -> float:
        """The paper's fold metric for one partition."""
        if not self._finalized:
            raise RuntimeError("call finalize() before reading stale fractions")
        if duration <= 0:
            raise ValueError(f"duration must be > 0, got {duration}")
        count = len(self._require_database().partition(klass))
        if count == 0:
            return 0.0
        return self.stale_seconds[klass] / (duration * count)

    # -- mid-run snapshots --------------------------------------------------
    def snapshot_stale_seconds(self, now: float) -> dict[ObjectClass, float]:
        """Closed intervals plus the currently open tails, without mutating.

        The live runtime streams staleness readouts while the run is still
        going; subclasses extend the closed integrals with each interval
        that would be closed if the run ended at ``now``.  Repeated calls
        are safe (nothing is recorded) and :meth:`finalize` still produces
        the exact end-of-run integral afterwards.
        """
        return dict(self.stale_seconds)

    def snapshot_stale_fraction(
        self, klass: ObjectClass, now: float, duration: float
    ) -> float:
        """Mid-run fold metric over the last ``duration`` seconds."""
        if duration <= 0:
            return 0.0
        count = len(self._require_database().partition(klass))
        if count == 0:
            return 0.0
        return self.snapshot_stale_seconds(now)[klass] / (duration * count)

    def _require_database(self) -> Database:
        if self._database is None:
            raise RuntimeError("ledger is not bound to a database")
        return self._database

    def _require_queue(self) -> UpdateQueue:
        if self._queue is None:
            raise RuntimeError("ledger is not bound to an update queue")
        return self._queue


class MaxAgeLedger(FreshnessLedger):
    """Exact MA integral; ``use_arrival_time`` selects the MA-arrival variant."""

    def __init__(self, max_age: float, use_arrival_time: bool = False) -> None:
        super().__init__()
        if max_age <= 0:
            raise ValueError(f"max_age must be > 0, got {max_age}")
        self.max_age = max_age
        self.use_arrival_time = use_arrival_time

    def note_install(
        self,
        obj: DataObject,
        old_generation: float,
        old_arrival_time: float,
        old_install_time: float,
        now: float,
    ) -> None:
        anchor = old_arrival_time if self.use_arrival_time else old_generation
        stale_start = anchor + self.max_age
        if stale_start < old_install_time:
            stale_start = old_install_time
        if stale_start < self.measure_start:
            stale_start = self.measure_start
        if now > stale_start:
            self.stale_seconds[obj.klass] += now - stale_start

    def finalize(self, now: float) -> None:
        for obj in self._require_database().view_objects():
            anchor = obj.arrival_time if self.use_arrival_time else obj.generation_time
            stale_start = max(obj.install_time, anchor + self.max_age, self.measure_start)
            if now > stale_start:
                self.stale_seconds[obj.klass] += now - stale_start
        super().finalize(now)

    def snapshot_stale_seconds(self, now: float) -> dict[ObjectClass, float]:
        snapshot = dict(self.stale_seconds)
        for obj in self._require_database().view_objects():
            anchor = obj.arrival_time if self.use_arrival_time else obj.generation_time
            stale_start = max(obj.install_time, anchor + self.max_age, self.measure_start)
            if now > stale_start:
                snapshot[obj.klass] += now - stale_start
        return snapshot


class UnappliedUpdateLedger(FreshnessLedger):
    """Exact UU integral driven by queue and install events."""

    def __init__(self) -> None:
        super().__init__()
        self._stale_since: dict[ObjectKey, float] = {}

    def begin_measurement(self, now: float) -> None:
        super().begin_measurement(now)
        # Intervals already open restart at the measurement boundary.
        for key in self._stale_since:
            self._stale_since[key] = now

    def _refresh(self, key: ObjectKey, now: float) -> None:
        obj = self._require_database().view_object(*key)
        newest = self._require_queue().newest_generation_for(key)
        stale = newest is not None and newest > obj.generation_time
        open_since = self._stale_since.get(key)
        if stale and open_since is None:
            self._stale_since[key] = now
        elif not stale and open_since is not None:
            self.stale_seconds[key[0]] += now - open_since
            del self._stale_since[key]

    def on_queue_event(self, key: ObjectKey, now: float) -> None:
        self._refresh(key, now)

    def note_install(
        self,
        obj: DataObject,
        old_generation: float,
        old_arrival_time: float,
        old_install_time: float,
        now: float,
    ) -> None:
        # An install can push the database value past the newest queued
        # generation, closing the stale interval without a queue event.
        self._refresh(obj.key, now)

    def finalize(self, now: float) -> None:
        for key, since in self._stale_since.items():
            self.stale_seconds[key[0]] += now - since
        self._stale_since.clear()
        super().finalize(now)

    def snapshot_stale_seconds(self, now: float) -> dict[ObjectClass, float]:
        snapshot = dict(self.stale_seconds)
        for key, since in self._stale_since.items():
            snapshot[key[0]] += now - since
        return snapshot


class SampledLedger(FreshnessLedger):
    """Approximate integral by periodic sampling of an arbitrary checker.

    Used for the COMBINED staleness policy (whose exact union-of-intervals
    bookkeeping is not worth the complexity) and by tests as an independent
    cross-check of the exact ledgers.  The rectangle rule is applied over
    each sampling interval.
    """

    def __init__(
        self,
        checker: StalenessChecker,
        engine: Clock,
        interval: float = 0.1,
        end_time: float | None = None,
    ) -> None:
        super().__init__()
        if interval <= 0:
            raise ValueError(f"sampling interval must be > 0, got {interval}")
        self.checker = checker
        self.engine = engine
        self.interval = interval
        self.end_time = end_time
        self._last_sample = engine.now

    def begin_measurement(self, now: float) -> None:
        super().begin_measurement(now)
        self._last_sample = now

    def start(self) -> None:
        """Begin sampling (call once after binding)."""
        self.engine.schedule(self.interval, self._sample)

    def _sample(self) -> None:
        now = self.engine.now
        span = now - self._last_sample
        self._last_sample = now
        database = self._require_database()
        for klass in (ObjectClass.VIEW_LOW, ObjectClass.VIEW_HIGH):
            stale = 0
            for obj in database.partition(klass):
                if self.checker.is_stale(obj, now):
                    stale += 1
            self.stale_seconds[klass] += stale * span
        if self.end_time is None or now + self.interval <= self.end_time:
            self.engine.schedule(self.interval, self._sample)

    def snapshot_stale_seconds(self, now: float) -> dict[ObjectClass, float]:
        snapshot = dict(self.stale_seconds)
        span = now - self._last_sample
        if span > 0:
            database = self._require_database()
            for klass in (ObjectClass.VIEW_LOW, ObjectClass.VIEW_HIGH):
                stale = sum(
                    1
                    for obj in database.partition(klass)
                    if self.checker.is_stale(obj, now)
                )
                snapshot[klass] += stale * span
        return snapshot

    def finalize(self, now: float) -> None:
        # Count the tail interval since the last sample with current state.
        span = now - self._last_sample
        if span > 0:
            database = self._require_database()
            for klass in (ObjectClass.VIEW_LOW, ObjectClass.VIEW_HIGH):
                stale = sum(
                    1
                    for obj in database.partition(klass)
                    if self.checker.is_stale(obj, now)
                )
                self.stale_seconds[klass] += stale * span
            self._last_sample = now
        super().finalize(now)


def make_ledger(
    config: SimulationConfig,
    engine: Clock,
    checker: StalenessChecker,
) -> FreshnessLedger:
    """Build the ledger matching the configured staleness policy."""
    policy = config.staleness
    if policy is StalenessPolicy.MAX_AGE:
        return MaxAgeLedger(config.transactions.max_age)
    if policy is StalenessPolicy.MAX_AGE_ARRIVAL:
        return MaxAgeLedger(config.transactions.max_age, use_arrival_time=True)
    if policy is StalenessPolicy.UNAPPLIED_UPDATE:
        return UnappliedUpdateLedger()
    if policy is StalenessPolicy.COMBINED:
        return SampledLedger(checker, engine, interval=0.1, end_time=config.duration)
    raise ValueError(f"unknown staleness policy: {policy!r}")
