"""Invariant validation for simulation results.

Every :class:`~repro.metrics.results.SimulationResult` must satisfy a set
of structural invariants regardless of configuration: conservation laws,
probability bounds, and cross-metric consistency.  The property tests, the
benchmark harness, and downstream users can all call
:func:`check_invariants` instead of re-deriving the list.
"""

from __future__ import annotations

from repro.metrics.results import SimulationResult

#: Tolerance for floating-point comparisons between derived metrics.
_EPS = 1e-9


def check_invariants(result: SimulationResult) -> list[str]:
    """Return a list of violated-invariant descriptions (empty = healthy)."""
    violations: list[str] = []

    def expect(condition: bool, message: str) -> None:
        if not condition:
            violations.append(message)

    gap = result.update_conservation_gap()
    expect(gap == 0, f"update conservation gap is {gap}")
    gap = result.transaction_conservation_gap()
    expect(gap == 0, f"transaction conservation gap is {gap}")

    for name in ("p_md", "p_success", "p_suc_nontardy", "fold_low", "fold_high"):
        value = getattr(result, name)
        expect(0.0 <= value <= 1.0, f"{name}={value} outside [0, 1]")

    expect(
        result.p_success <= 1.0 - result.p_md + _EPS,
        f"p_success {result.p_success} exceeds 1 - p_md {1 - result.p_md}",
    )
    expect(
        result.transactions_committed_fresh <= result.transactions_committed,
        "more fresh commits than commits",
    )
    expect(
        0.0 <= result.rho_total <= 1.0 + 1e-6,
        f"total utilization {result.rho_total} outside [0, 1]",
    )
    expect(
        result.value_earned <= result.value_offered + _EPS,
        "earned more value than was offered",
    )
    expect(
        result.updates_applied + result.updates_skipped <= result.updates_arrived,
        "installed more updates than arrived",
    )
    expect(
        result.stale_reads <= result.view_reads,
        "more stale reads than reads",
    )
    expect(
        result.transactions_infeasible <= result.transactions_missed,
        "infeasible aborts exceed missed deadlines",
    )
    expect(result.duration > 0, f"non-positive duration {result.duration}")
    if result.updates_on_demand_scans == 0:
        expect(
            result.updates_on_demand_applied == 0,
            "on-demand applies without scans",
        )
    return violations


def assert_invariants(result: SimulationResult) -> None:
    """Raise AssertionError listing every violated invariant."""
    violations = check_invariants(result)
    if violations:
        raise AssertionError(
            "result violates invariants:\n" + "\n".join(f"- {v}" for v in violations)
        )
