"""Per-run counters: transactions, updates, and CPU attribution.

These collectors are plain counters updated by the controller on the hot
path; all derived quantities (rates, fractions) live on
:class:`repro.metrics.results.SimulationResult`.
"""

from __future__ import annotations


class TransactionLog:
    """Outcome accounting for transactions.

    Every arrived transaction ends in exactly one bucket:

    * ``committed`` — finished before its deadline (``committed_fresh`` of
      those read no stale data, ``committed_warned`` completed with the
      "red light" raised);
    * ``missed_deadline`` — aborted at its deadline or discarded by the
      feasible-deadline policy;
    * ``aborted_stale`` — aborted upon reading stale data (section 6.2);
    * or it is still ``in_flight`` when the run ends (excluded from the
      fraction denominators).
    """

    def __init__(self) -> None:
        self.arrived = 0
        self.committed = 0
        self.committed_fresh = 0
        self.committed_warned = 0
        self.missed_deadline = 0
        self.infeasible_aborts = 0
        self.aborted_stale = 0
        self.value_earned = 0.0
        self.value_offered = 0.0
        self.stale_reads = 0
        self.view_reads = 0
        self.committed_low = 0
        self.committed_high = 0

    def reset(self, live_transactions: int = 0) -> None:
        """Zero all counters at the warmup boundary.

        Args:
            live_transactions: Transactions currently in the system; they are
                re-counted as arrived so the conservation law
                ``arrived == finished + in_flight`` keeps holding.
        """
        self.__init__()
        self.arrived = live_transactions

    def note_arrival(self, value: float) -> None:
        self.arrived += 1
        self.value_offered += value

    def note_commit(self, value: float, read_stale: bool, warned: bool, high_value: bool) -> None:
        self.committed += 1
        self.value_earned += value
        if not read_stale:
            self.committed_fresh += 1
        if warned:
            self.committed_warned += 1
        if high_value:
            self.committed_high += 1
        else:
            self.committed_low += 1

    def note_missed_deadline(self, infeasible: bool) -> None:
        self.missed_deadline += 1
        if infeasible:
            self.infeasible_aborts += 1

    def note_stale_abort(self) -> None:
        self.aborted_stale += 1

    def note_view_read(self, stale: bool) -> None:
        self.view_reads += 1
        if stale:
            self.stale_reads += 1

    @property
    def finished(self) -> int:
        """Transactions with a final outcome."""
        return self.committed + self.missed_deadline + self.aborted_stale

    @property
    def in_flight(self) -> int:
        """Transactions still live when the run ended."""
        return self.arrived - self.finished


class UpdateAccounting:
    """Fate accounting for stream updates.

    Together with the queue/OS/database counters these satisfy the
    conservation law checked by the test suite::

        arrived == os_dropped + installed_applied + installed_skipped
                   + expired + overflowed + superseded
                   + (still in OS queue) + (still in update queue)
    """

    def __init__(self) -> None:
        self.arrived = 0
        self.received = 0
        self.enqueued = 0
        self.installed_applied = 0
        self.installed_skipped = 0
        self.on_demand_applied = 0
        self.on_demand_scans = 0
        self.queue_length_sum = 0.0
        self.queue_length_samples = 0

    def reset(self, pending_updates: int = 0) -> None:
        """Zero all counters at the warmup boundary.

        Args:
            pending_updates: Updates currently buffered anywhere in the
                system (OS queue, update queue, direct-install list, or an
                in-progress burst); re-counted as arrived so the
                conservation law keeps holding.
        """
        self.__init__()
        self.arrived = pending_updates

    def note_arrival(self) -> None:
        self.arrived += 1

    def note_received(self, count: int = 1) -> None:
        self.received += count

    def note_enqueued(self, count: int = 1) -> None:
        self.enqueued += count

    def note_installed(self, applied: bool) -> None:
        if applied:
            self.installed_applied += 1
        else:
            self.installed_skipped += 1

    def note_on_demand(self, applied: bool) -> None:
        self.on_demand_scans += 1
        if applied:
            self.on_demand_applied += 1

    def sample_queue_length(self, length: int) -> None:
        self.queue_length_sum += length
        self.queue_length_samples += 1

    @property
    def mean_queue_length(self) -> float:
        if self.queue_length_samples == 0:
            return 0.0
        return self.queue_length_sum / self.queue_length_samples


class CpuAccounting:
    """Busy-time attribution (paper Figure 3).

    Time is charged to ``transaction`` or ``update`` work; context-switch
    time is charged to the activity being started or restarted, exactly as
    the paper specifies.  On-demand scans and applies performed inside a
    transaction are charged to ``update`` (the paper observes OD "does spend
    some time installing updates" in its rho_u).
    """

    TRANSACTION = "transaction"
    UPDATE = "update"

    def __init__(self) -> None:
        self.busy_seconds = {self.TRANSACTION: 0.0, self.UPDATE: 0.0}
        self.context_switches = 0
        self.preemptions = 0

    def reset(self) -> None:
        """Zero the busy-time ledgers at the warmup boundary."""
        self.__init__()

    def charge(self, category: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot charge negative time: {seconds}")
        self.busy_seconds[category] += seconds

    def note_context_switch(self) -> None:
        self.context_switches += 1

    def note_preemption(self) -> None:
        self.preemptions += 1

    @property
    def transaction_seconds(self) -> float:
        return self.busy_seconds[self.TRANSACTION]

    @property
    def update_seconds(self) -> float:
        return self.busy_seconds[self.UPDATE]

    def utilization(self, duration: float) -> tuple[float, float]:
        """(rho_t, rho_u) over the run."""
        if duration <= 0:
            raise ValueError(f"duration must be > 0, got {duration}")
        return (
            self.busy_seconds[self.TRANSACTION] / duration,
            self.busy_seconds[self.UPDATE] / duration,
        )
