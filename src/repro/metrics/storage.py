"""Persist and compare simulation results.

Experiment campaigns want to save each run's metrics, reload them later,
and diff two runs (e.g. before/after a scheduler change).  Results
round-trip through plain JSON so they are greppable and diffable outside
Python too.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Iterable

from repro.metrics.results import SimulationResult


def result_to_dict(result: SimulationResult) -> dict:
    """A JSON-ready dictionary of one result."""
    return dataclasses.asdict(result)


def result_from_dict(payload: dict) -> SimulationResult:
    """Rebuild a result saved by :func:`result_to_dict`.

    Raises:
        ValueError: when required fields are missing or unknown fields are
            present (a saved file from an incompatible version).
    """
    field_names = {field.name for field in dataclasses.fields(SimulationResult)}
    provided = set(payload)
    missing = field_names - provided
    extra = provided - field_names
    if missing or extra:
        raise ValueError(
            f"incompatible result payload: missing={sorted(missing)} "
            f"extra={sorted(extra)}"
        )
    return SimulationResult(**payload)


def save_results(results: Iterable[SimulationResult], path: str | Path) -> int:
    """Write results to a JSON file; returns the number written."""
    payload = [result_to_dict(result) for result in results]
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))
    return len(payload)


def load_results(path: str | Path) -> list[SimulationResult]:
    """Load results written by :func:`save_results`."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, list):
        raise ValueError(f"{path}: expected a JSON list of results")
    return [result_from_dict(item) for item in payload]


def diff_results(
    before: SimulationResult,
    after: SimulationResult,
    atol: float = 0.0,
) -> dict[str, tuple[float, float]]:
    """Fields whose values differ between two results.

    Args:
        before, after: The results to compare.
        atol: Absolute tolerance under which numeric differences are
            ignored.

    Returns:
        Mapping field name -> (before, after) for every differing field.
    """
    differences: dict[str, tuple[float, float]] = {}
    for field in dataclasses.fields(SimulationResult):
        a = getattr(before, field.name)
        b = getattr(after, field.name)
        if isinstance(a, float) and isinstance(b, float):
            if abs(a - b) > atol:
                differences[field.name] = (a, b)
        elif a != b:
            differences[field.name] = (a, b)
    return differences
