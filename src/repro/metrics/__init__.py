"""Performance metrics (paper section 3.5).

The paper extends the traditional missed-deadline metrics with data
staleness: the time-averaged stale fractions ``fold_l``/``fold_h``, the
fraction of transactions that are both timely and fresh (``psuccess``), and
the average value per second (``AV``).  This subpackage holds the exact
staleness ledgers, the per-run counters, and the result/reporting types.
"""

from repro.metrics.collectors import CpuAccounting, TransactionLog, UpdateAccounting
from repro.metrics.freshness import (
    FreshnessLedger,
    MaxAgeLedger,
    SampledLedger,
    UnappliedUpdateLedger,
    make_ledger,
)
from repro.metrics.results import SimulationResult
from repro.metrics.report import format_table, format_result
from repro.metrics.storage import (
    diff_results,
    load_results,
    result_from_dict,
    result_to_dict,
    save_results,
)
from repro.metrics.validate import assert_invariants, check_invariants

__all__ = [
    "CpuAccounting",
    "FreshnessLedger",
    "MaxAgeLedger",
    "SampledLedger",
    "SimulationResult",
    "TransactionLog",
    "UnappliedUpdateLedger",
    "UpdateAccounting",
    "assert_invariants",
    "check_invariants",
    "diff_results",
    "format_result",
    "format_table",
    "load_results",
    "make_ledger",
    "result_from_dict",
    "result_to_dict",
    "save_results",
]
