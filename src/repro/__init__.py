"""repro — reproduction of Adelberg, Garcia-Molina & Kao (SIGMOD 1995),
"Applying Update Streams in a Soft Real-Time Database System".

The library simulates a soft real-time main-memory database that must both
run value/deadline-constrained transactions and install a high-volume
external update stream, and reproduces the paper's comparison of four
scheduling algorithms (UF, TF, SU, OD) under two staleness definitions
(Maximum Age and Unapplied Update).

Quickstart::

    from repro import baseline_config, run_simulation

    config = baseline_config(duration=100.0)
    for name in ("UF", "TF", "SU", "OD"):
        print(run_simulation(config, name).summary())
"""

from repro.config import (
    QueueDiscipline,
    SimulationConfig,
    StaleReadAction,
    StalenessPolicy,
    SystemParams,
    TransactionParams,
    UpdatePattern,
    UpdateStreamParams,
    baseline_config,
)
from repro.core import (
    ALGORITHMS,
    Simulation,
    make_algorithm,
    run_simulation,
)
from repro.metrics import SimulationResult, format_result, format_table

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "QueueDiscipline",
    "Simulation",
    "SimulationConfig",
    "SimulationResult",
    "StaleReadAction",
    "StalenessPolicy",
    "SystemParams",
    "TransactionParams",
    "UpdatePattern",
    "UpdateStreamParams",
    "baseline_config",
    "format_result",
    "format_table",
    "make_algorithm",
    "run_simulation",
]
