"""The paper's core contribution: update/transaction co-scheduling.

Contains the controller (paper section 3.1's three-process architecture
collapsed onto one simulated CPU), the live-transaction state machine, the
four scheduling algorithms of section 4 (UF, TF, SU, OD) plus the
future-work extensions, and the simulation facade.
"""

from repro.core.algorithms import (
    ALGORITHMS,
    FixedFraction,
    OnDemand,
    SchedulingAlgorithm,
    SplitUpdates,
    TransactionFirst,
    UpdateFirst,
    make_algorithm,
)
from repro.core.controller import Controller
from repro.core.sharding import Shard, ShardSet, build_shard_set, shard_config
from repro.core.simulator import Simulation, run_simulation
from repro.core.transaction import LiveTransaction, TransactionState

__all__ = [
    "ALGORITHMS",
    "Controller",
    "FixedFraction",
    "LiveTransaction",
    "OnDemand",
    "SchedulingAlgorithm",
    "Shard",
    "ShardSet",
    "Simulation",
    "SplitUpdates",
    "TransactionFirst",
    "TransactionState",
    "UpdateFirst",
    "build_shard_set",
    "make_algorithm",
    "run_simulation",
    "shard_config",
]
