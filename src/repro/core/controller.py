"""The controller process (paper section 3.1).

The paper's conceptual model has three process types — a controller, a
single update process, and one process per transaction — multiplexed on one
CPU.  This module collapses that onto a discrete-event *burst* model: the
controller decides, at every scheduling point, which activity owns the CPU
next and for how many instructions; the engine delivers the completion.

Scheduling points are: update arrival, transaction arrival, burst
completion, and transaction deadline expiry.  At each one the controller
first discards expired updates (constant time, front of the
generation-ordered queue), then asks the active
:class:`~repro.core.algorithms.base.SchedulingAlgorithm` to select work.

The cost model is the paper's Table 3: ``x_lookup`` to locate an object,
``x_update`` to apply a worthy update (skipped updates pay only the
lookup), ``x_queue * ln(n)`` per queue insert, ``x_scan * n`` per queue
scan, and ``x_switch`` per context switch, charged to the activity being
started or restarted.  A preemptive receive (Update-First interrupting a
running transaction) pays one extra switch, giving the paper's
``2 * x_switch``.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable

from repro.config import QueueDiscipline, SimulationConfig, StaleReadAction, StalenessPolicy
from repro.core.transaction import LiveTransaction, TransactionState, STEP_READ
from repro.db.database import Database
from repro.db.objects import DataObject, Update
from repro.db.os_queue import OSQueue
from repro.db.staleness import StalenessChecker
from repro.db.update_queue import UpdateQueue
from repro.metrics.collectors import CpuAccounting, TransactionLog, UpdateAccounting
from repro.metrics.freshness import FreshnessLedger
from repro.sim.clock import Clock
from repro.workload.transactions import TransactionSpec

# select_work outcomes
BUSY = "busy"    # a CPU burst was started
IDLE = "idle"    # nothing runnable
AGAIN = "again"  # an instantaneous action was taken; re-evaluate


class _Burst:
    """One CPU occupancy interval.

    ``on_done`` is invoked as ``on_done(*on_done_args)`` so completion
    callbacks can be bound methods instead of per-burst lambda closures
    (the allocation showed up in profiles of update-heavy runs).

    ``charges`` is None for an ordinary burst (``seconds`` is charged in
    one piece); a coalesced install batch carries the per-install charge
    amounts instead, replayed in order at completion so the CPU ledger
    accumulates bit-identically to the serial burst-per-install schedule.
    """

    __slots__ = ("category", "seconds", "start", "event", "on_done",
                 "on_done_args", "txn", "preemptible", "switch_seconds",
                 "charges")

    def __init__(self, category, seconds, start, event, on_done, on_done_args,
                 txn, preemptible, switch_seconds, charges=None):
        self.category = category
        self.seconds = seconds
        self.start = start
        self.event = event
        self.on_done = on_done
        self.on_done_args = on_done_args
        self.txn = txn
        self.preemptible = preemptible
        self.switch_seconds = switch_seconds
        self.charges = charges


class Controller:
    """Single-CPU scheduler of update installation and transactions."""

    def __init__(
        self,
        config: SimulationConfig,
        engine: Clock,
        algorithm,
        database: Database,
        os_queue: OSQueue,
        update_queue: UpdateQueue,
        checker: StalenessChecker,
        ledger: FreshnessLedger,
        transaction_log: TransactionLog,
        update_accounting: UpdateAccounting,
        cpu: CpuAccounting,
    ) -> None:
        self.config = config
        self.system = config.system
        self.engine = engine
        self.algorithm = algorithm
        self.database = database
        self.os_queue = os_queue
        self.update_queue = update_queue
        self.checker = checker
        self.ledger = ledger
        self.transaction_log = transaction_log
        self.update_accounting = update_accounting
        self.cpu = cpu
        # Set by ViewRegistry when the first eager view is registered;
        # installs then carry the view-refresh instructions in their burst.
        self.views = None

        self.ready: list[LiveTransaction] = []
        self.direct_installs: deque[Update] = deque()
        self._resume_txn: LiveTransaction | None = None
        self._busy: _Burst | None = None
        # Updates held by an in-progress burst (an install's subject, or a
        # receive batch awaiting its enqueue burst) — needed so the
        # conservation accounting stays exact at the end of the run.
        self._installing: Update | None = None
        self._receiving: list[Update] | None = None
        self._last_owner: object = None
        self._extra_switches = 0
        # Optional per-transaction completion hook (the live runtime uses it
        # to resolve submission handles); called with the finished
        # LiveTransaction after its outcome is recorded.  None costs nothing
        # on the simulator's hot path.
        self.outcome_listener: Callable[[LiveTransaction], None] | None = None

        self._stale_action = config.transactions.stale_read_action
        self._lifo = config.system.queue_discipline is QueueDiscipline.LIFO
        self._max_age = config.transactions.max_age
        # Queue expiry is only sound when staleness is exactly MA on
        # generation time (see DESIGN.md): under UU/COMBINED a queued update
        # still matters regardless of age, and under MA-arrival age is
        # measured from arrival, which the generation-ordered queue cannot
        # bound from the front.
        self._expiry_enabled = config.staleness is StalenessPolicy.MAX_AGE
        self._seconds = config.system.seconds
        algorithm.attach(self)

    # ------------------------------------------------------------------
    # Arrival hooks (called by the workload generators)
    # ------------------------------------------------------------------
    def on_update_arrival(self, update: Update) -> None:
        """Network delivery of one stream update (engine callback)."""
        self.update_accounting.note_arrival()
        if not self.os_queue.offer(update):
            return  # kernel dropped it; the OS queue counts the drop
        self.algorithm.on_update_arrival(self, update)

    def on_transaction_arrival(self, spec: TransactionSpec) -> None:
        """Arrival of one transaction (engine callback)."""
        self.transaction_log.note_arrival(spec.value)
        txn = LiveTransaction(spec, self.config.transactions, self.system)
        txn.deadline_event = self.engine.schedule_at(
            txn.deadline, self._deadline_fired, txn
        )
        self.ready.append(txn)
        if self._busy is None:
            self.dispatch()
        elif (
            self.system.transaction_preemption
            and self._busy.preemptible
            and self._busy.txn is not None
            and txn.value_density() > self._busy.txn.value_density()
        ):
            self._preempt_transaction(to_ready=True)
            self.dispatch()

    # ------------------------------------------------------------------
    # The scheduling loop
    # ------------------------------------------------------------------
    @property
    def idle(self) -> bool:
        """True when no CPU burst is in progress."""
        return self._busy is None

    @property
    def transaction_burst_in_progress(self) -> bool:
        """True when the CPU is running a preemptible transaction step."""
        busy = self._busy
        return busy is not None and busy.preemptible and busy.txn is not None

    def dispatch(self) -> None:
        """Run the scheduling loop until a burst starts or nothing remains."""
        if self._busy is not None:
            return
        while True:
            self._expire_updates()
            status = self.algorithm.select_work(self)
            if status is not AGAIN:
                return

    def _expire_updates(self) -> None:
        if self._expiry_enabled and self.update_queue:
            self.update_queue.expire_older_than(
                self.engine.now - self._max_age, self.engine.now
            )

    # ------------------------------------------------------------------
    # Work primitives used by the algorithms
    # ------------------------------------------------------------------
    def start_best_transaction(self) -> str:
        """Run the preempted transaction or the densest feasible ready one."""
        now = self.engine.now
        if self._resume_txn is not None:
            txn = self._resume_txn
            self._resume_txn = None
            if self.system.feasible_deadline and not txn.is_feasible(now):
                self._finish_missed(txn, infeasible=True)
                return AGAIN
            return self._start_transaction_burst(txn)
        while self.ready:
            txn = max(self.ready, key=lambda t: (t.value_density(), -t.spec.seq))
            self.ready.remove(txn)
            if self.system.feasible_deadline and not txn.is_feasible(now):
                self._finish_missed(txn, infeasible=True)
                continue
            return self._start_transaction_burst(txn)
        return IDLE

    def has_runnable_transaction(self) -> bool:
        """Any transaction waiting for the CPU (ignoring feasibility)?"""
        return self._resume_txn is not None or bool(self.ready)

    def drain_os_to_direct(self) -> str:
        """Receive all OS-queued updates for direct installation (UF path)."""
        updates = self.os_queue.receive_all()
        if not updates:
            return IDLE
        self.update_accounting.note_received(len(updates))
        self.direct_installs.extend(updates)
        return AGAIN

    def drain_os_split(self) -> str:
        """Receive all OS-queued updates, split by importance (SU path).

        High-importance updates go to the direct-install list; low-importance
        updates are enqueued (paying the queue-insert cost).
        """
        updates = self.os_queue.receive_all()
        if not updates:
            return IDLE
        self.update_accounting.note_received(len(updates))
        lows = []
        for update in updates:
            if self.algorithm.is_high_importance(update):
                self.direct_installs.append(update)
            else:
                lows.append(update)
        if not lows:
            return AGAIN
        return self._enqueue_batch(lows)

    def drain_os_to_queue(self) -> str:
        """Receive all OS-queued updates into the update queue (TF/OD path)."""
        updates = self.os_queue.receive_all()
        if not updates:
            return IDLE
        self.update_accounting.note_received(len(updates))
        return self._enqueue_batch(updates)

    def _enqueue_batch(self, updates: list[Update]) -> str:
        cost = self._enqueue_cost_seconds(len(updates))
        if cost > 0:
            self._receiving = updates
            self._start_burst(
                cost,
                CpuAccounting.UPDATE,
                self._finish_enqueue,
                owner="update-process",
                args=(updates,),
            )
            return BUSY
        self._finish_enqueue(updates, then_dispatch=False)
        return AGAIN

    def _enqueue_cost_seconds(self, count: int) -> float:
        """Total x_queue * ln(n) cost of inserting ``count`` updates."""
        x_queue = self.system.x_queue
        if x_queue == 0 or count == 0:
            return 0.0
        size = len(self.update_queue)
        instructions = 0.0
        for i in range(count):
            n = size + i + 1
            instructions += x_queue * math.log(max(n, 2))
        return self._seconds(instructions)

    def _finish_enqueue(self, updates: list[Update], then_dispatch: bool = True) -> None:
        now = self.engine.now
        self._receiving = None
        for update in updates:
            self.update_queue.push(update, now)
            self.update_accounting.note_enqueued()
        self.update_accounting.sample_queue_length(len(self.update_queue))
        if then_dispatch:
            self.dispatch()

    def start_direct_install(self) -> str:
        """Install the next directly-received update (UF / SU-high path)."""
        if not self.direct_installs:
            return IDLE
        update = self.direct_installs.popleft()
        if self.os_queue:
            return self._start_install_burst(update)
        return self._start_install_batch(update, 0.0, from_queue=False)

    def start_install_from_queue(self) -> str:
        """Pop per the service discipline and install (TF/OD/SU-low path)."""
        # Expired updates are discarded at every scheduling point (paper
        # section 4.2); re-check here because a receive earlier in the same
        # scheduling pass may have enqueued already-expired updates.
        self._expire_updates()
        update = self.update_queue.pop_next(self._lifo, self.engine.now)
        if update is None:
            return IDLE
        # Popping also pays the queue-removal cost x_queue * ln(n).
        extra = 0.0
        if self.system.x_queue:
            n = max(len(self.update_queue) + 1, 2)
            extra = self._seconds(self.system.x_queue * math.log(n))
        if self.has_runnable_transaction() or self.os_queue or self.direct_installs:
            # At the next burst boundary the algorithm may pick something
            # other than "install the next queued update" (FX can flip back
            # to transactions; SU serves direct installs first) — install
            # one update at a time so every decision point is honored.
            return self._start_install_burst(update, extra_seconds=extra)
        return self._start_install_batch(update, extra, from_queue=True)

    def _install_seconds(self, update: Update) -> float:
        """CPU seconds to install one update (Table 3 worthiness-aware)."""
        cost = self.system.x_lookup
        if self.database.would_apply(update):
            cost += self.system.x_update
            if self.database.has_transformer(update.klass):
                cost += self.system.x_transform
            if self.views is not None:
                cost += self.views.eager_refresh_instructions(update.klass)
        return self._seconds(cost)

    def _start_install_burst(self, update: Update, extra_seconds: float = 0.0) -> str:
        self._installing = update
        self._start_burst(
            self._install_seconds(update) + extra_seconds,
            CpuAccounting.UPDATE,
            self._finish_install,
            owner="update-process",
            args=(update,),
        )
        return BUSY

    def _start_install_batch(self, first: Update, first_extra: float,
                             from_queue: bool) -> str:
        """Coalesce consecutive installs into one burst with one event.

        When the CPU would deterministically install update after update
        until the next engine event (no runnable transaction, no pending
        receive — checked by the callers), the serial schedule is a chain
        of bursts whose only engine interaction is their own completion
        events.  This assembles that chain eagerly: each install is applied
        at the virtual time its serial burst would have completed (every
        ledger/database hook takes an explicit ``now``), per-boundary queue
        expiry is replayed, and a single completion event fires at the time
        the last serial burst would have finished, charging the per-install
        costs in serial order.  All metrics are bit-identical to the
        one-event-per-install schedule; only ``events_dispatched`` shrinks.

        The batch never extends to or past the next pending engine event /
        the end of the run_until segment, so no other code can observe the
        intermediate state and arrivals/deadlines/warmup interleave exactly
        as they would serially.
        """
        if self._busy is not None:
            raise RuntimeError("CPU is already busy")
        engine = self.engine
        horizon = engine.run_end
        if horizon is not None:
            next_event = engine.peek_time()
            if next_event is not None and next_event < horizon:
                horizon = next_event
        start = engine.now
        switch_seconds = self._take_switch_seconds("update-process")
        first_seconds = self._install_seconds(first) + first_extra
        total = first_seconds + switch_seconds
        end = start + total
        if horizon is None or end + first_seconds >= horizon:
            # The first install runs into the next scheduling point (or we
            # are outside run_until), or the horizon leaves no room for a
            # second one — a one-install "batch" is pure assembly overhead.
            # Keep the plain single burst, which may legitimately span
            # events or never complete.
            event = engine.schedule_at(end, self._burst_done)
            self._installing = first
            self._busy = _Burst(
                CpuAccounting.UPDATE, total, start, event,
                self._finish_install, (first,), None, False, switch_seconds,
            )
            return BUSY
        database = self.database
        accounting = self.update_accounting
        queue = self.update_queue
        charges = [total]
        accounting.note_installed(database.install(first, end))
        while True:
            if self._expiry_enabled and queue:
                queue.expire_older_than(end - self._max_age, end)
            if from_queue:
                update = queue.peek_next(self._lifo)
                if update is None:
                    break
                seconds = self._install_seconds(update)
                if self.system.x_queue:
                    n = max(len(queue), 2)
                    seconds += self._seconds(self.system.x_queue * math.log(n))
            else:
                if not self.direct_installs:
                    break
                update = self.direct_installs[0]
                seconds = self._install_seconds(update)
            nxt_end = end + seconds
            if nxt_end >= horizon:
                break
            if from_queue:
                queue.pop_next(self._lifo, end)
            else:
                self.direct_installs.popleft()
            end = nxt_end
            accounting.note_installed(database.install(update, end))
            charges.append(seconds)
        event = engine.schedule_at(end, self._burst_done)
        self._busy = _Burst(
            CpuAccounting.UPDATE, end - start, start, event,
            self.dispatch, (), None, False, switch_seconds, charges,
        )
        return BUSY

    def _finish_install(self, update: Update) -> None:
        self._installing = None
        applied = self.database.install(update, self.engine.now)
        self.update_accounting.note_installed(applied)
        self.dispatch()

    def unsettled_updates(self) -> int:
        """Updates held by an in-progress burst (for conservation checks)."""
        count = 1 if self._installing is not None else 0
        if self._receiving is not None:
            count += len(self._receiving)
        return count

    def live_transaction_count(self) -> int:
        """Transactions currently in the system (ready, preempted, running)."""
        count = len(self.ready)
        if self._resume_txn is not None:
            count += 1
        if self._busy is not None and self._busy.txn is not None:
            count += 1
        return count

    # ------------------------------------------------------------------
    # Transaction execution
    # ------------------------------------------------------------------
    def _start_transaction_burst(self, txn: LiveTransaction) -> str:
        txn.state = TransactionState.RUNNING
        if txn.start_time is None:
            txn.start_time = self.engine.now
        seconds = txn.next_burst_seconds()
        self._start_burst(
            seconds,
            CpuAccounting.TRANSACTION,
            self._transaction_step_done,
            owner=("txn", txn.spec.seq),
            args=(txn,),
            txn=txn,
            preemptible=True,
        )
        return BUSY

    def _transaction_step_done(self, txn: LiveTransaction) -> None:
        kind, object_id = txn.complete_step()
        if kind == STEP_READ:
            self._after_view_read(txn, object_id)
            return
        self._continue_transaction(txn)

    def _continue_transaction(self, txn: LiveTransaction) -> None:
        if txn.done:
            self._commit(txn)
            self.dispatch()
            return
        # Transactions are non-preemptive among themselves: the running
        # transaction keeps the CPU for its next step without re-dispatch.
        self._start_transaction_burst(txn)

    # -- view reads and staleness ------------------------------------------
    def _after_view_read(self, txn: LiveTransaction, object_id: int) -> None:
        obj = self.database.view_object(txn.spec.view_class, object_id)
        if self.algorithm.on_demand:
            self._on_demand_read(txn, obj)
            return
        if (
            self._stale_action is not StaleReadAction.IGNORE
            and self.checker.requires_queue_check
        ):
            # Run-time detection under UU requires scanning the queue.
            scan = self._seconds(self.system.x_scan * len(self.update_queue))
            if scan > 0:
                self._start_burst(
                    scan,
                    CpuAccounting.UPDATE,
                    self._resolve_read_after_scan,
                    owner=("txn", txn.spec.seq),
                    args=(txn, obj),
                    txn=txn,
                )
                return
        self._resolve_read(txn, obj, self.checker.is_stale(obj, self.engine.now))

    def _resolve_read_after_scan(self, txn: LiveTransaction, obj: DataObject) -> None:
        """Staleness is judged when the scan burst *completes*, not starts."""
        self._resolve_read(txn, obj, self.checker.is_stale(obj, self.engine.now))

    def _on_demand_read(self, txn: LiveTransaction, obj: DataObject) -> None:
        if not self.checker.requires_queue_check:
            # MA: the timestamp answers the staleness question for free.
            if not self.checker.is_stale(obj, self.engine.now):
                self._resolve_read(txn, obj, False)
                return
        # Either the read found stale data (MA) or the scan *is* the
        # staleness check (UU): pay x_scan per queued update.
        scan = self._seconds(self.system.x_scan * len(self.update_queue))
        if scan > 0:
            self._start_burst(
                scan,
                CpuAccounting.UPDATE,
                self._on_demand_after_scan,
                owner=("txn", txn.spec.seq),
                args=(txn, obj),
                txn=txn,
            )
            return
        self._on_demand_after_scan(txn, obj)

    def _on_demand_after_scan(self, txn: LiveTransaction, obj: DataObject) -> None:
        now = self.engine.now
        candidate = self.update_queue.newest_for(obj.key)
        if candidate is not None and self.checker.freshens(candidate, obj, now):
            apply_cost = self.system.x_update
            if self.database.has_transformer(candidate.klass):
                apply_cost += self.system.x_transform
            apply_seconds = self._seconds(apply_cost)
            self._start_burst(
                apply_seconds,
                CpuAccounting.UPDATE,
                self._on_demand_apply,
                owner=("txn", txn.spec.seq),
                args=(txn, obj, candidate),
                txn=txn,
            )
            return
        self.update_accounting.note_on_demand(applied=False)
        self._resolve_read(txn, obj, self.checker.is_stale(obj, now))

    def _on_demand_apply(
        self, txn: LiveTransaction, obj: DataObject, update: Update
    ) -> None:
        now = self.engine.now
        self.update_queue.remove(update, now)
        applied = self.database.install(update, now)
        self.update_accounting.note_installed(applied)
        self.update_accounting.note_on_demand(applied=True)
        self._resolve_read(txn, obj, self.checker.is_stale(obj, now))

    def _resolve_read(self, txn: LiveTransaction, obj: DataObject, stale: bool) -> None:
        self.transaction_log.note_view_read(stale)
        if stale:
            txn.read_stale = True
            if self._stale_action is StaleReadAction.ABORT:
                self._abort_stale(txn)
                self.dispatch()
                return
            if self._stale_action is StaleReadAction.WARN:
                txn.warned = True
        self._continue_transaction(txn)

    # -- transaction outcomes -----------------------------------------------
    def _commit(self, txn: LiveTransaction) -> None:
        txn.cancel_deadline()
        txn.state = TransactionState.COMMITTED
        txn.finish_time = self.engine.now
        self.transaction_log.note_commit(
            txn.spec.value, txn.read_stale, txn.warned, txn.spec.high_value
        )
        if self.outcome_listener is not None:
            self.outcome_listener(txn)

    def _abort_stale(self, txn: LiveTransaction) -> None:
        txn.cancel_deadline()
        txn.state = TransactionState.ABORTED_STALE
        txn.finish_time = self.engine.now
        self.transaction_log.note_stale_abort()
        if self.outcome_listener is not None:
            self.outcome_listener(txn)

    def _finish_missed(self, txn: LiveTransaction, infeasible: bool) -> None:
        txn.cancel_deadline()
        txn.state = TransactionState.MISSED
        txn.finish_time = self.engine.now
        self.transaction_log.note_missed_deadline(infeasible)
        if self.outcome_listener is not None:
            self.outcome_listener(txn)

    def shed_infeasible(self) -> int:
        """Discard every ready transaction that can no longer make its deadline.

        This is the feasible-deadline policy applied eagerly, outside a
        scheduling point — the live runtime's watchdog invokes it to shed
        load when the system falls behind real time, instead of letting a
        doomed backlog steal CPU from transactions that can still commit.

        Returns:
            The number of transactions discarded.
        """
        now = self.engine.now
        doomed = [txn for txn in self.ready if not txn.is_feasible(now)]
        for txn in doomed:
            self.ready.remove(txn)
            self._finish_missed(txn, infeasible=True)
        return len(doomed)

    def _deadline_fired(self, txn: LiveTransaction) -> None:
        txn.deadline_event = None
        if txn.state.finished:
            return
        if self._busy is not None and self._busy.txn is txn:
            self._cancel_busy_burst()
        if txn is self._resume_txn:
            self._resume_txn = None
        elif txn in self.ready:
            self.ready.remove(txn)
        self._finish_missed(txn, infeasible=False)
        if self._busy is None:
            self.dispatch()

    # ------------------------------------------------------------------
    # Burst mechanics
    # ------------------------------------------------------------------
    def _take_switch_seconds(self, owner: object) -> float:
        """Context-switch cost (and bookkeeping) for handing the CPU over."""
        switch_seconds = 0.0
        if owner != self._last_owner:
            switches = 1 + self._extra_switches
            switch_seconds = self._seconds(self.system.x_switch) * switches
            self.cpu.note_context_switch()
            self._last_owner = owner
        self._extra_switches = 0
        return switch_seconds

    def _start_burst(
        self,
        seconds: float,
        category: str,
        on_done: Callable[..., None],
        owner: object,
        args: tuple = (),
        txn: LiveTransaction | None = None,
        preemptible: bool = False,
    ) -> None:
        if self._busy is not None:
            raise RuntimeError("CPU is already busy")
        switch_seconds = self._take_switch_seconds(owner)
        total = seconds + switch_seconds
        event = self.engine.schedule(total, self._burst_done)
        self._busy = _Burst(
            category, total, self.engine.now, event, on_done, args, txn,
            preemptible, switch_seconds,
        )

    def _burst_done(self) -> None:
        burst = self._busy
        if burst is None:  # pragma: no cover - engine/controller invariant
            raise RuntimeError("burst completion with no busy burst")
        self._busy = None
        charges = burst.charges
        if charges is None:
            self.cpu.charge(burst.category, burst.seconds)
        else:
            # Coalesced install batch: replay the per-install charges in
            # serial order so the float accumulation is bit-identical to
            # the burst-per-install schedule.
            charge = self.cpu.charge
            category = burst.category
            for seconds in charges:
                charge(category, seconds)
        burst.on_done(*burst.on_done_args)

    def _cancel_busy_burst(self) -> None:
        """Stop the in-progress burst, charging the elapsed portion."""
        burst = self._busy
        if burst is None:
            return
        burst.event.cancel()
        elapsed = self.engine.now - burst.start
        self.cpu.charge(burst.category, elapsed)
        self._busy = None

    def preempt_running_transaction(self) -> None:
        """Suspend the running transaction for a priority update (UF/SU).

        The preempted transaction resumes after the update work drains.  The
        receive-with-preemption overhead is ``2 * x_switch`` (paper section
        3.3): one switch is added here, the other is the ordinary start-up
        switch of the update burst that follows.
        """
        burst = self._busy
        if burst is None or not burst.preemptible or burst.txn is None:
            raise RuntimeError("no preemptible transaction burst in progress")
        self._preempt_transaction(to_ready=False)
        self._extra_switches = 1
        self.cpu.note_preemption()

    def _preempt_transaction(self, to_ready: bool) -> None:
        burst = self._busy
        burst.event.cancel()
        elapsed = self.engine.now - burst.start
        self.cpu.charge(burst.category, elapsed)
        txn = burst.txn
        work_elapsed = max(0.0, elapsed - burst.switch_seconds)
        txn.note_burst_progress(work_elapsed)
        self._busy = None
        if to_ready:
            txn.state = TransactionState.READY
            self.ready.append(txn)
            self.cpu.note_preemption()
        else:
            txn.state = TransactionState.PREEMPTED
            self._resume_txn = txn

    def note_measurement_start(self, now: float) -> None:
        """Split the in-flight burst at the warmup boundary.

        The CPU ledger is reset at ``now``; the part of the current burst
        that already ran must not be charged into the measurement window.
        """
        burst = self._busy
        if burst is not None:
            elapsed = now - burst.start
            burst.seconds = max(0.0, burst.seconds - elapsed)
            burst.start = now

    # ------------------------------------------------------------------
    # End of run
    # ------------------------------------------------------------------
    def finalize(self, now: float) -> None:
        """Charge the partially-elapsed busy burst at the end of the run."""
        burst = self._busy
        if burst is not None:
            elapsed = now - burst.start
            if elapsed > 0:
                self.cpu.charge(burst.category, min(elapsed, burst.seconds))
