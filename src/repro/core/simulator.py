"""Simulation facade: wire the model together and run it.

:func:`run_simulation` is the library's main entry point::

    from repro import baseline_config, run_simulation

    result = run_simulation(baseline_config(duration=100.0), "OD")
    print(result.summary())

The model itself (controller, queues, ledgers, collectors) is built by
:mod:`repro.core.sharding` — one pipeline per shard on a single virtual
clock, with ``shards=1`` (the default) reproducing the classic single
pipeline bit-for-bit.  The wiring is shared with the wall-clock runtime
in :mod:`repro.live`: a Simulation is "the wired shard set plus a
virtual clock plus the Poisson workload generators".
"""

from __future__ import annotations

from dataclasses import replace

from repro.config import SimulationConfig
from repro.core.algorithms.base import SchedulingAlgorithm
from repro.core.sharding import build_shard_set
from repro.metrics.results import SimulationResult
from repro.sim.engine import Engine
from repro.sim.streams import StreamFamily
from repro.workload.transactions import TransactionGenerator
from repro.workload.updates import UpdateStreamGenerator


class Simulation:
    """A fully wired simulation run.

    Building the object constructs the whole model (engine, databases,
    queues, staleness machinery, controllers, workload generators);
    calling :meth:`run` executes it and returns the metrics.  A
    Simulation is single-use: running twice raises.

    With ``shards > 1`` the keyspace is hash-partitioned over N
    independent pipelines that share the virtual clock (the model of one
    core per shard); the workload generators draw against the *global*
    config — the same arrival sequence as the unsharded run — and the
    shard router delivers each arrival to its owner.  The convenience
    attributes (``controller``, ``database``, ...) refer to shard 0.
    """

    def __init__(
        self,
        config: SimulationConfig,
        algorithm: str | SchedulingAlgorithm = "TF",
        shards: int = 1,
        **algorithm_kwargs,
    ) -> None:
        self.engine = Engine()
        self.shard_set = build_shard_set(
            config, algorithm, self.engine, shards=shards, **algorithm_kwargs
        )
        parts = self.shard_set.shards[0].parts
        self._parts = parts
        self.config = config
        self.algorithm = parts.algorithm
        self.update_queue = parts.update_queue
        self.checker = parts.checker
        self.ledger = parts.ledger
        self.database = parts.database
        self.os_queue = parts.os_queue
        self.transaction_log = parts.transaction_log
        self.update_accounting = parts.update_accounting
        self.cpu = parts.cpu
        self.controller = parts.controller
        self.views = parts.views

        self.streams = StreamFamily(config.seed)
        self.update_generator = UpdateStreamGenerator(
            config, self.engine, self.streams, self.shard_set.route_update
        )
        self.transaction_generator = TransactionGenerator(
            config, self.engine, self.streams, self.shard_set.route_spec
        )
        self._ran = False

    def register_view(self, spec) -> None:
        """Register a derived view (a :class:`~repro.db.views.ViewSpec`
        or its CLI string form) on every shard before running."""
        from repro.db.views import ViewSpec

        if isinstance(spec, str):
            spec = ViewSpec.parse(spec)
        self.shard_set.register_view(spec, self.engine.now)

    def run(self) -> SimulationResult:
        """Execute the run and return its metrics."""
        if self._ran:
            raise RuntimeError("a Simulation object is single-use; build a new one")
        self._ran = True
        self.update_generator.start()
        self.transaction_generator.start()
        self.shard_set.start_ledgers()
        if self.config.warmup > 0:
            self.engine.schedule_at(self.config.warmup, self._warmup_reset)
        duration = self.config.duration
        self.engine.run_until(duration)
        self.shard_set.finalize(duration)
        return self._collect(duration - self.config.warmup)

    def run_scripted(self, updates=(), transactions=()) -> SimulationResult:
        """Run against explicit workloads instead of the generators.

        Useful for deterministic demos and tests: the given
        :class:`~repro.db.objects.Update` records and
        :class:`~repro.workload.transactions.TransactionSpec` specs are
        delivered at their own arrival times; nothing else arrives.
        """
        if self._ran:
            raise RuntimeError("a Simulation object is single-use; build a new one")
        self._ran = True
        for update in updates:
            self.engine.schedule_at(
                update.arrival_time, self.shard_set.route_update, update
            )
        for spec in transactions:
            self.engine.schedule_at(
                spec.arrival_time, self.shard_set.route_spec, spec
            )
        self.shard_set.start_ledgers()
        if self.config.warmup > 0:
            self.engine.schedule_at(self.config.warmup, self._warmup_reset)
        duration = self.config.duration
        self.engine.run_until(duration)
        self.shard_set.finalize(duration)
        return self._collect(duration - self.config.warmup)

    def _warmup_reset(self) -> None:
        """Discard everything measured during warmup (content stays live)."""
        self.shard_set.reset_measurement(self.engine.now)

    def _collect(self, duration: float) -> SimulationResult:
        result = self.shard_set.collect(duration)
        if len(self.shard_set) > 1:
            # Every shard shares this engine, so the merge's summed
            # dispatch count overstates by a factor of N; report the
            # engine's true total.
            result = replace(
                result, events_dispatched=self.engine.events_dispatched
            )
        return result


def run_simulation(
    config: SimulationConfig,
    algorithm: str | SchedulingAlgorithm = "TF",
    shards: int = 1,
    views=(),
    **algorithm_kwargs,
) -> SimulationResult:
    """Build and run one simulation; see :class:`Simulation`.

    Args:
        views: Optional derived views to register before the run —
            :class:`~repro.db.views.ViewSpec` objects or their CLI string
            forms (``NAME=KIND:PARTITION[,opt=...]``).
    """
    simulation = Simulation(config, algorithm, shards=shards, **algorithm_kwargs)
    for spec in views:
        simulation.register_view(spec)
    return simulation.run()
