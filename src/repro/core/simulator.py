"""Simulation facade: wire the model together and run it.

:func:`run_simulation` is the library's main entry point::

    from repro import baseline_config, run_simulation

    result = run_simulation(baseline_config(duration=100.0), "OD")
    print(result.summary())
"""

from __future__ import annotations

from repro.config import SimulationConfig
from repro.core.algorithms.base import SchedulingAlgorithm
from repro.core.algorithms.registry import make_algorithm
from repro.core.controller import Controller
from repro.db.database import Database
from repro.db.os_queue import OSQueue
from repro.db.staleness import make_staleness_checker
from repro.db.update_queue import PartitionedUpdateQueue, UpdateQueue
from repro.metrics.collectors import CpuAccounting, TransactionLog, UpdateAccounting
from repro.metrics.freshness import SampledLedger, make_ledger
from repro.metrics.results import SimulationResult
from repro.sim.engine import Engine
from repro.sim.streams import StreamFamily
from repro.workload.transactions import TransactionGenerator
from repro.workload.updates import UpdateStreamGenerator


class Simulation:
    """A fully wired simulation run.

    Building the object constructs the whole model (engine, database,
    queues, staleness machinery, controller, workload generators); calling
    :meth:`run` executes it and returns the metrics.  A Simulation is
    single-use: running twice raises.
    """

    def __init__(
        self,
        config: SimulationConfig,
        algorithm: str | SchedulingAlgorithm = "TF",
        **algorithm_kwargs,
    ) -> None:
        config.validate()
        self.config = config
        if isinstance(algorithm, str):
            algorithm = make_algorithm(algorithm, **algorithm_kwargs)
        elif algorithm_kwargs:
            raise ValueError("algorithm kwargs require an algorithm name")
        self.algorithm = algorithm

        self.engine = Engine()
        self.streams = StreamFamily(config.seed)

        queue_class = (
            PartitionedUpdateQueue
            if algorithm.wants_partitioned_queue
            else UpdateQueue
        )
        self.update_queue = queue_class(
            config.system.update_queue_max,
            indexed=config.system.indexed_update_queue,
        )
        self.checker = make_staleness_checker(config, self.update_queue)
        self.ledger = make_ledger(config, self.engine, self.checker)
        self.database = Database.from_config(config, install_listener=self.ledger)
        self.ledger.bind(self.database, self.update_queue)
        self.update_queue.observer = self.ledger.on_queue_event
        self.os_queue = OSQueue(config.system.os_queue_max)

        self.transaction_log = TransactionLog()
        self.update_accounting = UpdateAccounting()
        self.cpu = CpuAccounting()

        self.controller = Controller(
            config=config,
            engine=self.engine,
            algorithm=self.algorithm,
            database=self.database,
            os_queue=self.os_queue,
            update_queue=self.update_queue,
            checker=self.checker,
            ledger=self.ledger,
            transaction_log=self.transaction_log,
            update_accounting=self.update_accounting,
            cpu=self.cpu,
        )

        self.update_generator = UpdateStreamGenerator(
            config, self.engine, self.streams, self.controller.on_update_arrival
        )
        self.transaction_generator = TransactionGenerator(
            config, self.engine, self.streams, self.controller.on_transaction_arrival
        )
        self._ran = False

    def run(self) -> SimulationResult:
        """Execute the run and return its metrics."""
        if self._ran:
            raise RuntimeError("a Simulation object is single-use; build a new one")
        self._ran = True
        self.update_generator.start()
        self.transaction_generator.start()
        if isinstance(self.ledger, SampledLedger):
            self.ledger.start()
        if self.config.warmup > 0:
            self.engine.schedule_at(self.config.warmup, self._warmup_reset)
        duration = self.config.duration
        self.engine.run_until(duration)
        self.controller.finalize(duration)
        self.ledger.finalize(duration)
        return self._collect(duration - self.config.warmup)

    def run_scripted(self, updates=(), transactions=()) -> SimulationResult:
        """Run against explicit workloads instead of the generators.

        Useful for deterministic demos and tests: the given
        :class:`~repro.db.objects.Update` records and
        :class:`~repro.workload.transactions.TransactionSpec` specs are
        delivered at their own arrival times; nothing else arrives.
        """
        if self._ran:
            raise RuntimeError("a Simulation object is single-use; build a new one")
        self._ran = True
        for update in updates:
            self.engine.schedule_at(
                update.arrival_time, self.controller.on_update_arrival, update
            )
        for spec in transactions:
            self.engine.schedule_at(
                spec.arrival_time, self.controller.on_transaction_arrival, spec
            )
        if isinstance(self.ledger, SampledLedger):
            self.ledger.start()
        if self.config.warmup > 0:
            self.engine.schedule_at(self.config.warmup, self._warmup_reset)
        duration = self.config.duration
        self.engine.run_until(duration)
        self.controller.finalize(duration)
        self.ledger.finalize(duration)
        return self._collect(duration - self.config.warmup)

    def _warmup_reset(self) -> None:
        """Discard everything measured during warmup (content stays live)."""
        now = self.engine.now
        self.transaction_log.reset(self.controller.live_transaction_count())
        pending = (
            len(self.os_queue)
            + len(self.controller.direct_installs)
            + self.controller.unsettled_updates()
            + len(self.update_queue)
        )
        self.update_accounting.reset(pending)
        self.cpu.reset()
        self.controller.note_measurement_start(now)
        self.os_queue.reset_counters()
        self.update_queue.reset_counters()
        self.ledger.begin_measurement(now)

    def _collect(self, duration: float) -> SimulationResult:
        log = self.transaction_log
        finished = log.finished
        p_md = 1.0 - (log.committed / finished) if finished else 0.0
        p_success = (log.committed_fresh / finished) if finished else 0.0
        p_suc_nontardy = (
            log.committed_fresh / log.committed if log.committed else 0.0
        )
        rho_t, rho_u = self.cpu.utilization(duration)
        from repro.db.objects import ObjectClass

        return SimulationResult(
            algorithm=self.algorithm.name,
            staleness=self.config.staleness.value,
            duration=duration,
            seed=self.config.seed,
            p_md=p_md,
            p_success=p_success,
            p_suc_nontardy=p_suc_nontardy,
            average_value=log.value_earned / duration,
            fold_low=self.ledger.stale_fraction(ObjectClass.VIEW_LOW, duration),
            fold_high=self.ledger.stale_fraction(ObjectClass.VIEW_HIGH, duration),
            rho_transactions=rho_t,
            rho_updates=rho_u,
            transactions_arrived=log.arrived,
            transactions_committed=log.committed,
            transactions_committed_fresh=log.committed_fresh,
            transactions_missed=log.missed_deadline,
            transactions_aborted_stale=log.aborted_stale,
            transactions_infeasible=log.infeasible_aborts,
            transactions_in_flight=log.in_flight,
            value_earned=log.value_earned,
            value_offered=log.value_offered,
            stale_reads=log.stale_reads,
            view_reads=log.view_reads,
            updates_arrived=self.update_accounting.arrived,
            updates_received=self.update_accounting.received,
            updates_enqueued=self.update_accounting.enqueued,
            updates_applied=self.update_accounting.installed_applied,
            updates_skipped=self.update_accounting.installed_skipped,
            updates_on_demand_applied=self.update_accounting.on_demand_applied,
            updates_on_demand_scans=self.update_accounting.on_demand_scans,
            updates_os_dropped=self.os_queue.dropped,
            updates_expired=self.update_queue.expired_discards,
            updates_overflowed=self.update_queue.overflow_discards,
            updates_superseded=self.update_queue.superseded_discards,
            updates_pending_os=len(self.os_queue)
            + len(self.controller.direct_installs)
            + self.controller.unsettled_updates(),
            updates_pending_queue=len(self.update_queue),
            mean_update_queue_length=self.update_accounting.mean_queue_length,
            context_switches=self.cpu.context_switches,
            preemptions=self.cpu.preemptions,
            events_dispatched=self.engine.events_dispatched,
        )


def run_simulation(
    config: SimulationConfig,
    algorithm: str | SchedulingAlgorithm = "TF",
    **algorithm_kwargs,
) -> SimulationResult:
    """Build and run one simulation; see :class:`Simulation`."""
    return Simulation(config, algorithm, **algorithm_kwargs).run()
