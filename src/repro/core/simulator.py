"""Simulation facade: wire the model together and run it.

:func:`run_simulation` is the library's main entry point::

    from repro import baseline_config, run_simulation

    result = run_simulation(baseline_config(duration=100.0), "OD")
    print(result.summary())

The model itself (controller, queues, ledgers, collectors) is built by
:mod:`repro.core.wiring`, which this facade shares with the wall-clock
runtime in :mod:`repro.live` — a Simulation is "the wired model plus a
virtual clock plus the Poisson workload generators".
"""

from __future__ import annotations

from repro.config import SimulationConfig
from repro.core.algorithms.base import SchedulingAlgorithm
from repro.core.wiring import build_parts, collect_result, reset_measurement
from repro.metrics.freshness import SampledLedger
from repro.metrics.results import SimulationResult
from repro.sim.engine import Engine
from repro.sim.streams import StreamFamily
from repro.workload.transactions import TransactionGenerator
from repro.workload.updates import UpdateStreamGenerator


class Simulation:
    """A fully wired simulation run.

    Building the object constructs the whole model (engine, database,
    queues, staleness machinery, controller, workload generators); calling
    :meth:`run` executes it and returns the metrics.  A Simulation is
    single-use: running twice raises.
    """

    def __init__(
        self,
        config: SimulationConfig,
        algorithm: str | SchedulingAlgorithm = "TF",
        **algorithm_kwargs,
    ) -> None:
        self.engine = Engine()
        parts = build_parts(config, algorithm, self.engine, **algorithm_kwargs)
        self._parts = parts
        self.config = config
        self.algorithm = parts.algorithm
        self.update_queue = parts.update_queue
        self.checker = parts.checker
        self.ledger = parts.ledger
        self.database = parts.database
        self.os_queue = parts.os_queue
        self.transaction_log = parts.transaction_log
        self.update_accounting = parts.update_accounting
        self.cpu = parts.cpu
        self.controller = parts.controller

        self.streams = StreamFamily(config.seed)
        self.update_generator = UpdateStreamGenerator(
            config, self.engine, self.streams, self.controller.on_update_arrival
        )
        self.transaction_generator = TransactionGenerator(
            config, self.engine, self.streams, self.controller.on_transaction_arrival
        )
        self._ran = False

    def run(self) -> SimulationResult:
        """Execute the run and return its metrics."""
        if self._ran:
            raise RuntimeError("a Simulation object is single-use; build a new one")
        self._ran = True
        self.update_generator.start()
        self.transaction_generator.start()
        if isinstance(self.ledger, SampledLedger):
            self.ledger.start()
        if self.config.warmup > 0:
            self.engine.schedule_at(self.config.warmup, self._warmup_reset)
        duration = self.config.duration
        self.engine.run_until(duration)
        self.controller.finalize(duration)
        self.ledger.finalize(duration)
        return self._collect(duration - self.config.warmup)

    def run_scripted(self, updates=(), transactions=()) -> SimulationResult:
        """Run against explicit workloads instead of the generators.

        Useful for deterministic demos and tests: the given
        :class:`~repro.db.objects.Update` records and
        :class:`~repro.workload.transactions.TransactionSpec` specs are
        delivered at their own arrival times; nothing else arrives.
        """
        if self._ran:
            raise RuntimeError("a Simulation object is single-use; build a new one")
        self._ran = True
        for update in updates:
            self.engine.schedule_at(
                update.arrival_time, self.controller.on_update_arrival, update
            )
        for spec in transactions:
            self.engine.schedule_at(
                spec.arrival_time, self.controller.on_transaction_arrival, spec
            )
        if isinstance(self.ledger, SampledLedger):
            self.ledger.start()
        if self.config.warmup > 0:
            self.engine.schedule_at(self.config.warmup, self._warmup_reset)
        duration = self.config.duration
        self.engine.run_until(duration)
        self.controller.finalize(duration)
        self.ledger.finalize(duration)
        return self._collect(duration - self.config.warmup)

    def _warmup_reset(self) -> None:
        """Discard everything measured during warmup (content stays live)."""
        reset_measurement(self._parts, self.engine.now)

    def _collect(self, duration: float) -> SimulationResult:
        return collect_result(self._parts, duration)


def run_simulation(
    config: SimulationConfig,
    algorithm: str | SchedulingAlgorithm = "TF",
    **algorithm_kwargs,
) -> SimulationResult:
    """Build and run one simulation; see :class:`Simulation`."""
    return Simulation(config, algorithm, **algorithm_kwargs).run()
