"""Live transaction state (paper section 3.4).

A transaction executes the paper's three-step pattern:

1. ``p_view`` of the computation,
2. the view reads (one index probe each, with a staleness check after
   every probe), and
3. the remaining computation.

:class:`LiveTransaction` tracks the step plan, the progress of a possibly
preempted burst, and the bookkeeping for firm deadlines and value-density
scheduling.
"""

from __future__ import annotations

import enum

from repro.config import SystemParams, TransactionParams
from repro.sim.events import Event
from repro.workload.transactions import TransactionSpec


class TransactionState(enum.Enum):
    """Lifecycle of a transaction inside the controller."""

    READY = "ready"
    RUNNING = "running"
    PREEMPTED = "preempted"
    COMMITTED = "committed"
    MISSED = "missed"
    ABORTED_STALE = "aborted-stale"

    @property
    def finished(self) -> bool:
        return self in (
            TransactionState.COMMITTED,
            TransactionState.MISSED,
            TransactionState.ABORTED_STALE,
        )


# Step kinds in a transaction's execution plan.
STEP_COMPUTE = "compute"
STEP_READ = "read"


class LiveTransaction:
    """Runtime state of one transaction.

    Attributes:
        spec: The immutable workload description.
        deadline: Firm deadline (arrival + perfect estimate + slack).
        state: Current lifecycle state.
        base_remaining: Seconds of *planned* work left (computation plus
            index probes); this is the "remaining processing time" used for
            value density and feasibility and excludes On-Demand extras.
        read_stale: True once any view read returned stale data.
        warned: True when the WARN stale-read action has fired.
        deadline_event: The engine event that aborts the transaction at its
            deadline (cancelled on commit/abort).
    """

    __slots__ = (
        "spec",
        "deadline",
        "state",
        "base_remaining",
        "read_stale",
        "warned",
        "deadline_event",
        "_plan",
        "_step_index",
        "_burst_remaining",
        "start_time",
        "finish_time",
    )

    def __init__(
        self,
        spec: TransactionSpec,
        txn_params: TransactionParams,
        system: SystemParams,
    ) -> None:
        self.spec = spec
        self.deadline = spec.deadline(system.x_lookup, system.ips)
        self.state = TransactionState.READY
        self.read_stale = False
        self.warned = False
        self.deadline_event: Event | None = None
        self.start_time: float | None = None
        self.finish_time: float | None = None

        lookup_seconds = system.seconds(system.x_lookup)
        plan: list[tuple[str, float, int]] = []
        head_compute = spec.compute_time * txn_params.p_view
        tail_compute = spec.compute_time - head_compute
        if head_compute > 0:
            plan.append((STEP_COMPUTE, head_compute, -1))
        for object_id in spec.reads:
            plan.append((STEP_READ, lookup_seconds, object_id))
        if tail_compute > 0 or not plan:
            plan.append((STEP_COMPUTE, tail_compute, -1))
        self._plan = plan
        self._step_index = 0
        self._burst_remaining: float | None = None
        self.base_remaining = spec.compute_time + len(spec.reads) * lookup_seconds

    # ------------------------------------------------------------------
    # Plan navigation
    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        """True once every planned step has completed."""
        return self._step_index >= len(self._plan)

    def current_step(self) -> tuple[str, float, int]:
        """The (kind, full_duration, object_id) triple of the current step."""
        return self._plan[self._step_index]

    def next_burst_seconds(self) -> float:
        """Seconds the next CPU burst needs (resuming a preempted one)."""
        if self._burst_remaining is not None:
            return self._burst_remaining
        return self._plan[self._step_index][1]

    def note_burst_progress(self, elapsed: float) -> None:
        """Record a partial burst (preemption) without advancing the step."""
        remaining = self.next_burst_seconds() - elapsed
        if remaining < 0:
            remaining = 0.0
        self._burst_remaining = remaining
        self.base_remaining -= elapsed
        if self.base_remaining < 0:
            self.base_remaining = 0.0

    def complete_step(self) -> tuple[str, int]:
        """Finish the current step; returns its (kind, object_id)."""
        kind, _, object_id = self._plan[self._step_index]
        spent = self.next_burst_seconds()
        self.base_remaining -= spent
        if self.base_remaining < 0:
            self.base_remaining = 0.0
        self._burst_remaining = None
        self._step_index += 1
        return kind, object_id

    # ------------------------------------------------------------------
    # Scheduling arithmetic
    # ------------------------------------------------------------------
    def value_density(self) -> float:
        """Value per second of remaining planned work (paper section 3.4)."""
        remaining = self.base_remaining
        if remaining <= 0:
            # A finished-or-nearly-finished transaction is infinitely dense;
            # use a large constant so ordering stays total and finite.
            return self.spec.value * 1e12
        return self.spec.value / remaining

    def is_feasible(self, now: float, tolerance: float = 1e-9) -> bool:
        """Can the remaining planned work still meet the deadline?"""
        return now + self.base_remaining <= self.deadline + tolerance

    def cancel_deadline(self) -> None:
        """Cancel the pending deadline event, if any."""
        if self.deadline_event is not None:
            self.deadline_event.cancel()
            self.deadline_event = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LiveTransaction #{self.spec.seq} {self.state.value} "
            f"deadline={self.deadline:.3f} remaining={self.base_remaining:.4f}>"
        )
