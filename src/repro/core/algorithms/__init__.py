"""The scheduling algorithms of paper section 4, plus extensions.

* :class:`UpdateFirst` (UF) — updates preempt transactions and are applied
  on arrival.
* :class:`TransactionFirst` (TF) — updates are queued and installed only
  when no transactions are runnable.
* :class:`SplitUpdates` (SU) — high-importance updates behave like UF,
  low-importance ones like TF.
* :class:`OnDemand` (OD) — TF plus: a transaction that reads stale data
  first tries to refresh it from the update queue.
* :class:`FixedFraction` (FX) — future-work extension: updates are
  guaranteed a fixed fraction of the CPU.
* ``TF-SPLIT`` — future-work extension: TF with the update queue
  partitioned by importance and high-importance updates served first.
"""

from repro.core.algorithms.base import SchedulingAlgorithm
from repro.core.algorithms.fixed_fraction import FixedFraction
from repro.core.algorithms.on_demand import OnDemand
from repro.core.algorithms.registry import ALGORITHMS, make_algorithm
from repro.core.algorithms.split_updates import SplitUpdates
from repro.core.algorithms.transaction_first import SplitQueueTransactionFirst, TransactionFirst
from repro.core.algorithms.update_first import UpdateFirst

__all__ = [
    "ALGORITHMS",
    "FixedFraction",
    "OnDemand",
    "SchedulingAlgorithm",
    "SplitQueueTransactionFirst",
    "SplitUpdates",
    "TransactionFirst",
    "UpdateFirst",
    "make_algorithm",
]
