"""Transaction First (TF) — paper section 4.2.

Transactions always take precedence; updates are received into the update
queue and installed only when no transaction is runnable.  A transaction
arriving while an update is being installed waits (updates are short and
are never preempted).  The queue is served FIFO or LIFO per the configured
discipline, bounded by ``UQmax`` (oldest discarded on overflow), and — under
the MA staleness definition — purged of expired updates at every scheduling
point.
"""

from __future__ import annotations

from repro.core.algorithms.base import SchedulingAlgorithm
from repro.core.controller import BUSY, IDLE


class TransactionFirst(SchedulingAlgorithm):
    """Serve transactions first; install updates in idle time."""

    name = "TF"
    description = "transactions first; updates queued and installed when idle"

    def select_work(self, ctl) -> str:
        # Receiving is nearly free, so the controller moves OS-queued
        # updates into the (searchable, expirable) update queue at every
        # scheduling point; only *installation* waits for idle time.
        status = ctl.drain_os_to_queue()
        if status is BUSY:
            return status
        status = ctl.start_best_transaction()
        if status is not IDLE:
            return status
        return ctl.start_install_from_queue()


class SplitQueueTransactionFirst(TransactionFirst):
    """TF with the update queue split by importance (section 4.2 future work).

    Low- and high-importance updates are kept in separate queues; when idle
    time becomes available, high-importance updates are installed first.
    The split is implemented by
    :class:`repro.db.update_queue.PartitionedUpdateQueue`, which the
    simulator selects when ``wants_partitioned_queue`` is set.
    """

    name = "TF-SPLIT"
    description = "TF with per-importance queues, high-importance served first"
    wants_partitioned_queue = True
