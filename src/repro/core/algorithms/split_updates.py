"""Split Updates (SU) — paper section 4.3.

A compromise between UF and TF: updates to *high-importance* data are
applied on arrival (preempting a running transaction), while updates to
*low-importance* data are queued and installed when no transactions are
waiting.  The FIFO/LIFO and queue-bounding questions of TF apply to the
low-importance queue.
"""

from __future__ import annotations

from repro.core.algorithms.base import SchedulingAlgorithm
from repro.core.controller import AGAIN, BUSY, IDLE
from repro.db.objects import Update


class SplitUpdates(SchedulingAlgorithm):
    """High-importance updates first; low-importance in idle time."""

    name = "SU"
    description = "high-importance updates applied on arrival, low queued"

    def on_update_arrival(self, ctl, update: Update) -> None:
        if ctl.idle:
            ctl.dispatch()
            return
        if self.is_high_importance(update) and ctl.transaction_burst_in_progress:
            ctl.preempt_running_transaction()
            ctl.dispatch()
        # A low-importance arrival (or any arrival during an update burst)
        # waits in the OS queue until the next scheduling point.

    def select_work(self, ctl) -> str:
        # Receive whatever is pending: high-importance updates to the
        # direct-install list, low-importance ones into the update queue.
        status = ctl.drain_os_split()
        if status is BUSY:
            return status
        if status is AGAIN:
            return AGAIN
        status = ctl.start_direct_install()
        if status is not IDLE:
            return status
        status = ctl.start_best_transaction()
        if status is not IDLE:
            return status
        return ctl.start_install_from_queue()
