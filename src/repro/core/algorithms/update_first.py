"""Update First (UF) — paper section 4.1.

Every update is applied as soon as it arrives: if a transaction is running
it is preempted (costing ``2 * x_switch``); updates that arrive while
another update is being installed wait in the small OS queue.  UF never
uses the application-level update queue.
"""

from __future__ import annotations

from repro.core.algorithms.base import SchedulingAlgorithm
from repro.core.controller import AGAIN, IDLE
from repro.db.objects import Update


class UpdateFirst(SchedulingAlgorithm):
    """Apply updates on arrival, ahead of all transactions."""

    name = "UF"
    description = "updates preempt transactions and are applied on arrival"
    uses_update_queue = False

    def on_update_arrival(self, ctl, update: Update) -> None:
        if ctl.idle:
            ctl.dispatch()
            return
        if ctl.transaction_burst_in_progress:
            ctl.preempt_running_transaction()
            ctl.dispatch()
        # Otherwise an update install is already on the CPU; the arrival
        # waits its turn in the OS queue.

    def select_work(self, ctl) -> str:
        status = ctl.drain_os_to_direct()
        if status is AGAIN:
            pass  # fresh updates were received; install them below
        install = ctl.start_direct_install()
        if install is not IDLE:
            return install
        return ctl.start_best_transaction()
