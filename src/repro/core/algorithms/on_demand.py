"""Apply Updates On Demand (OD) — paper section 4.4.

An extension of TF: transactions still take precedence over the update
process, but when a transaction reads a *stale* object the update queue is
first searched for an applicable update; if one is found that would make
the object fresh, it is applied in-line (scan cost ``x_scan`` per queued
update, apply cost ``x_update``) and the transaction proceeds with fresh
data.

Under the UU staleness definition the scan doubles as the staleness check
itself, so OD scans on *every* view read (paper section 6.3).

With the ``indexed_update_queue`` system option (section 4.4's hash-table
future work) the queue keeps only the newest update per object; the
controller's scan cost then collapses because the queue stays near one
entry per dirty object and lookups are O(1).
"""

from __future__ import annotations

from repro.core.algorithms.transaction_first import TransactionFirst


class OnDemand(TransactionFirst):
    """TF plus on-demand refresh of stale objects from the update queue."""

    name = "OD"
    description = "TF plus in-line refresh of stale reads from the queue"
    on_demand = True
