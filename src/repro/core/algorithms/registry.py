"""Algorithm registry: names → factories.

The experiment harness, examples, and CLI all refer to algorithms by their
paper names; :func:`make_algorithm` turns a name (plus optional
per-algorithm keyword arguments) into a fresh instance.
"""

from __future__ import annotations

from typing import Callable

from repro.core.algorithms.base import SchedulingAlgorithm
from repro.core.algorithms.fixed_fraction import FixedFraction
from repro.core.algorithms.on_demand import OnDemand
from repro.core.algorithms.split_updates import SplitUpdates
from repro.core.algorithms.transaction_first import (
    SplitQueueTransactionFirst,
    TransactionFirst,
)
from repro.core.algorithms.update_first import UpdateFirst

ALGORITHMS: dict[str, Callable[..., SchedulingAlgorithm]] = {
    UpdateFirst.name: UpdateFirst,
    TransactionFirst.name: TransactionFirst,
    SplitUpdates.name: SplitUpdates,
    OnDemand.name: OnDemand,
    FixedFraction.name: FixedFraction,
    SplitQueueTransactionFirst.name: SplitQueueTransactionFirst,
}

#: The four algorithms the paper evaluates, in its presentation order.
PAPER_ALGORITHMS = (UpdateFirst.name, TransactionFirst.name,
                    SplitUpdates.name, OnDemand.name)


def make_algorithm(name: str, **kwargs) -> SchedulingAlgorithm:
    """Instantiate an algorithm by its registry name.

    Args:
        name: One of ``UF``, ``TF``, ``SU``, ``OD``, ``FX``, ``TF-SPLIT``
            (case-insensitive).
        **kwargs: Algorithm-specific options (e.g. ``fraction=`` for FX).

    Raises:
        KeyError: for an unknown name, with the known names in the message.
    """
    factory = ALGORITHMS.get(name.upper())
    if factory is None:
        known = ", ".join(sorted(ALGORITHMS))
        raise KeyError(f"unknown algorithm {name!r}; known: {known}")
    return factory(**kwargs)
