"""Scheduling-algorithm interface.

An algorithm owns two decisions (paper section 4): with what priority the
update process runs relative to transactions, and which queued update to
install next.  It expresses them through two hooks:

* :meth:`on_update_arrival` — called the moment an update lands in the OS
  queue; this is where preemptive algorithms interrupt the running
  transaction.
* :meth:`select_work` — called by the controller's dispatch loop whenever
  the CPU is free; the algorithm starts exactly one burst (returning
  ``BUSY``), performs an instantaneous action (``AGAIN``), or declares the
  system idle (``IDLE``).
"""

from __future__ import annotations

from repro.db.objects import ObjectClass, Update


class SchedulingAlgorithm:
    """Base class for update/transaction co-scheduling policies."""

    #: Short name used by the registry, result rows, and plots.
    name = "?"

    #: One-line description for reports.
    description = ""

    #: True for algorithms that refresh stale objects from the update queue
    #: during transaction reads (the OD family).
    on_demand = False

    #: True when the algorithm buffers updates in the application-level
    #: update queue (everything except UF).
    uses_update_queue = True

    #: True when the algorithm wants the update queue partitioned by
    #: importance with high-importance updates served first (TF-SPLIT).
    wants_partitioned_queue = False

    def attach(self, controller) -> None:
        """Called once when the controller is built."""
        self.controller = controller

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def on_update_arrival(self, ctl, update: Update) -> None:
        """React to an update landing in the OS queue.

        The default (used by the queue-based algorithms) starts the
        dispatch loop only if the CPU is idle: a running transaction or
        update burst is never interrupted.
        """
        if ctl.idle:
            ctl.dispatch()

    def select_work(self, ctl) -> str:
        """Choose the next activity; see module docstring for the protocol."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def is_high_importance(self, update: Update) -> bool:
        """Class test used by importance-aware policies."""
        return update.klass is ObjectClass.VIEW_HIGH

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"
