"""Fixed CPU Fraction (FX) — an extension from the paper's future work.

Section 7 lists "giving a fixed CPU fraction to updates" as an unexplored
scheduling algorithm.  FX reserves a target fraction ``f`` of CPU time for
the update process: at every scheduling point, if the update process has so
far consumed less than ``f`` of elapsed time, update work runs first;
otherwise transactions do.  The policy is work-conserving — whichever side
has nothing to do yields the CPU to the other.
"""

from __future__ import annotations

from repro.core.algorithms.base import SchedulingAlgorithm
from repro.core.controller import BUSY, IDLE


class FixedFraction(SchedulingAlgorithm):
    """Guarantee the update process a fixed share of the CPU."""

    name = "FX"
    description = "updates guaranteed a fixed CPU fraction"

    def __init__(self, fraction: float = 0.2) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction out of [0,1]: {fraction}")
        self.fraction = fraction

    def select_work(self, ctl) -> str:
        status = ctl.drain_os_to_queue()
        if status is BUSY:
            return status
        elapsed = ctl.engine.now
        updates_behind = (
            elapsed > 0 and ctl.cpu.update_seconds < self.fraction * elapsed
        )
        if updates_behind:
            status = ctl.start_install_from_queue()
            if status is not IDLE:
                return status
            return ctl.start_best_transaction()
        status = ctl.start_best_transaction()
        if status is not IDLE:
            return status
        return ctl.start_install_from_queue()
