"""Shared model wiring for the simulator and the live runtime.

:class:`~repro.core.simulator.Simulation` (virtual time) and
:class:`repro.live.LiveRuntime` (wall-clock time) run the *same* controller,
queues, staleness machinery, and metric collectors — the only thing that
differs is the :class:`~repro.sim.clock.Clock` they are built on.  This
module holds the construction, the warmup-boundary reset, and the metric
collection so neither entry point forks any model code:

* :func:`build_parts` — construct the full model around a given clock.
* :func:`reset_measurement` — discard warmup-period measurements while the
  model content (queue contents, live transactions) stays untouched.
* :func:`collect_result` — snapshot every counter into a
  :class:`~repro.metrics.results.SimulationResult`, either at the end of a
  run (``final=True``, after the ledgers are finalized) or mid-run
  (``final=False``, using the ledgers' non-destructive snapshots).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SimulationConfig
from repro.core.algorithms.base import SchedulingAlgorithm
from repro.core.algorithms.registry import make_algorithm
from repro.core.controller import Controller
from repro.db.database import Database
from repro.db.objects import ObjectClass
from repro.db.os_queue import OSQueue
from repro.db.staleness import StalenessChecker, make_staleness_checker
from repro.db.update_queue import PartitionedUpdateQueue, UpdateQueue
from repro.db.views import ViewRegistry
from repro.metrics.collectors import CpuAccounting, TransactionLog, UpdateAccounting
from repro.metrics.freshness import FreshnessLedger, make_ledger
from repro.metrics.results import SimulationResult
from repro.sim.clock import Clock


@dataclass
class RuntimeParts:
    """The fully wired model: everything a run needs besides its workload."""

    config: SimulationConfig
    algorithm: SchedulingAlgorithm
    clock: Clock
    database: Database
    os_queue: OSQueue
    update_queue: UpdateQueue | PartitionedUpdateQueue
    checker: StalenessChecker
    ledger: FreshnessLedger
    transaction_log: TransactionLog
    update_accounting: UpdateAccounting
    cpu: CpuAccounting
    controller: Controller
    views: ViewRegistry


def build_parts(
    config: SimulationConfig,
    algorithm: str | SchedulingAlgorithm,
    clock: Clock,
    **algorithm_kwargs,
) -> RuntimeParts:
    """Wire the complete model around ``clock``.

    The construction order matters: the ledger must observe the database
    and the update queue before the controller can route a single update,
    so the observer hooks are attached here exactly once.
    """
    config.validate()
    if isinstance(algorithm, str):
        algorithm = make_algorithm(algorithm, **algorithm_kwargs)
    elif algorithm_kwargs:
        raise ValueError("algorithm kwargs require an algorithm name")

    queue_class = (
        PartitionedUpdateQueue
        if algorithm.wants_partitioned_queue
        else UpdateQueue
    )
    update_queue = queue_class(
        config.system.update_queue_max,
        indexed=config.system.indexed_update_queue,
    )
    checker = make_staleness_checker(config, update_queue)
    ledger = make_ledger(config, clock, checker)
    database = Database.from_config(config, install_listener=ledger)
    ledger.bind(database, update_queue)
    update_queue.observer = ledger.on_queue_event
    os_queue = OSQueue(config.system.os_queue_max)

    transaction_log = TransactionLog()
    update_accounting = UpdateAccounting()
    cpu = CpuAccounting()

    controller = Controller(
        config=config,
        engine=clock,
        algorithm=algorithm,
        database=database,
        os_queue=os_queue,
        update_queue=update_queue,
        checker=checker,
        ledger=ledger,
        transaction_log=transaction_log,
        update_accounting=update_accounting,
        cpu=cpu,
    )
    views = ViewRegistry()
    views.bind(
        database,
        update_queue,
        controller=controller,
        x_view_refresh=config.system.x_view_refresh,
        cpu=cpu,
        seconds_per_refresh=config.system.seconds(config.system.x_view_refresh),
    )
    return RuntimeParts(
        config=config,
        algorithm=algorithm,
        clock=clock,
        database=database,
        os_queue=os_queue,
        update_queue=update_queue,
        checker=checker,
        ledger=ledger,
        transaction_log=transaction_log,
        update_accounting=update_accounting,
        cpu=cpu,
        controller=controller,
        views=views,
    )


def reset_measurement(parts: RuntimeParts, now: float) -> None:
    """Discard everything measured so far (warmup boundary); content stays.

    Live entities are re-counted as arrived so the conservation laws
    (``arrived == finished + in_flight`` for transactions, the update fate
    equation for updates) keep holding across the boundary.
    """
    controller = parts.controller
    parts.transaction_log.reset(controller.live_transaction_count())
    pending = (
        len(parts.os_queue)
        + len(controller.direct_installs)
        + controller.unsettled_updates()
        + len(parts.update_queue)
    )
    parts.update_accounting.reset(pending)
    parts.cpu.reset()
    controller.note_measurement_start(now)
    parts.os_queue.reset_counters()
    parts.update_queue.reset_counters()
    parts.ledger.begin_measurement(now)
    parts.views.begin_measurement(now)


def collect_result(
    parts: RuntimeParts,
    duration: float,
    *,
    now: float | None = None,
    final: bool = True,
    extras: dict | None = None,
) -> SimulationResult:
    """Snapshot every counter into a :class:`SimulationResult`.

    Args:
        parts: The wired model.
        duration: Measured seconds the fractions/rates are normalized over.
        now: Current clock time; required for mid-run snapshots so the
            ledgers can close their open stale intervals virtually.
        final: True after ``ledger.finalize`` (end of run); False for a
            mid-run snapshot, which must not mutate the ledgers.
        extras: Optional extra key/values stored on the result.
    """
    log = parts.transaction_log
    finished = log.finished
    p_md = 1.0 - (log.committed / finished) if finished else 0.0
    p_success = (log.committed_fresh / finished) if finished else 0.0
    p_suc_nontardy = (
        log.committed_fresh / log.committed if log.committed else 0.0
    )
    if duration > 0:
        rho_t, rho_u = parts.cpu.utilization(duration)
        average_value = log.value_earned / duration
    else:
        rho_t = rho_u = 0.0
        average_value = 0.0

    ledger = parts.ledger
    if final:
        fold_low = ledger.stale_fraction(ObjectClass.VIEW_LOW, duration)
        fold_high = ledger.stale_fraction(ObjectClass.VIEW_HIGH, duration)
    else:
        if now is None:
            raise ValueError("mid-run snapshots need the current clock time")
        fold_low = ledger.snapshot_stale_fraction(ObjectClass.VIEW_LOW, now, duration)
        fold_high = ledger.snapshot_stale_fraction(ObjectClass.VIEW_HIGH, now, duration)

    views = parts.views
    if final:
        fold_views = views.stale_fraction(duration) if len(views) else 0.0
    else:
        fold_views = views.snapshot_stale_fraction(now, duration)
    if len(views):
        extras = dict(extras) if extras is not None else {}
        extras.setdefault("views", views.report(now))

    controller = parts.controller
    accounting = parts.update_accounting
    return SimulationResult(
        algorithm=parts.algorithm.name,
        staleness=parts.config.staleness.value,
        duration=duration,
        seed=parts.config.seed,
        p_md=p_md,
        p_success=p_success,
        p_suc_nontardy=p_suc_nontardy,
        average_value=average_value,
        fold_low=fold_low,
        fold_high=fold_high,
        rho_transactions=rho_t,
        rho_updates=rho_u,
        transactions_arrived=log.arrived,
        transactions_committed=log.committed,
        transactions_committed_fresh=log.committed_fresh,
        transactions_missed=log.missed_deadline,
        transactions_aborted_stale=log.aborted_stale,
        transactions_infeasible=log.infeasible_aborts,
        transactions_in_flight=log.in_flight,
        value_earned=log.value_earned,
        value_offered=log.value_offered,
        stale_reads=log.stale_reads,
        view_reads=log.view_reads,
        updates_arrived=accounting.arrived,
        updates_received=accounting.received,
        updates_enqueued=accounting.enqueued,
        updates_applied=accounting.installed_applied,
        updates_skipped=accounting.installed_skipped,
        updates_on_demand_applied=accounting.on_demand_applied,
        updates_on_demand_scans=accounting.on_demand_scans,
        updates_os_dropped=parts.os_queue.dropped,
        updates_expired=parts.update_queue.expired_discards,
        updates_overflowed=parts.update_queue.overflow_discards,
        updates_superseded=parts.update_queue.superseded_discards,
        updates_pending_os=len(parts.os_queue)
        + len(controller.direct_installs)
        + controller.unsettled_updates(),
        updates_pending_queue=len(parts.update_queue),
        mean_update_queue_length=accounting.mean_queue_length,
        context_switches=parts.cpu.context_switches,
        preemptions=parts.cpu.preemptions,
        events_dispatched=parts.clock.events_dispatched,
        fold_views=fold_views,
        views_registered=len(views),
        view_refreshes=views.refreshes,
        extras=extras if extras is not None else {},
    )
