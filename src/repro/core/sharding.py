"""Shard construction: N independent pipelines over one keyspace.

The unit of execution here is a **shard**: its own
:class:`~repro.db.database.Database` slice, OS queue, update queue,
staleness checker/ledger, collectors, and
:class:`~repro.core.controller.Controller`, all wired by the same
:func:`repro.core.wiring.build_parts` the single pipeline uses — a shard
*is* a ``RuntimeParts``.  :func:`build_shard_set` generalizes that wiring
to N shards behind a :class:`~repro.db.sharding.ShardRouter`:

* ``shards=1`` builds exactly one ``build_parts(config, ...)`` with the
  original config and routes by handing out the controller's own bound
  arrival methods — the single-shard path is the degenerate case of the
  same code, not a fork, and stays bit-identical to the pre-shard wiring.
* ``shards=N`` derives one sub-config per shard (owned object counts,
  per-shard ``OSmax``/``UQmax`` budgets via :func:`shard_config`), builds
  N part sets on the *same* clock, and routes arrivals by stable hash of
  the target object id.

Cross-shard reads: a transaction's read set is drawn against the global
keyspace, but a transaction executes on exactly one shard (the owner of
its first read).  Reads owned by that shard keep their identity; reads
owned elsewhere are approximated by a deterministic stand-in object on
the executing shard and counted in ``router.remapped_reads`` — see
``docs/SCALING.md`` for what this preserves and what it blurs.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace as dataclass_replace

from repro.config import SimulationConfig
from repro.core.wiring import (
    RuntimeParts,
    build_parts,
    collect_result,
    reset_measurement,
)
from repro.db.objects import ObjectClass, Update
from repro.db.sharding import ShardRouter
from repro.db.views import ViewSpec, merge_view_reports
from repro.metrics.freshness import SampledLedger
from repro.metrics.results import SimulationResult
from repro.sim.clock import Clock
from repro.workload.codec import peek_update_route, reroute_update_frame
from repro.workload.transactions import TransactionSpec


@dataclass
class Shard:
    """One pipeline plus its slice of the keyspace."""

    index: int
    parts: RuntimeParts
    n_low: int
    n_high: int


def shard_config(
    config: SimulationConfig, router: ShardRouter, index: int
) -> SimulationConfig:
    """The sub-config one shard's pipeline is built from.

    Owned object counts replace the global ones; the global OS/update
    queue budgets are split across shards; ``p_low`` is clamped when a
    shard owns only one importance class (the routing happens upstream
    against the global config, so the clamp only keeps validation
    honest).  Everything else — cost model, staleness policy, stale-read
    action, seed — is inherited unchanged.
    """
    k_low, k_high = router.counts(index)
    p_low = config.updates.p_low
    if k_low == 0:
        p_low = 0.0
    elif k_high == 0:
        p_low = 1.0
    shard_cfg = config.with_updates(n_low=k_low, n_high=k_high, p_low=p_low)
    return shard_cfg.with_system(
        os_queue_max=router.os_budget(index, config.system.os_queue_max),
        update_queue_max=router.uq_budget(index, config.system.update_queue_max),
    )


def route_update(router: ShardRouter, update: Update) -> tuple[int, Update]:
    """Resolve an update's owning shard and its shard-local record.

    A fresh record is returned: the original keeps its global id (the
    caller may hold it), and queue state (``queued``) must be shard-local.
    """
    shard = router.shard_of(update.klass, update.object_id)
    router.note_update_routed(shard)
    routed = Update(
        seq=update.seq,
        klass=update.klass,
        object_id=router.local_id(update.klass, update.object_id),
        value=update.value,
        generation_time=update.generation_time,
        arrival_time=update.arrival_time,
        partial=update.partial,
        attribute=update.attribute,
    )
    return shard, routed


def route_spec(
    router: ShardRouter, spec: TransactionSpec
) -> tuple[int, TransactionSpec]:
    """Resolve a transaction's executing shard and its remapped spec.

    The owner of the first read executes the transaction; reads owned by
    that shard keep their identity (shard-local id), cross-shard reads
    are approximated by a deterministic stand-in object there (counted in
    ``router.remapped_reads``).  A readless transaction is placed by a
    stable hash of its sequence number.
    """
    klass = spec.view_class
    if not spec.reads:
        shard = router.hash_shard(spec.seq)
        router.note_transaction_routed(shard)
        return shard, spec
    shard = router.shard_of(klass, spec.reads[0])
    owned = router.count_for(shard, klass)
    local_reads = []
    for gid in spec.reads:
        if router.shard_of(klass, gid) == shard:
            local_reads.append(router.local_id(klass, gid))
        else:
            # owned > 0 because this shard owns reads[0] of the same class.
            router.note_remapped_read()
            local_reads.append(gid % owned)
    router.note_transaction_routed(shard)
    return shard, dataclass_replace(spec, reads=tuple(local_reads))


def split_spec(
    router: ShardRouter, spec: TransactionSpec
) -> "dict[int, TransactionSpec]":
    """Split one global spec into per-shard sub-reads (the scatter half).

    Returns an insertion-ordered mapping ``shard -> sub-spec``.  Each
    sub-spec keeps the parent's seq, arrival time, value, compute time,
    and slack, and carries only the shard-local ids of the reads that
    shard owns — so every shard's local firm deadline
    (``arrival + estimate + slack``) is at or before the parent's, and
    the gathered verdict can only be stricter than a single-shard run,
    never laxer.  A readless spec maps whole onto one shard by stable
    hash of its sequence number.  A single-entry result means the
    transaction is *not* cross-shard and can be forwarded as-is.
    """
    if not spec.reads:
        return {router.hash_shard(spec.seq): spec}
    pieces = router.split_reads(spec.view_class, spec.reads)
    if len(pieces) == 1:
        shard, local = next(iter(pieces.items()))
        return {shard: dataclass_replace(spec, reads=tuple(local))}
    return {
        shard: dataclass_replace(spec, reads=tuple(local))
        for shard, local in pieces.items()
    }


#: Sub-read outcomes that contribute *no* usable read result.  A failed
#: RPC (deadline, closed channel, shard down) is recorded as a miss with
#: its reason in ``failure``.
_FAILED_OUTCOMES = ("missed",)


def merge_verdicts(sub_outcomes: "list[dict]") -> dict:
    """Merge per-shard sub-read outcomes into one parent verdict.

    The gather half of a cross-shard transaction, implementing the
    paper's MA/UU semantics across shards:

    * ``read_stale`` is an *any* — a transaction that read one stale
      object anywhere is a stale read, no matter how fresh the other
      shards were (stale-anywhere = stale).
    * Under ``StaleReadAction.ABORT`` any shard aborting on staleness
      aborts the whole transaction (``aborted-stale``).
    * Otherwise any sub-read that missed its firm deadline — including
      one whose RPC failed (``failure`` key: sub-read deadline, closed
      channel, shard down) — makes the parent a miss: the firm deadline
      is enforced across the *slowest* shard.
    * Otherwise any shard rejecting (draining worker) rejects the parent.
    * Only a transaction every shard committed commits.

    ``finish_time`` is the max over the sub-reads that reported one —
    the slowest shard finishes the transaction.

    Each entry of ``sub_outcomes`` needs ``outcome``, ``read_stale``,
    and ``finish_time`` keys (the wire's outcome-record schema).
    """
    if not sub_outcomes:
        raise ValueError("cannot merge zero sub-read outcomes")
    read_stale = any(sub.get("read_stale") for sub in sub_outcomes)
    outcomes = [sub.get("outcome") for sub in sub_outcomes]
    if "aborted-stale" in outcomes:
        outcome = "aborted-stale"
    elif any(out in _FAILED_OUTCOMES for out in outcomes):
        outcome = "missed"
    elif "rejected" in outcomes:
        outcome = "rejected"
    else:
        outcome = "committed"
    finish_times = [
        sub["finish_time"] for sub in sub_outcomes
        if sub.get("finish_time") is not None
    ]
    return {
        "outcome": outcome,
        "read_stale": read_stale,
        "finish_time": max(finish_times) if finish_times else None,
    }


def route_batch(router: ShardRouter, items, on_error=None) -> "dict[int, list]":
    """Group one decoded arrival batch by owning shard.

    Returns an insertion-ordered mapping ``shard -> routed records``;
    within each shard the records keep their batch order, so a downstream
    that delivers each shard's list in order preserves the wire-order
    semantics of routing record by record.  Updates are the hot path:
    their routing accounting collapses to one
    :meth:`~repro.db.sharding.ShardRouter.note_update_routed` call per
    (shard, batch) instead of one per record.

    An unroutable record (unknown object, non-view class) is skipped —
    counted in ``router.routing_errors`` and reported through
    ``on_error(item, exc)`` when given — so one bad record never poisons
    its batch neighbors, matching the per-record path's error handling.
    """
    by_shard: dict[int, list] = {}
    update_counts: dict[int, int] = {}
    shard_of = router.shard_of
    local_id = router.local_id
    for item in items:
        try:
            if isinstance(item, bytes):
                # Raw binary update frame: resolve the shard from the
                # fixed-offset routing fields and patch the object id in
                # place — no Update is ever materialized on this path.
                klass, gid = peek_update_route(item)
                shard = shard_of(klass, gid)
                update_counts[shard] = update_counts.get(shard, 0) + 1
                routed = reroute_update_frame(item, local_id(klass, gid))
            elif isinstance(item, Update):
                shard = shard_of(item.klass, item.object_id)
                update_counts[shard] = update_counts.get(shard, 0) + 1
                routed = Update(
                    seq=item.seq,
                    klass=item.klass,
                    object_id=local_id(item.klass, item.object_id),
                    value=item.value,
                    generation_time=item.generation_time,
                    arrival_time=item.arrival_time,
                    partial=item.partial,
                    attribute=item.attribute,
                )
            else:
                shard, routed = route_spec(router, item)
        except (ValueError, IndexError, struct.error) as exc:
            router.note_routing_error()
            if on_error is not None:
                on_error(item, exc)
            continue
        bucket = by_shard.get(shard)
        if bucket is None:
            by_shard[shard] = [routed]
        else:
            bucket.append(routed)
    for shard, count in update_counts.items():
        router.note_update_routed(shard, count)
    return by_shard


class ShardSet:
    """N wired pipelines plus the routing that feeds them.

    Built by :func:`build_shard_set`; don't construct directly.

    Attributes:
        config: The global (pre-split) configuration.
        router: The keyspace router, or None for the single-shard case.
        shards: The wired :class:`Shard` pipelines, by index.
        route_update / route_spec: Arrival sinks accepting *global* object
            ids — plug them wherever a single controller's
            ``on_update_arrival`` / ``on_transaction_arrival`` went.  With
            one shard they *are* those bound methods.
    """

    def __init__(
        self,
        config: SimulationConfig,
        router: ShardRouter | None,
        shards: list[Shard],
    ) -> None:
        self.config = config
        self.router = router
        self.shards = shards
        if router is None:
            controller = shards[0].parts.controller
            self.route_update = controller.on_update_arrival
            self.route_spec = controller.on_transaction_arrival
        else:
            self.route_update = self._route_update
            self.route_spec = self._route_spec

    def __len__(self) -> int:
        return len(self.shards)

    def __iter__(self):
        return iter(self.shards)

    # ------------------------------------------------------------------
    # Routing (multi-shard only; single-shard uses the bound methods)
    # ------------------------------------------------------------------
    def _route_update(self, update: Update) -> None:
        shard, routed = route_update(self.router, update)
        self.shards[shard].parts.controller.on_update_arrival(routed)

    def _route_spec(self, spec: TransactionSpec) -> None:
        shard, routed = route_spec(self.router, spec)
        self.shards[shard].parts.controller.on_transaction_arrival(routed)

    def route_batch(self, items) -> None:
        """Deliver one mixed arrival batch, grouped per shard.

        Each record still hits its controller's own arrival method (the
        per-arrival scheduling point is part of the model); the batch
        amortizes routing table lookups and accounting.  With one shard
        this is a plain in-order delivery loop on the single controller.
        """
        if self.router is None:
            on_update = self.route_update
            on_spec = self.route_spec
            for item in items:
                (on_update if isinstance(item, Update) else on_spec)(item)
            return
        for shard, routed in route_batch(self.router, items).items():
            controller = self.shards[shard].parts.controller
            on_update = controller.on_update_arrival
            on_spec = controller.on_transaction_arrival
            for item in routed:
                (on_update if isinstance(item, Update) else on_spec)(item)

    # ------------------------------------------------------------------
    # Lifecycle fan-out
    # ------------------------------------------------------------------
    def start_ledgers(self) -> None:
        """Start every sampled ledger (no-op for exact ledgers)."""
        for shard in self.shards:
            if isinstance(shard.parts.ledger, SampledLedger):
                shard.parts.ledger.start()

    def reset_measurement(self, now: float) -> None:
        """Warmup boundary on every shard."""
        for shard in self.shards:
            reset_measurement(shard.parts, now)

    def finalize(self, now: float) -> None:
        """End-of-run finalize on every shard's controller and ledger."""
        for shard in self.shards:
            shard.parts.controller.finalize(now)
            shard.parts.ledger.finalize(now)
            shard.parts.views.finalize(now)

    def register_view(self, spec: ViewSpec, now: float = 0.0) -> ViewSpec:
        """Register a derived view on every shard.

        Each shard maintains the view over the members it owns; group keys
        are computed from global ids (the key map installed at build time),
        so :meth:`collect` can merge the per-shard states exactly.
        """
        for shard in self.shards:
            shard.parts.views.register(spec, now)
        return spec

    def collect(
        self,
        duration: float,
        *,
        now: float | None = None,
        final: bool = True,
        extras: dict | None = None,
    ) -> SimulationResult:
        """Collect per-shard results and merge them into one report.

        With one shard this is exactly :func:`collect_result` — bit-
        identical to the unsharded path.  With N, the merge weights the
        staleness folds by owned object counts and stamps the router's
        accounting into ``extras``.
        """
        if self.router is None:
            return collect_result(
                self.shards[0].parts,
                duration,
                now=now,
                final=final,
                extras=extras,
            )
        per_shard = [
            collect_result(shard.parts, duration, now=now, final=final)
            for shard in self.shards
        ]
        merged_extras = dict(self.router.accounting())
        if extras:
            merged_extras.update(extras)
        view_reports = [
            shard.parts.views.report(now)
            for shard in self.shards
            if shard.parts.views.specs
        ]
        if view_reports:
            merged_extras.setdefault("views", merge_view_reports(view_reports))
        return SimulationResult.merge(
            per_shard,
            weights_low=[shard.n_low for shard in self.shards],
            weights_high=[shard.n_high for shard in self.shards],
            extras=merged_extras,
        )


def build_shard_set(
    config: SimulationConfig,
    algorithm,
    clock: Clock,
    shards: int = 1,
    **algorithm_kwargs,
) -> ShardSet:
    """Wire ``shards`` pipelines over one keyspace and one clock.

    Args:
        config: The global configuration (global object counts and queue
            budgets; they are split across shards).
        algorithm: Scheduler name, or an instance (single-shard only — N
            pipelines need N independent scheduler states, so multi-shard
            builds require a registry name).
        clock: Shared clock for every shard (an
            :class:`~repro.sim.engine.Engine` for deterministic sharded
            simulation, a wall clock in a live worker).
        shards: Shard count; 1 reproduces the unsharded wiring exactly.
        **algorithm_kwargs: Constructor args for a named algorithm.
    """
    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")
    if shards == 1:
        parts = build_parts(config, algorithm, clock, **algorithm_kwargs)
        shard = Shard(
            index=0,
            parts=parts,
            n_low=config.updates.n_low,
            n_high=config.updates.n_high,
        )
        return ShardSet(config, None, [shard])
    if not isinstance(algorithm, str):
        raise ValueError(
            "multi-shard builds need an algorithm name (each shard gets "
            "its own instance), not a shared instance"
        )
    config.validate()
    router = ShardRouter(config.updates.n_low, config.updates.n_high, shards)
    built = []
    for index in range(shards):
        sub_config = shard_config(config, router, index)
        parts = build_parts(sub_config, algorithm, clock, **algorithm_kwargs)
        parts.views.set_key_map(shard_view_key_map(router, index))
        k_low, k_high = router.counts(index)
        built.append(Shard(index=index, parts=parts, n_low=k_low, n_high=k_high))
    return ShardSet(config, router, built)


def shard_view_key_map(router: ShardRouter, index: int):
    """Local→global id map for one shard's view registry."""
    tables = {
        klass: router.global_ids(index, klass)
        for klass in (ObjectClass.VIEW_LOW, ObjectClass.VIEW_HIGH)
    }

    def key_map(klass: ObjectClass, local_id: int) -> int:
        return tables[klass][local_id]

    return key_map
