"""Single-run command line: ``python -m repro``.

Runs one simulation at the paper's baseline (Tables 1-3) with selected
overrides and prints the full metric report::

    python -m repro --algorithm OD --seconds 100 --lambda-t 15
    python -m repro --algorithm TF --staleness uu --discipline lifo
    python -m repro --algorithm SU --abort-stale --replications 5
"""

from __future__ import annotations

import argparse
import sys

from repro.config import (
    QueueDiscipline,
    StaleReadAction,
    StalenessPolicy,
    baseline_config,
)
from repro.core.algorithms.registry import ALGORITHMS
from repro.core.simulator import run_simulation
from repro.metrics.report import format_result, format_table
from repro.metrics.validate import check_invariants


def _algorithm_lines() -> str:
    """One line per registered algorithm, from each class's docstring."""
    lines = []
    for name in sorted(ALGORITHMS):
        doc = ALGORITHMS[name].__doc__ or ""
        summary = doc.strip().splitlines()[0] if doc.strip() else ""
        lines.append(f"  {name:<10} {summary}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run one update-stream scheduling simulation "
        "(Adelberg et al., SIGMOD 1995 model).",
        epilog="scheduling algorithms:\n" + _algorithm_lines(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--algorithm", default="OD", type=str.upper,
                        choices=sorted(ALGORITHMS), metavar="ALGO",
                        help="scheduling algorithm: "
                        + ", ".join(sorted(ALGORITHMS)) + " (default OD)")
    parser.add_argument("--seconds", type=float, default=100.0,
                        help="simulated duration (default 100)")
    parser.add_argument("--warmup", type=float, default=None,
                        help="warmup seconds excluded from metrics "
                        "(default: a quarter of the duration, capped at 20)")
    parser.add_argument("--seed", type=int, default=1995)
    parser.add_argument("--lambda-t", type=float, default=None,
                        help="transaction arrival rate (default 10/s)")
    parser.add_argument("--lambda-u", type=float, default=None,
                        help="update arrival rate (default 400/s)")
    parser.add_argument("--max-age", type=float, default=None,
                        help="MA staleness threshold alpha (default 7s)")
    parser.add_argument("--staleness", choices=[p.value for p in StalenessPolicy],
                        default=StalenessPolicy.MAX_AGE.value)
    parser.add_argument("--discipline", choices=[d.value for d in QueueDiscipline],
                        default=QueueDiscipline.FIFO.value)
    parser.add_argument("--abort-stale", action="store_true",
                        help="abort transactions that read stale data")
    parser.add_argument("--indexed-queue", action="store_true",
                        help="hash-index the update queue (newest per object)")
    parser.add_argument("--fraction", type=float, default=0.2,
                        help="reserved update share for FX (default 0.2)")
    parser.add_argument("--shards", type=int, default=1,
                        help="hash-partition the keyspace over this many "
                        "pipelines on one virtual clock (default 1, the "
                        "classic single pipeline)")
    parser.add_argument("--view", action="append", default=[], metavar="SPEC",
                        help="register a derived view before the run "
                        "(repeatable); SPEC is NAME=KIND:PARTITION with "
                        "options, e.g. 'by8=sum:low,groups=8', "
                        "'hot=top_k:high,k=4', 'w=window_avg:low,window=2.5'")
    parser.add_argument("--replications", type=int, default=1,
                        help="independent replications; > 1 prints mean ± CI")
    parser.add_argument("--workers", type=int, default=None,
                        help="processes for replicated runs (default: "
                        "$REPRO_WORKERS or the CPU count); results are "
                        "identical to --workers 1")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    warmup = args.warmup
    if warmup is None:
        warmup = min(20.0, args.seconds / 4)
    config = baseline_config(
        duration=args.seconds,
        seed=args.seed,
        staleness=StalenessPolicy(args.staleness),
    )
    config.warmup = warmup
    if args.lambda_t is not None:
        config = config.with_transactions(arrival_rate=args.lambda_t)
    if args.lambda_u is not None:
        config = config.with_updates(arrival_rate=args.lambda_u)
    if args.max_age is not None:
        config = config.with_transactions(max_age=args.max_age)
    if args.abort_stale:
        config = config.with_transactions(stale_read_action=StaleReadAction.ABORT)
    config = config.with_system(
        queue_discipline=QueueDiscipline(args.discipline),
        indexed_update_queue=args.indexed_queue,
    )
    config.validate()

    kwargs = {"fraction": args.fraction} if args.algorithm.upper() == "FX" else {}

    if args.replications > 1:
        if args.shards > 1:
            print("--shards is a single-run option; drop --replications",
                  file=sys.stderr)
            return 2
        if args.view:
            print("--view is a single-run option; drop --replications",
                  file=sys.stderr)
            return 2
        from repro.experiments.replication import run_replicated
        from repro.experiments.sweeps import default_workers

        workers = args.workers if args.workers is not None else default_workers()
        replicated = run_replicated(
            config, args.algorithm, args.replications, workers=workers, **kwargs
        )
        rows = [
            (name, s.mean, s.ci_halfwidth, s.stdev, s.minimum, s.maximum)
            for name, s in replicated.summaries.items()
        ]
        print(format_table(
            ("metric", "mean", "±95% CI", "stdev", "min", "max"),
            rows,
            title=f"{replicated.algorithm}: {args.replications} replications "
            f"of {args.seconds:g}s (warmup {warmup:g}s)",
        ))
        return 0

    result = run_simulation(
        config, args.algorithm, shards=args.shards, views=args.view, **kwargs
    )
    print(format_result(result))
    violations = check_invariants(result)
    if violations:
        print("\nINVARIANT VIOLATIONS:", file=sys.stderr)
        for violation in violations:
            print(f"- {violation}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
