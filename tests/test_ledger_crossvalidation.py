"""System-level cross-validation of the exact staleness ledgers.

Runs full simulations twice — once with the exact ledger, once with a
fine-grained :class:`~repro.metrics.freshness.SampledLedger` attached to
the same checker — and requires the fold metrics to agree within the
sampling resolution.  This catches any divergence between the analytic
bookkeeping and what the checker actually reports at run time.
"""

import pytest

from repro.config import StalenessPolicy, baseline_config
from repro.core.simulator import Simulation
from repro.db.objects import ObjectClass
from repro.metrics.freshness import SampledLedger


def run_with_sampling(config, algorithm, interval=0.02):
    """Run a simulation with an additional sampling probe attached."""
    sim = Simulation(config, algorithm)
    probe = SampledLedger(
        sim.checker, sim.engine, interval=interval, end_time=config.duration
    )
    probe.bind(sim.database, sim.update_queue)
    probe.start()
    result = sim.run()
    probe.finalize(config.duration)
    return sim, result, probe


@pytest.mark.parametrize("algorithm", ["UF", "TF", "SU", "OD"])
@pytest.mark.parametrize(
    "policy",
    [
        StalenessPolicy.MAX_AGE,
        StalenessPolicy.MAX_AGE_ARRIVAL,
        StalenessPolicy.UNAPPLIED_UPDATE,
    ],
)
def test_exact_ledger_agrees_with_dense_sampling(algorithm, policy):
    config = baseline_config(duration=6.0, staleness=policy).with_updates(
        arrival_rate=80.0, n_low=25, n_high=25
    ).with_transactions(arrival_rate=15.0, max_age=1.5)
    sim, result, probe = run_with_sampling(config, algorithm)
    for klass, exact in (
        (ObjectClass.VIEW_LOW, result.fold_low),
        (ObjectClass.VIEW_HIGH, result.fold_high),
    ):
        sampled = probe.stale_fraction(klass, config.duration)
        # Rectangle-rule error is bounded by interval * transition rate;
        # at these rates a generous absolute tolerance suffices.
        assert exact == pytest.approx(sampled, abs=0.03), (
            f"{algorithm}/{policy.value}/{klass.value}: "
            f"exact {exact:.4f} vs sampled {sampled:.4f}"
        )


def test_combined_policy_upper_bounds_its_parts():
    """COMBINED staleness is the union of MA and UU: its fold must be at
    least each individual definition's fold on the same run."""
    base = baseline_config(duration=6.0).with_updates(
        arrival_rate=80.0, n_low=25, n_high=25
    ).with_transactions(arrival_rate=20.0, max_age=1.5)

    folds = {}
    for policy in (
        StalenessPolicy.MAX_AGE,
        StalenessPolicy.UNAPPLIED_UPDATE,
        StalenessPolicy.COMBINED,
    ):
        result = Simulation(base.replace(staleness=policy), "TF").run()
        folds[policy] = result.fold_low
    # Sampling noise on the COMBINED ledger warrants a small tolerance.
    assert folds[StalenessPolicy.COMBINED] >= folds[StalenessPolicy.MAX_AGE] - 0.03
    assert (
        folds[StalenessPolicy.COMBINED]
        >= folds[StalenessPolicy.UNAPPLIED_UPDATE] - 0.03
    )


def test_ma_arrival_is_fresher_than_ma_generation():
    """Under MA-arrival the clock starts at RTDB arrival (later than the
    generation timestamp), so data can only look fresher, never staler."""
    base = baseline_config(duration=6.0).with_updates(
        arrival_rate=80.0, n_low=25, n_high=25, mean_age=0.5
    ).with_transactions(arrival_rate=20.0, max_age=1.0)
    by_generation = Simulation(
        base.replace(staleness=StalenessPolicy.MAX_AGE), "TF"
    ).run()
    by_arrival = Simulation(
        base.replace(staleness=StalenessPolicy.MAX_AGE_ARRIVAL), "TF"
    ).run()
    assert by_arrival.fold_low <= by_generation.fold_low + 1e-9
    assert by_arrival.fold_high <= by_generation.fold_high + 1e-9
