"""Scaled-down qualitative shape checks (regression guard for the figures).

The full reproductions live in benchmarks/; these compact versions run in
the normal test suite so a change that flips the paper's comparative story
(who wins on which metric) fails fast.
"""

import pytest

from repro.config import StaleReadAction, StalenessPolicy, baseline_config
from repro.core.simulator import run_simulation


@pytest.fixture(scope="module")
def overload_results():
    """All four algorithms at lambda_t=20 (overload), MA, 30s measured."""
    config = baseline_config(duration=40.0)
    config.warmup = 10.0
    config = config.with_transactions(arrival_rate=20.0)
    return {
        name: run_simulation(config, name) for name in ("UF", "TF", "SU", "OD")
    }


def test_uf_keeps_database_fresh(overload_results):
    assert overload_results["UF"].fold_low < 0.15
    assert overload_results["UF"].fold_high < 0.15


def test_tf_lets_database_go_stale(overload_results):
    assert overload_results["TF"].fold_low > 0.8


def test_su_protects_only_high_importance(overload_results):
    su = overload_results["SU"]
    assert su.fold_high < 0.15
    assert su.fold_low > 0.5


def test_tf_od_miss_fewer_deadlines_than_uf(overload_results):
    assert overload_results["TF"].p_md < overload_results["UF"].p_md
    assert overload_results["OD"].p_md < overload_results["UF"].p_md


def test_od_wins_on_success(overload_results):
    od = overload_results["OD"].p_success
    for name in ("UF", "TF", "SU"):
        assert od >= overload_results[name].p_success - 0.02


def test_tf_loses_on_success(overload_results):
    tf = overload_results["TF"].p_success
    for name in ("UF", "OD", "SU"):
        assert tf <= overload_results[name].p_success + 0.02


def test_uf_update_share_is_about_a_fifth(overload_results):
    assert 0.12 < overload_results["UF"].rho_updates < 0.27


def test_stale_aborts_help_tf_freshness():
    base = baseline_config(duration=40.0).with_transactions(arrival_rate=20.0)
    base.warmup = 10.0
    aborting = base.with_transactions(stale_read_action=StaleReadAction.ABORT)
    plain = run_simulation(base, "TF")
    with_abort = run_simulation(aborting, "TF")
    assert with_abort.fold_high < plain.fold_high * 0.6


def test_uu_ranking_matches_paper():
    config = baseline_config(duration=40.0, staleness=StalenessPolicy.UNAPPLIED_UPDATE)
    config.warmup = 10.0
    config = config.with_transactions(arrival_rate=12.0)
    results = {name: run_simulation(config, name) for name in ("UF", "TF", "SU", "OD")}
    ranking = sorted(results, key=lambda n: results[n].p_success, reverse=True)
    assert ranking == ["OD", "UF", "SU", "TF"]
