"""Property-based invariants over randomized configurations.

Hypothesis drives short end-to-end simulations with random (but valid)
parameters and checks the conservation laws and metric bounds that must
hold for *every* configuration and algorithm.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import (
    QueueDiscipline,
    StaleReadAction,
    StalenessPolicy,
    baseline_config,
)
from repro.core.simulator import run_simulation

configs = st.fixed_dictionaries(
    {
        "algorithm": st.sampled_from(["UF", "TF", "SU", "OD", "FX", "TF-SPLIT"]),
        "staleness": st.sampled_from(
            [StalenessPolicy.MAX_AGE, StalenessPolicy.UNAPPLIED_UPDATE]
        ),
        "stale_action": st.sampled_from(list(StaleReadAction)),
        "discipline": st.sampled_from(list(QueueDiscipline)),
        "lambda_u": st.floats(min_value=20.0, max_value=300.0),
        "lambda_t": st.floats(min_value=1.0, max_value=30.0),
        "max_age": st.floats(min_value=0.5, max_value=5.0),
        "seed": st.integers(min_value=0, max_value=2**20),
        "uq_max": st.integers(min_value=4, max_value=200),
        "os_max": st.integers(min_value=2, max_value=100),
        "x_scan": st.sampled_from([0, 100, 1000]),
        "x_queue": st.sampled_from([0, 50]),
        "indexed": st.booleans(),
        "preemption": st.booleans(),
        "feasible": st.booleans(),
    }
)


@given(configs)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_invariants_hold_for_random_configurations(params):
    config = (
        baseline_config(duration=4.0, seed=params["seed"])
        .with_updates(arrival_rate=params["lambda_u"], n_low=30, n_high=30)
        .with_transactions(
            arrival_rate=params["lambda_t"],
            max_age=params["max_age"],
            stale_read_action=params["stale_action"],
        )
        .with_system(
            update_queue_max=params["uq_max"],
            os_queue_max=params["os_max"],
            x_scan=params["x_scan"],
            x_queue=params["x_queue"],
            indexed_update_queue=params["indexed"],
            transaction_preemption=params["preemption"],
            feasible_deadline=params["feasible"],
            queue_discipline=params["discipline"],
        )
        .replace(staleness=params["staleness"])
    )
    result = run_simulation(config, params["algorithm"])

    # The full invariant battery: conservation laws, probability bounds,
    # and cross-metric consistency (see repro.metrics.validate).
    from repro.metrics.validate import assert_invariants

    assert_invariants(result)


@given(st.integers(min_value=0, max_value=2**16))
@settings(max_examples=10, deadline=None)
def test_determinism_for_any_seed(seed):
    config = baseline_config(duration=3.0, seed=seed).with_updates(
        arrival_rate=50.0, n_low=20, n_high=20
    )
    assert run_simulation(config, "OD") == run_simulation(config, "OD")


@given(
    st.sampled_from(["UF", "TF", "SU", "OD"]),
    st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=10, deadline=None)
def test_workload_identical_across_algorithms(algorithm, seed):
    """Common random numbers: arrivals never depend on the policy."""
    config = baseline_config(duration=3.0, seed=seed).with_updates(
        arrival_rate=50.0, n_low=20, n_high=20
    )
    reference = run_simulation(config, "TF")
    other = run_simulation(config, algorithm)
    assert other.updates_arrived == reference.updates_arrived
    assert other.transactions_arrived == reference.transactions_arrived
    assert other.value_offered == pytest.approx(reference.value_offered)
