"""Tests for the sweep runner and figure builders."""

import pytest

from repro.config import baseline_config
from repro.experiments.figures import (
    FIGURES,
    Check,
    Figure,
    Panel,
    build_figure,
    clear_sweep_cache,
)
from repro.experiments.sweeps import (
    ExperimentScale,
    Sweep,
    SweepPoint,
    run_sweep,
    scaled_baseline,
)

TINY = ExperimentScale(duration=2.0, warmup=0.5, label="tiny-test")


def tiny_base():
    return scaled_baseline(TINY).with_updates(
        arrival_rate=50.0, n_low=20, n_high=20
    )


class TestScale:
    def test_quick_and_paper_presets(self):
        assert ExperimentScale.quick().duration < ExperimentScale.paper().duration
        assert ExperimentScale.paper().duration == 1000.0

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert ExperimentScale.from_env().label == "quick"
        monkeypatch.setenv("REPRO_FULL", "1")
        assert ExperimentScale.from_env().label == "paper"
        monkeypatch.setenv("REPRO_FULL", "0")
        assert ExperimentScale.from_env().label == "quick"

    def test_apply_sets_duration_and_warmup(self):
        config = TINY.apply(baseline_config())
        assert config.duration == 2.0
        assert config.warmup == 0.5


class TestSweep:
    def test_run_sweep_covers_grid(self):
        sweep = run_sweep(
            tiny_base(),
            "lambda_t",
            (2.0, 5.0),
            lambda config, x: config.with_transactions(arrival_rate=x),
            ("TF", "UF"),
        )
        assert sweep.xs() == [2.0, 5.0]
        assert len(sweep.points) == 4
        assert sweep.result(2.0, "TF").algorithm == "TF"
        with pytest.raises(KeyError):
            sweep.result(3.0, "TF")

    def test_series_and_values(self):
        sweep = run_sweep(
            tiny_base(),
            "lambda_t",
            (2.0, 5.0),
            lambda config, x: config.with_transactions(arrival_rate=x),
            ("TF",),
        )
        series = sweep.series("TF", "p_md")
        assert [x for x, _ in series] == [2.0, 5.0]
        assert sweep.values("TF", "p_md") == [y for _, y in series]
        custom = sweep.series("TF", lambda r: r.rho_total)
        assert len(custom) == 2

    def test_parallel_sweep_matches_serial(self):
        args = (
            tiny_base(),
            "lambda_t",
            (2.0, 5.0),
            lambda config, x: config.with_transactions(arrival_rate=x),
            ("TF", "UF"),
        )
        serial = run_sweep(*args, workers=1)
        parallel = run_sweep(*args, workers=2)
        assert [p.result for p in parallel.points] == [
            p.result for p in serial.points
        ]

    def test_four_workers_bit_identical_to_serial(self):
        # The determinism contract: a parallel fan-out must reproduce the
        # serial sweep metric-for-metric (common random numbers per cell).
        args = (
            tiny_base(),
            "lambda_t",
            (2.0, 4.0, 6.0),
            lambda config, x: config.with_transactions(arrival_rate=x),
            ("TF", "UF", "OD"),
        )
        serial = run_sweep(*args, workers=1)
        parallel = run_sweep(*args, workers=4)
        for serial_point, parallel_point in zip(serial.points, parallel.points):
            assert serial_point.x == parallel_point.x
            assert serial_point.algorithm == parallel_point.algorithm
            assert serial_point.result == parallel_point.result

    def test_workers_validated(self):
        with pytest.raises(ValueError):
            run_sweep(
                tiny_base(), "x", (1.0,), lambda c, x: c, ("TF",), workers=0
            )

    def test_algorithm_kwargs(self):
        sweep = run_sweep(
            tiny_base(),
            "lambda_t",
            (2.0,),
            lambda config, x: config.with_transactions(arrival_rate=x),
            ("FX",),
            algorithm_kwargs={"FX": {"fraction": 0.3}},
        )
        assert sweep.result(2.0, "FX").algorithm == "FX"


class TestFigures:
    def test_registry_covers_every_paper_figure(self):
        for figure_id in range(3, 17):
            assert str(figure_id) in FIGURES
        for ablation in ("A1", "A2", "A3", "A4"):
            assert ablation in FIGURES

    def test_unknown_figure_rejected(self):
        with pytest.raises(KeyError):
            build_figure("99", TINY)

    def test_panel_csv_export(self):
        panel = Panel(
            name="demo", x_label="x",
            columns={"TF": [(1.0, 0.5), (2.0, 0.7)], "UF": [(1.0, 0.1), (2.0, 0.2)]},
        )
        csv = panel.to_csv()
        lines = csv.splitlines()
        assert lines[0] == "x,TF,UF"
        assert lines[1] == "1.0,0.5,0.1"
        assert lines[2] == "2.0,0.7,0.2"

    def test_panel_table_rendering(self):
        panel = Panel(
            name="demo", x_label="x",
            columns={"TF": [(1.0, 0.5), (2.0, 0.7)], "UF": [(1.0, 0.1), (2.0, 0.2)]},
        )
        table = panel.to_table()
        assert "demo" in table
        assert "TF" in table and "UF" in table
        assert "0.7000" in table

    def test_figure_render_and_failed_checks(self):
        figure = Figure(
            "X", "demo",
            panels=[],
            checks=[Check("good", True), Check("bad", False, "detail")],
        )
        text = figure.render()
        assert "[PASS] good" in text
        assert "[FAIL] bad (detail)" in text
        assert len(figure.failed_checks()) == 1

    def test_sweep_cache_reuses_runs(self):
        clear_sweep_cache()
        from repro.experiments import figures

        before = len(figures._SWEEP_CACHE)
        figures.baseline_sweep(TINY)
        mid = len(figures._SWEEP_CACHE)
        figures.baseline_sweep(TINY)
        assert mid == before + 1
        assert len(figures._SWEEP_CACHE) == mid
        clear_sweep_cache()
        assert len(figures._SWEEP_CACHE) == 0

    def test_build_figure_smoke(self):
        # Build one real figure end-to-end at a tiny scale; shape checks are
        # NOT asserted here (they need realistic run lengths), only that the
        # machinery produces panels and checks.
        clear_sweep_cache()
        try:
            figure = build_figure("3", TINY)
            assert figure.figure_id == "3"
            assert figure.panels
            assert figure.checks
            table = figure.panels[0].to_table()
            assert "lambda_t" in table
        finally:
            clear_sweep_cache()


class TestCli:
    def test_main_single_figure(self, capsys, tmp_path):
        from repro.experiments.__main__ import main

        clear_sweep_cache()
        try:
            # A tiny figure is not wired into the CLI; just check the CLI
            # parses and runs one real (quick) ablation that is cheap.
            exit_code = main(
                ["--figure", "A2", "--workers", "1",
                 "--cache-dir", str(tmp_path / "cache")]
            )
        finally:
            clear_sweep_cache()
        output = capsys.readouterr().out
        assert "A2" in output
        assert "cache" in output
        assert exit_code in (0, 1)

    def test_main_no_cache_flag(self, capsys, tmp_path):
        from repro.experiments.__main__ import main

        clear_sweep_cache()
        try:
            exit_code = main(["--figure", "A2", "--workers", "1", "--no-cache"])
        finally:
            clear_sweep_cache()
        output = capsys.readouterr().out
        assert "cache: off" in output
        assert exit_code in (0, 1)

    def test_main_requires_selection(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main([])
