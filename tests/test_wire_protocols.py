"""Tests for wire-protocol negotiation and JSONL/binary parity.

Three layers of the interop contract:

* :func:`negotiate_protocol` — the first bytes of a session select the
  codec; a JSONL peer's first byte is handed back untouched.
* Mixed sessions — a JSONL client and a binary client against the same
  binary-capable server see the same records land and the same replies
  come back.
* Full parity — for every scheduling algorithm, a live run fed over the
  binary wire is asdict-identical to the same run fed over JSONL, at
  shards=1 (real socket, engine clock) and shards=2 (routed engine-level
  pipelines), including partial updates and empty-read transactions.
"""

import asyncio
import json
from dataclasses import asdict, replace

import pytest

from repro.config import baseline_config
from repro.core.sharding import route_batch, shard_config
from repro.db.objects import ObjectClass, Update
from repro.db.sharding import ShardRouter
from repro.live import IngestServer, LiveRuntime, WireClient
from repro.live.wire import (
    PROTOCOL_BINARY,
    PROTOCOL_JSONL,
    WireProtocolError,
    negotiate_protocol,
)
from repro.metrics.results import SimulationResult
from repro.sim.engine import Engine
from repro.sim.streams import StreamFamily
from repro.workload.codec import (
    WIRE_PREAMBLE,
    FrameDecoder,
    decode_lines,
    encode_frames,
    encode_json_frame,
    encode_lines,
    item_from_record,
)
from repro.workload.transactions import TransactionGenerator, TransactionSpec
from repro.workload.updates import UpdateStreamGenerator

ALGORITHMS = ["UF", "TF", "SU", "OD", "FX", "TF-SPLIT"]


def _config(**updates_kwargs):
    config = baseline_config(duration=5.0, seed=424242)
    config.warmup = 0.0
    updates_kwargs.setdefault("arrival_rate", 120.0)
    updates_kwargs.setdefault("partial_probability", 0.3)
    config = config.with_updates(**updates_kwargs)
    return config.with_transactions(arrival_rate=10.0)


def _draw_workload(config):
    """The simulator's own draws, plus one empty-read spec (satellite
    requirement: the readless schema edge must ride both wires)."""
    streams = StreamFamily(config.seed)
    update_gen = UpdateStreamGenerator(config, None, streams, lambda _: None)
    txn_gen = TransactionGenerator(config, None, streams, lambda _: None)
    items = []
    t = update_gen.next_interarrival()
    while t < config.duration:
        items.append(update_gen.draw_update(t))
        t += update_gen.next_interarrival()
    t = txn_gen.next_interarrival()
    seq = 0
    while t < config.duration:
        items.append(txn_gen.draw_spec(t))
        seq += 1
        t += txn_gen.next_interarrival()
    template = next(i for i in items if isinstance(i, TransactionSpec))
    items.append(replace(template, seq=seq, arrival_time=2.5, reads=()))
    assert any(isinstance(i, Update) and i.partial for i in items)
    return items


# ----------------------------------------------------------------------
# Negotiation
# ----------------------------------------------------------------------
def _reader_with(data: bytes, *, eof: bool = True) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data) if data else None
    if eof:
        reader.feed_eof()
    return reader


def test_negotiate_jsonl_returns_the_peeked_byte():
    async def run():
        reader = _reader_with(b'{"kind": "update"}\n')
        return await negotiate_protocol(reader)

    protocol, leftover = asyncio.run(run())
    assert protocol == PROTOCOL_JSONL
    assert leftover == b"{"


def test_negotiate_empty_session_defaults_to_jsonl():
    async def run():
        return await negotiate_protocol(_reader_with(b""))

    protocol, leftover = asyncio.run(run())
    assert protocol == PROTOCOL_JSONL
    assert leftover == b""


def test_negotiate_binary_preamble():
    async def run():
        return await negotiate_protocol(_reader_with(WIRE_PREAMBLE + b"rest"))

    protocol, leftover = asyncio.run(run())
    assert protocol == PROTOCOL_BINARY
    assert leftover == b""


def test_negotiate_rejects_truncated_preamble():
    async def run():
        return await negotiate_protocol(_reader_with(WIRE_PREAMBLE[:3]))

    with pytest.raises(WireProtocolError):
        asyncio.run(run())


def test_negotiate_rejects_unknown_version():
    bad = WIRE_PREAMBLE[:-1] + b"\x7f"

    async def run():
        return await negotiate_protocol(_reader_with(bad))

    with pytest.raises(WireProtocolError, match="version"):
        asyncio.run(run())


# ----------------------------------------------------------------------
# Mixed-protocol sessions against one server
# ----------------------------------------------------------------------
def _smoke_config():
    config = baseline_config(duration=1.0, seed=7)
    config.warmup = 0.0
    config = config.with_updates(arrival_rate=100.0, mean_age=0.01)
    config = config.with_transactions(arrival_rate=20.0, compute_mean=0.002,
                                      compute_stdev=0.0005)
    return config.with_system(ips=5e8)


def _session_items():
    update = Update(seq=0, klass=ObjectClass.VIEW_LOW, object_id=1,
                    value=42.0, generation_time=0.0, arrival_time=0.0)
    spec = TransactionSpec(seq=0, arrival_time=0.0, high_value=False,
                           value=1.0, compute_time=0.001, reads=(1,),
                           slack=2.0)
    return update, spec


def test_binary_session_roundtrip_matches_jsonl_session():
    """The smoke-test session, once per protocol, on the same server:
    identical records received and reply records either way."""

    async def jsonl_session(host, port):
        update, spec = _session_items()
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(encode_lines([update, spec]))
        writer.write(b'{"kind": "snapshot"}\n')
        await writer.drain()
        replies = []
        for _ in range(2):
            line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            replies.append(json.loads(line))
        writer.close()
        return replies

    async def binary_session(host, port):
        update, spec = _session_items()
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(WIRE_PREAMBLE)
        writer.write(encode_frames([update, spec]))
        writer.write(encode_json_frame(b'{"kind": "snapshot"}'))
        await writer.drain()
        decoder = FrameDecoder()
        replies = []
        while len(replies) < 2:
            chunk = await asyncio.wait_for(reader.read(4096), timeout=5.0)
            assert chunk, "server closed before replying"
            replies.extend(decoder.feed(chunk))
        writer.close()
        return replies

    async def scenario():
        runtime = LiveRuntime(_smoke_config(), "TF")
        runtime.start()
        server = IngestServer(runtime)
        host, port = await server.start()
        jsonl = await jsonl_session(host, port)
        binary = await binary_session(host, port)
        await server.stop()
        result = await runtime.shutdown()
        return jsonl, binary, server, result

    jsonl, binary, server, result = asyncio.run(scenario())
    assert server.records_received == 4  # 2 per session
    assert server.errors == 0
    key = lambda r: r["kind"]  # noqa: E731 - tiny sort key
    for j, b in zip(sorted(jsonl, key=key), sorted(binary, key=key)):
        assert j.keys() == b.keys()
        assert j["kind"] == b["kind"]
    outcomes = [r for r in jsonl + binary if r["kind"] == "outcome"]
    assert [r["outcome"] for r in outcomes] == ["committed", "committed"]
    assert result.transactions_committed == 2


def test_wire_clients_of_both_protocols_interoperate():
    """A JSONL WireClient and a binary WireClient drive the same server
    and collect identical outcome counts for identical submissions."""
    update, spec = _session_items()

    async def drive(host, port, wire):
        outcomes = []

        def on_line(body: bytes):
            record = json.loads(body)
            if record.get("kind") == "outcome":
                outcomes.append(record["outcome"])

        client = WireClient(host, port, wire=wire, on_line=on_line,
                            flush_us=0.0)
        await client.connect()
        await client.send(update)
        for seq in range(5):
            await client.send(replace(spec, seq=seq))
        await client.drain()
        deadline = asyncio.get_event_loop().time() + 5.0
        while len(outcomes) < 5:
            assert asyncio.get_event_loop().time() < deadline
            await asyncio.sleep(0.005)
        await client.aclose()
        return outcomes

    async def scenario():
        runtime = LiveRuntime(_smoke_config(), "TF")
        runtime.start()
        server = IngestServer(runtime)
        host, port = await server.start()
        via_jsonl = await drive(host, port, PROTOCOL_JSONL)
        via_binary = await drive(host, port, PROTOCOL_BINARY)
        await server.stop()
        await runtime.shutdown()
        return via_jsonl, via_binary

    via_jsonl, via_binary = asyncio.run(scenario())
    assert len(via_jsonl) == len(via_binary) == 5
    assert sorted(via_jsonl) == sorted(via_binary)


# ----------------------------------------------------------------------
# Six-algorithm parity, shards=1: real socket, engine clock
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_binary_wire_parity_single_shard(algorithm):
    """A binary-wire session == a JSONL session, asdict-identical.

    Same pattern as the wire-batch parity test: frozen engine clock, one
    delivery instant, real IngestServer over a real socket — only the
    session codec differs, so the results must match field for field.
    """
    config = _config(arrival_rate=300.0)
    items = _draw_workload(config)

    async def scenario(protocol):
        engine = Engine()
        engine.run_until(1.0)  # a fixed, shared delivery instant
        runtime = LiveRuntime(config, algorithm, clock=engine)
        server = IngestServer(runtime)
        host, port = await server.start()
        reader, writer = await asyncio.open_connection(host, port)
        if protocol == PROTOCOL_BINARY:
            writer.write(WIRE_PREAMBLE + encode_frames(items))
        else:
            writer.write(encode_lines(items))
        await writer.drain()
        while server.records_received < len(items):
            await asyncio.sleep(0.001)
        writer.close()
        await server.stop()
        engine.run_until(60.0)  # let every queued transaction finish
        return asdict(runtime.finalize())

    jsonl = asyncio.run(scenario(PROTOCOL_JSONL))
    binary = asyncio.run(scenario(PROTOCOL_BINARY))
    assert binary == jsonl
    assert binary["updates_applied"] > 0
    assert binary["transactions_committed"] > 0


# ----------------------------------------------------------------------
# Six-algorithm parity, shards=2: routed engine-level pipelines
# ----------------------------------------------------------------------
def _decode_via(protocol, items):
    if protocol == PROTOCOL_BINARY:
        decoded = FrameDecoder().feed(encode_frames(items))
    else:
        decoded = [
            item_from_record(record)
            for record in decode_lines(encode_lines(items).splitlines())
        ]
    assert not any(isinstance(d, Exception) for d in decoded)
    return decoded


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_binary_wire_parity_two_shards(algorithm):
    """Shards=2: the routed, merged run is asdict-identical whether the
    trace crossed the wire as binary frames or JSONL lines."""
    config = _config(arrival_rate=300.0)
    items = _draw_workload(config)

    def run(protocol):
        decoded = _decode_via(protocol, items)
        router = ShardRouter(config.updates.n_low, config.updates.n_high, 2)
        engine = Engine()
        runtimes = [
            LiveRuntime(shard_config(config, router, i), algorithm,
                        clock=engine)
            for i in range(2)
        ]
        for shard, routed in route_batch(router, decoded).items():
            runtime = runtimes[shard]
            for record in routed:
                if isinstance(record, Update):
                    engine.schedule_at(record.arrival_time,
                                       runtime.ingest, record)
                else:
                    engine.schedule_at(record.arrival_time,
                                       runtime.submit, record)
        engine.run_until(60.0)
        merged = SimulationResult.merge([r.finalize() for r in runtimes])
        result = asdict(merged)
        result.pop("extras", None)  # merge provenance, not model output
        return result

    jsonl = run(PROTOCOL_JSONL)
    binary = run(PROTOCOL_BINARY)
    assert binary == jsonl
    assert binary["updates_applied"] > 0
    assert binary["transactions_committed"] > 0
