"""Durability tests: write-ahead log, snapshots, and warm restarts.

The contract under test is the one docs/DURABILITY.md states: a crashed
shard restarted over its log + snapshot comes back *warm* — generation
timestamps and staleness integrals survive, replay is idempotent through
the database's worthiness check, and the stitched pre+post-crash books
still satisfy both conservation laws exactly.

Layers:

* unit — :class:`UpdateLog` / :func:`read_log` / :class:`SnapshotStore`
  (round trips, rotation, torn tails, corrupt records, fsync policies);
* in-process — full crash cycles on a mocked Engine clock for all six
  algorithms, snapshot capture→restore→capture consistency at one shard
  and at a two-shard keyspace slice;
* process — a real :class:`ShardCluster` worker SIGKILLed mid-run and
  warm-restarted by the supervisor.
"""

import asyncio
import json

import pytest

from repro.config import baseline_config
from repro.core.sharding import shard_config
from repro.db.objects import ObjectClass, Update
from repro.db.sharding import ShardRouter
from repro.live import LiveRuntime, ShardCluster
from repro.live.durability import (
    LOG_HEADER_BYTES,
    LOG_RECORD_BYTES,
    DurabilityManager,
    LogReplay,
    SnapshotStore,
    UpdateLog,
    capture_state,
    read_log,
    replay_into,
    restore_state,
)
from repro.sim.engine import Engine
from repro.sim.streams import StreamFamily
from repro.workload.codec import FRAME_HEADER, TAG_UPDATE
from repro.workload.trace import update_to_dict
from repro.workload.transactions import TransactionGenerator
from repro.workload.updates import UpdateStreamGenerator

OP_TIMEOUT = 30.0

ALGORITHMS = ["UF", "TF", "SU", "OD", "FX", "TF-SPLIT"]


def _config(**update_kwargs):
    config = baseline_config(duration=5.0, seed=77)
    config.warmup = 0.0
    update_kwargs.setdefault("arrival_rate", 300.0)
    update_kwargs.setdefault("mean_age", 0.05)
    config = config.with_updates(**update_kwargs)
    return config.with_transactions(arrival_rate=10.0)


def _draw_updates(config, n, *, seed=None):
    streams = StreamFamily(seed if seed is not None else config.seed)
    gen = UpdateStreamGenerator(config, None, streams, lambda _: None)
    out, t = [], 0.0
    for _ in range(n):
        t += gen.next_interarrival()
        out.append(gen.draw_update(t))
    return out


def _simple_updates(n, *, start_seq=0, object_id=0, at=0.0):
    return [
        Update(seq=start_seq + i, klass=ObjectClass.VIEW_LOW,
               object_id=object_id, value=float(i), generation_time=at + i,
               arrival_time=at + i)
        for i in range(n)
    ]


def _update_fields(update):
    return (update.seq, update.klass, update.object_id, update.value,
            update.generation_time, update.arrival_time, update.partial,
            update.attribute)


# ----------------------------------------------------------------------
# Unit: the log file format
# ----------------------------------------------------------------------
def test_log_append_reopen_round_trip(tmp_path):
    path = str(tmp_path / "shard.log")
    log = UpdateLog(path)
    scan = log.open()
    assert isinstance(scan, LogReplay)
    assert log.next_lsn == 0
    first = _simple_updates(3)
    log.append_batch(first)
    assert log.next_lsn == 3
    log.close()

    replay = read_log(path)
    assert replay.base_lsn == 0
    assert replay.next_lsn == 3
    assert not replay.truncated
    assert [_update_fields(u) for u in replay.updates] == [
        _update_fields(u) for u in first
    ]

    # Reopen for append: the LSN continues where the file left off.
    log2 = UpdateLog(path)
    log2.open()
    assert log2.next_lsn == 3
    log2.append_batch(_simple_updates(2, start_seq=3))
    log2.close()
    assert read_log(path).next_lsn == 5


def test_log_rotate_truncates_to_new_base(tmp_path):
    path = str(tmp_path / "shard.log")
    log = UpdateLog(path, shard=4)
    log.open()
    log.append_batch(_simple_updates(5))
    log.rotate(5)
    assert log.next_lsn == 5
    post = _simple_updates(2, start_seq=5)
    log.append_batch(post)
    log.close()

    replay = read_log(path)
    assert replay.shard == 4
    assert replay.base_lsn == 5
    assert replay.next_lsn == 7
    assert not replay.truncated
    assert [u.seq for u in replay.updates] == [u.seq for u in post]


def test_log_torn_tail_is_truncated_on_reopen(tmp_path):
    path = str(tmp_path / "shard.log")
    log = UpdateLog(path)
    log.open()
    log.append_batch(_simple_updates(3))
    log.close()

    # Tear the last record mid-frame, as a crash mid-write(2) would.
    torn = LOG_HEADER_BYTES + 2 * LOG_RECORD_BYTES + 7
    with open(path, "r+b") as handle:
        handle.truncate(torn)

    replay = read_log(path)
    assert len(replay.updates) == 2
    assert replay.truncated
    assert "torn" in replay.reason
    assert replay.valid_bytes == LOG_HEADER_BYTES + 2 * LOG_RECORD_BYTES

    # Reopen drops the tail and appends cleanly after the clean prefix.
    log2 = UpdateLog(path)
    scan = log2.open()
    assert scan.next_lsn == 2
    log2.append_batch(_simple_updates(1, start_seq=9))
    log2.close()
    healed = read_log(path)
    assert not healed.truncated
    assert [u.seq for u in healed.updates] == [0, 1, 9]


def test_log_corrupt_length_stops_at_last_clean_record(tmp_path):
    path = str(tmp_path / "shard.log")
    log = UpdateLog(path)
    log.open()
    log.append_batch(_simple_updates(2))
    log.close()
    with open(path, "ab") as handle:
        # A declared body length far past one update body: garbage.  The
        # log reader's tightened FrameDecoder cap refuses it instead of
        # buffering toward the 16 MiB wire cap.
        handle.write(FRAME_HEADER.pack(TAG_UPDATE, 1 << 20))

    replay = read_log(path)
    assert len(replay.updates) == 2
    assert replay.truncated
    assert "corrupt" in replay.reason

    log2 = UpdateLog(path)
    log2.open()
    assert log2.next_lsn == 2
    log2.close()
    assert not read_log(path).truncated


def test_log_foreign_file_starts_cold(tmp_path):
    path = str(tmp_path / "shard.log")
    with open(path, "wb") as handle:
        handle.write(b"this is not an update log, not even close")
    replay = read_log(path)
    assert replay.updates == []
    assert replay.valid_bytes == 0
    assert replay.reason is not None

    # open() replaces the unusable file with a fresh header.
    log = UpdateLog(path)
    log.open()
    assert log.next_lsn == 0
    log.append_batch(_simple_updates(1))
    log.close()
    healed = read_log(path)
    assert healed.reason is None
    assert len(healed.updates) == 1


def test_log_fsync_policies(tmp_path):
    with pytest.raises(ValueError, match="fsync"):
        UpdateLog(str(tmp_path / "x.log"), fsync="sometimes")

    never = UpdateLog(str(tmp_path / "never.log"), fsync="never")
    never.open()
    never.append_batch(_simple_updates(2))
    never.close()
    assert never.syncs == 0

    always = UpdateLog(str(tmp_path / "always.log"), fsync="always")
    always.open()
    always.append_batch(_simple_updates(1))
    always.append_batch(_simple_updates(1, start_seq=1))
    always.close()
    assert always.syncs == 2

    interval = UpdateLog(str(tmp_path / "interval.log"), fsync="interval",
                         fsync_interval=1e-9)
    interval.open()
    interval.append_batch(_simple_updates(1))
    interval.append_batch(_simple_updates(1, start_seq=1))
    interval.close()
    assert interval.syncs >= 1


def test_snapshot_store_round_trip_and_corruption(tmp_path):
    store = SnapshotStore(str(tmp_path / "snap.json"))
    assert store.load() is None  # missing → cold start
    state = {"schema": 1, "lsn": 42, "objects": {"low": []}}
    store.save(state)
    assert store.load() == state

    with open(store.path, "w", encoding="utf-8") as handle:
        handle.write('{"schema": 1, "lsn":')  # torn mid-replace loses only
    assert store.load() is None                # the *new* snapshot

    store.save({"schema": 999})
    assert store.load() is None  # future schema → cold, not crash


# ----------------------------------------------------------------------
# In-process: capture → restore → capture consistency
# ----------------------------------------------------------------------
def _expected_after_restore(state):
    """What a capture from the restored runtime must report."""
    result = dict(state["result"])
    pending_os = result["updates_pending_os"]
    pending_queue = result["updates_pending_queue"]
    in_flight = result["transactions_in_flight"]
    result["updates_arrived"] -= pending_os + pending_queue
    result["updates_received"] -= pending_queue
    result["updates_enqueued"] -= pending_queue
    result["updates_pending_os"] = 0
    result["updates_pending_queue"] = 0
    result["transactions_arrived"] -= in_flight
    result["transactions_in_flight"] = 0
    aux = dict(state["aux"])
    depth = state["result"]["extras"].get("os_queue_depth", 0) or 0
    aux["os_total_enqueued"] = max(0, aux["os_total_enqueued"] - depth)
    return result, aux


def _roundtrip(config, algorithm="TF"):
    engine = Engine()
    runtime = LiveRuntime(config, algorithm, clock=engine)
    updates = _draw_updates(config, 300)
    runtime.ingest_batch(updates)
    engine.run_until(updates[-1].arrival_time + 0.2)
    state = capture_state(runtime, lsn=300)

    resumed = Engine(start_time=state["wall_time"])
    fresh = LiveRuntime(config, algorithm, clock=resumed)
    restore_state(fresh, state)
    state2 = capture_state(fresh, lsn=300)
    return state, state2


@pytest.mark.parametrize("slice_of_two", [False, True])
def test_capture_restore_capture_is_consistent(slice_of_two):
    """A restored runtime re-captures the same state document, modulo the
    pending-work subtraction restore_state documents — at the full config
    and at a 2-shard keyspace slice (the worker's actual sub-config)."""
    config = _config()
    if slice_of_two:
        router = ShardRouter(config.updates.n_low, config.updates.n_high, 2)
        config = shard_config(config, router, 0)
    state, state2 = _roundtrip(config)

    assert state2["objects"] == state["objects"]
    assert state2["ledger"] == state["ledger"]
    assert state2["queues"] == state["queues"]
    assert state2["db_installs"] == state["db_installs"]
    assert state2["measure_start"] == state["measure_start"]
    assert state2["algorithm"] == state["algorithm"]

    expected_result, expected_aux = _expected_after_restore(state)
    got = dict(state2["result"])
    expected_result.pop("extras")
    got.pop("extras")
    assert got == expected_result
    assert state2["aux"] == expected_aux


def test_restore_rejects_algorithm_mismatch():
    config = _config()
    runtime = LiveRuntime(config, "TF", clock=Engine())
    state = capture_state(runtime, lsn=0)
    other = LiveRuntime(config, "OD", clock=Engine())
    with pytest.raises(ValueError, match="snapshot was taken under"):
        restore_state(other, state)


# ----------------------------------------------------------------------
# In-process: full crash cycles, all six algorithms
# ----------------------------------------------------------------------
def _crash_cycle(algorithm, tmp_path):
    config = _config()
    updates = _draw_updates(config, 400)
    batch1, batch2 = updates[:250], updates[250:]
    wal = str(tmp_path / algorithm)

    # First life: ingest, run, snapshot, ingest more, then "crash" (the
    # runtime is abandoned without drain/finalize/final-snapshot).
    manager = DurabilityManager(wal, 0, snapshot_interval=60.0)
    assert manager.resume_at == 0.0
    clock = Engine()
    runtime = LiveRuntime(config, algorithm, clock=clock)
    assert not (asyncio.run(manager.recover(runtime))).resumed
    manager.attach(runtime)
    runtime.ingest_batch(batch1)
    clock.run_until(batch1[-1].arrival_time + 0.5)
    manager.snapshot_now(runtime)
    runtime.ingest_batch(batch2)
    clock.run_until(batch2[-1].arrival_time + 0.05)
    manager.log.close()  # the OS reclaims the fd; nothing else runs

    # Second life: snapshot restore + log replay over the ingest path.
    manager2 = DurabilityManager(wal, 0, snapshot_interval=60.0)
    assert manager2.resume_at > 0.0
    clock2 = Engine(start_time=manager2.resume_at)
    runtime2 = LiveRuntime(config, algorithm, clock=clock2)
    stats = asyncio.run(manager2.recover(runtime2))
    assert stats.resumed
    assert stats.replayed_records > 0
    assert stats.snapshot_lsn == manager2.replayer.snapshot_lsn

    # Warm, not cold: every restored object keeps at least the snapshot's
    # generation timestamp (replay can only advance it).
    snapshot_state = manager2.replayer.state
    for name, partition in (("low", runtime2.database.low),
                            ("high", runtime2.database.high)):
        rows = snapshot_state["objects"][name]
        for obj, row in zip(partition, rows):
            assert obj.generation_time >= row[1]
    assert any(obj.generation_time > 0 for obj in runtime2.database.low)

    manager2.attach(runtime2)
    # Third act: post-restart traffic over the same stitched books.
    batch3 = _draw_updates(config, 100, seed=config.seed + 1)
    offset = clock2.now
    for update in batch3:
        update.arrival_time += offset
        update.generation_time += offset
    runtime2.ingest_batch(batch3)
    clock2.run_until(batch3[-1].arrival_time + 1.0)
    asyncio.run(manager2.stop(runtime2))
    result = runtime2.finalize()
    return result, stats


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_crash_cycle_books_balance(algorithm, tmp_path):
    """Kill → replay → continue: both conservation laws hold exactly over
    the stitched pre+post-crash ledger, for every scheduler."""
    result, stats = _crash_cycle(algorithm, tmp_path)
    assert result.update_conservation_gap() == 0
    assert result.transaction_conservation_gap() == 0
    assert result.updates_applied > 0
    assert result.extras["replayed_records"] == stats.replayed_records
    assert result.extras["replay_lag_s"] == pytest.approx(stats.replay_lag_s)
    assert result.extras["log_records_appended"] > 0


def test_replay_is_idempotent(tmp_path):
    """Replaying the same records twice cannot double-install: the
    worthiness check skips frames at or below the installed generation."""
    config = _config()
    wal = str(tmp_path / "wal")
    manager = DurabilityManager(wal, 0, snapshot_interval=60.0)
    clock = Engine()
    runtime = LiveRuntime(config, "TF", clock=clock)
    manager.attach(runtime)
    updates = _draw_updates(config, 200)
    runtime.ingest_batch(updates)
    clock.run_until(updates[-1].arrival_time + 1.0)
    manager.log.close()

    manager2 = DurabilityManager(wal, 0, snapshot_interval=60.0)
    clock2 = Engine(start_time=manager2.resume_at)
    runtime2 = LiveRuntime(config, "TF", clock=clock2)
    asyncio.run(manager2.recover(runtime2))
    clock2.run_until(clock2.now + 1.0)
    applied_once = runtime2.update_accounting.installed_applied
    generations = [o.generation_time for o in runtime2.database.low]

    # Feed the identical log a second time, straight through ingest.
    asyncio.run(replay_into(runtime2, manager2.replayer.pending))
    clock2.run_until(clock2.now + 1.0)
    assert runtime2.update_accounting.installed_applied == applied_once
    assert [o.generation_time for o in runtime2.database.low] == generations
    assert runtime2.update_accounting.installed_skipped > 0


def test_snapshot_rotate_bounds_replay(tmp_path):
    """After snapshot_now, only post-snapshot records replay — the log
    rotation is what keeps recovery O(interval), not O(uptime)."""
    config = _config()
    wal = str(tmp_path / "wal")
    manager = DurabilityManager(wal, 0, snapshot_interval=60.0)
    clock = Engine()
    runtime = LiveRuntime(config, "TF", clock=clock)
    manager.attach(runtime)
    updates = _draw_updates(config, 300)
    runtime.ingest_batch(updates[:200])
    clock.run_until(updates[199].arrival_time + 0.5)
    manager.snapshot_now(runtime)
    admitted_after = runtime.ingest_batch(updates[200:])
    clock.run_until(updates[-1].arrival_time + 0.01)
    manager.log.close()

    manager2 = DurabilityManager(wal, 0, snapshot_interval=60.0)
    assert len(manager2.replayer.pending) == admitted_after
    assert manager2.replayer.scan.base_lsn == manager2.replayer.snapshot_lsn


def test_snapshot_loop_failure_is_counted_and_surfaced(tmp_path, monkeypatch,
                                                       caplog):
    """A failing periodic capture must not pass silently: the loop keeps
    running, the failure is counted, kept as ``last_snapshot_error``,
    logged as a warning, and exposed through the runtime gauges (mirroring
    ``MetricsStreamer._note_sample_error``)."""
    import logging

    import repro.live.durability as durability_mod

    config = _config()
    manager = DurabilityManager(str(tmp_path / "wal"), 0,
                                snapshot_interval=0.02)
    clock = Engine()
    runtime = LiveRuntime(config, "TF", clock=clock)
    manager.attach(runtime)
    runtime.ingest_batch(_draw_updates(config, 20))
    clock.run_until(2.0)

    boom = OSError("disk full")

    def failing_capture(*args, **kwargs):
        raise boom

    monkeypatch.setattr(durability_mod, "capture_state", failing_capture)

    async def scenario():
        manager.start(runtime)
        while manager.snapshot_errors < 2:
            await asyncio.sleep(0.01)
        await manager.stop(runtime, final_snapshot=False)

    with caplog.at_level(logging.WARNING, logger="repro.live.durability"):
        asyncio.run(asyncio.wait_for(scenario(), timeout=OP_TIMEOUT))

    # Counted — and the loop survived the first failure to fail again.
    assert manager.snapshot_errors >= 2
    assert manager.snapshots_taken == 0
    assert manager.last_snapshot_error == repr(boom)
    assert any("snapshot failed" in record.getMessage()
               for record in caplog.records)

    # Surfaced: the attached runtime's gauges carry the counters, which is
    # what worker liveness() and merged cluster extras read from.
    gauges = runtime._gauges(clock.now)
    assert gauges["snapshot_errors"] == manager.snapshot_errors
    assert gauges["last_snapshot_error"] == repr(boom)
    assert gauges["snapshots_taken"] == 0

    # A later successful capture keeps the error breadcrumbs (last error
    # stays visible; only the taken-counter advances).
    monkeypatch.undo()
    manager.log.open()          # stop() closed it
    manager.snapshot_now(runtime)
    assert manager.snapshots_taken == 1
    assert manager.snapshot_errors >= 2
    assert manager.last_snapshot_error == repr(boom)
    manager.log.close()


def test_worker_liveness_reports_snapshot_errors():
    """Cluster liveness rows expose the snapshot-error breadcrumbs."""
    from repro.live.cluster import WorkerState

    state = WorkerState(index=1)
    state.snapshot_errors = 3
    state.last_snapshot_error = "OSError('disk full')"
    row = state.liveness()
    assert row["snapshot_errors"] == 3
    assert row["last_snapshot_error"] == "OSError('disk full')"


# ----------------------------------------------------------------------
# Process: supervised warm restart of a real shard worker
# ----------------------------------------------------------------------
def _cluster_config():
    config = baseline_config(duration=1.0, seed=11)
    config.warmup = 0.0
    config = config.with_updates(arrival_rate=500.0, mean_age=0.01)
    config = config.with_transactions(arrival_rate=5.0)
    return config.with_system(ips=5e8)


def _shard_gids(router, shard, count=5):
    gids = [
        gid for gid in range(router.n_low)
        if router.shard_of(ObjectClass.VIEW_LOW, gid) == shard
    ]
    assert len(gids) >= count, "config too small for this shard count"
    return gids[:count]


def _update_lines(gids, start_seq=0, value=1.0):
    lines = []
    for offset, gid in enumerate(gids):
        update = Update(
            seq=start_seq + offset, klass=ObjectClass.VIEW_LOW, object_id=gid,
            value=value, generation_time=0.0, arrival_time=0.0,
        )
        lines.append(json.dumps(update_to_dict(update)).encode() + b"\n")
    return b"".join(lines)


async def _wait_for(predicate, *, timeout=OP_TIMEOUT, interval=0.05):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition not reached within the timeout")
        await asyncio.sleep(interval)


def test_cluster_warm_restart_replays_and_balances(tmp_path):
    """A SIGKILLed shard worker comes back warm: the restarted process
    replays its log, the merged snapshot shows no state reset, and the
    final stitched books balance exactly."""

    async def scenario():
        cluster = ShardCluster(
            _cluster_config(), "TF", shards=2, restart_limit=1,
            flush_us=0.0, log_dir=str(tmp_path / "wal"),
        )
        host, port = await cluster.start()
        reader, writer = await asyncio.open_connection(host, port)
        gids0 = _shard_gids(cluster.router, 0)

        writer.write(_update_lines(gids0))
        await writer.drain()
        await asyncio.sleep(0.4)

        writer.write(b'{"kind": "snapshot"}\n')
        await writer.drain()
        line = await asyncio.wait_for(reader.readline(), timeout=OP_TIMEOUT)
        before = json.loads(line)
        assert before["updates_arrived"] >= len(gids0)

        cluster.kill_worker(0)
        await _wait_for(
            lambda: cluster.worker_status(0) == "up"
            and cluster.liveness()[0]["restarts"] == 1
        )
        liveness = cluster.liveness()[0]
        assert liveness["replayed_records"] > 0

        # Post-restart traffic lands on the warm shard.
        writer.write(_update_lines(gids0, start_seq=100, value=2.0))
        writer.write(b'{"kind": "snapshot"}\n')
        await writer.drain()
        line = await asyncio.wait_for(reader.readline(), timeout=OP_TIMEOUT)
        after = json.loads(line)
        assert after["extras"]["durability"] is True
        assert after["extras"]["replayed_records"][0] > 0
        assert after["extras"]["worker_restarts"] == [1, 0]
        # Warm, not reset: the merged books kept the pre-crash arrivals
        # (minus at most the records that were in flight at the kill).
        assert after["updates_arrived"] >= before["updates_arrived"]

        writer.close()
        result = await asyncio.wait_for(
            cluster.shutdown(drain_timeout=1.0), timeout=OP_TIMEOUT
        )
        return result

    result = asyncio.run(scenario())
    assert result.extras["worker_restarts"] == [1, 0]
    assert result.extras["down_shards"] == []
    assert result.extras["replayed_records"][0] > 0
    assert result.update_conservation_gap() == 0
    assert result.transaction_conservation_gap() == 0
