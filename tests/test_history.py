"""Tests for the historical-views extension (paper section 7 future work)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import baseline_config
from repro.core.simulator import run_simulation
from repro.db.database import Database
from repro.db.history import HistoryStore
from repro.db.objects import ObjectClass, Update

KEY = (ObjectClass.VIEW_LOW, 0)


def make_update(seq, generation, object_id=0, value=None):
    return Update(
        seq, ObjectClass.VIEW_LOW, object_id,
        float(seq) if value is None else value,
        generation, generation + 0.1,
    )


class TestHistoryStore:
    def test_depth_validation(self):
        with pytest.raises(ValueError):
            HistoryStore(0)

    def test_record_and_versions(self):
        store = HistoryStore(4)
        store.record(KEY, 1.0, generation_time=1.0, install_time=1.1)
        store.record(KEY, 2.0, generation_time=2.0, install_time=2.1)
        versions = store.versions(KEY)
        assert [v.value for v in versions] == [1.0, 2.0]
        assert store.version_count(KEY) == 2
        assert store.recorded == 2
        assert store.objects_tracked() == 1

    def test_ring_buffer_evicts_oldest(self):
        store = HistoryStore(2)
        for i in range(4):
            store.record(KEY, float(i), generation_time=float(i), install_time=i + 0.1)
        versions = store.versions(KEY)
        assert [v.value for v in versions] == [2.0, 3.0]
        assert store.evicted == 2

    def test_as_of_lookup(self):
        store = HistoryStore(8)
        for generation in (1.0, 3.0, 5.0):
            store.record(KEY, generation * 10, generation, generation + 0.1)
        assert store.value_as_of(KEY, 0.5) is None
        assert store.value_as_of(KEY, 1.0).value == 10.0
        assert store.value_as_of(KEY, 4.9).value == 30.0
        assert store.value_as_of(KEY, 100.0).value == 50.0

    def test_as_of_unknown_object(self):
        assert HistoryStore(2).value_as_of(KEY, 5.0) is None

    def test_iteration_over_tracked_objects(self):
        store = HistoryStore(2)
        other = (ObjectClass.VIEW_HIGH, 3)
        store.record(KEY, 1.0, 1.0, 1.1)
        store.record(other, 2.0, 2.0, 2.1)
        assert set(store) == {KEY, other}


class TestDatabaseIntegration:
    def test_disabled_by_default(self):
        database = Database(2, 2)
        assert database.history is None

    def test_installs_recorded_when_enabled(self):
        database = Database(2, 2, history_depth=4)
        database.install(make_update(0, generation=1.0), now=1.1)
        database.install(make_update(1, generation=2.0), now=2.1)
        assert database.history.version_count(KEY) == 2
        as_of = database.history.value_as_of(KEY, 1.5)
        assert as_of.generation_time == 1.0

    def test_skipped_updates_not_recorded(self):
        database = Database(2, 2, history_depth=4)
        database.install(make_update(0, generation=5.0), now=5.1)
        database.install(make_update(1, generation=1.0), now=6.0)  # skipped
        assert database.history.version_count(KEY) == 1

    def test_generations_strictly_increasing(self):
        database = Database(2, 2, history_depth=16)
        for seq, generation in enumerate((1.0, 0.5, 2.0, 1.5, 3.0)):
            database.install(make_update(seq, generation), now=seq + 4.0)
        generations = [v.generation_time for v in database.history.versions(KEY)]
        assert generations == sorted(generations)
        assert len(generations) == len(set(generations))

    def test_full_simulation_with_history(self):
        config = baseline_config(duration=5.0).with_updates(
            arrival_rate=100.0, n_low=20, n_high=20
        ).with_system(history_depth=8)
        from repro.core.simulator import Simulation

        sim = Simulation(config, "UF")
        result = sim.run()
        history = sim.database.history
        assert history is not None
        assert history.recorded == result.updates_applied
        assert history.objects_tracked() > 0


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=10.0),  # generation
            st.floats(min_value=0.0, max_value=10.0),  # as-of probe
        ),
        min_size=1,
        max_size=20,
    )
)
@settings(max_examples=50, deadline=None)
def test_as_of_matches_linear_scan(pairs):
    """Bisect-based as-of lookups must agree with a naive linear scan."""
    store = HistoryStore(64)
    database = Database(1, 1, history_depth=64)
    for seq, (generation, _) in enumerate(pairs):
        database.install(make_update(seq, generation), now=20.0 + seq)
    store = database.history
    versions = store.versions(KEY)
    for _, probe in pairs:
        expected = None
        for version in versions:
            if version.generation_time <= probe:
                expected = version
        actual = store.value_as_of(KEY, probe)
        assert actual is expected
