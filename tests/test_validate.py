"""Tests for the result invariant validator."""

import dataclasses

import pytest

from repro.config import baseline_config
from repro.core.simulator import run_simulation
from repro.metrics.validate import assert_invariants, check_invariants


@pytest.fixture(scope="module")
def healthy_result():
    config = baseline_config(duration=3.0).with_updates(
        arrival_rate=40.0, n_low=10, n_high=10
    )
    return run_simulation(config, "OD")


def corrupt(result, **changes):
    return dataclasses.replace(result, **changes)


def test_healthy_result_passes(healthy_result):
    assert check_invariants(healthy_result) == []
    assert_invariants(healthy_result)


def test_detects_probability_out_of_range(healthy_result):
    bad = corrupt(healthy_result, p_md=1.5)
    violations = check_invariants(bad)
    assert any("p_md" in v for v in violations)


def test_detects_conservation_gap(healthy_result):
    bad = corrupt(healthy_result, updates_arrived=healthy_result.updates_arrived + 5)
    assert any("update conservation" in v for v in check_invariants(bad))


def test_detects_transaction_gap(healthy_result):
    bad = corrupt(
        healthy_result,
        transactions_arrived=healthy_result.transactions_arrived + 1,
    )
    assert any("transaction conservation" in v for v in check_invariants(bad))


def test_detects_success_exceeding_timeliness(healthy_result):
    bad = corrupt(healthy_result, p_md=0.9, p_success=0.5)
    assert any("p_success" in v for v in check_invariants(bad))


def test_detects_overfull_cpu(healthy_result):
    bad = corrupt(healthy_result, rho_transactions=0.9, rho_updates=0.9)
    assert any("utilization" in v for v in check_invariants(bad))


def test_detects_value_overrun(healthy_result):
    bad = corrupt(healthy_result, value_earned=healthy_result.value_offered + 1)
    assert any("value" in v for v in check_invariants(bad))


def test_detects_on_demand_without_scans(healthy_result):
    bad = corrupt(
        healthy_result,
        updates_on_demand_scans=0,
        updates_on_demand_applied=3,
    )
    assert any("on-demand" in v for v in check_invariants(bad))


def test_assert_raises_with_all_violations(healthy_result):
    bad = corrupt(healthy_result, p_md=2.0, fold_low=-0.5)
    with pytest.raises(AssertionError) as excinfo:
        assert_invariants(bad)
    message = str(excinfo.value)
    assert "p_md" in message
    assert "fold_low" in message
