"""Model-based stateful testing of the update queue.

Hypothesis drives random operation sequences against the real
:class:`~repro.db.update_queue.UpdateQueue` and a trivially correct model
(a plain sorted list), asserting observable equivalence after every step.
This complements the example-based tests with coverage of the interactions
between tombstoning, the head pointer, compaction, expiry, and the
per-object buckets.
"""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.db.objects import ObjectClass, Update
from repro.db.update_queue import UpdateQueue

CAPACITY = 12
OBJECTS = 5


class QueueModel:
    """The obviously-correct reference: a sorted list of live updates."""

    def __init__(self):
        self.items: list[Update] = []

    def sort(self):
        self.items.sort(key=lambda u: (u.generation_time, u.seq))

    def push(self, update):
        self.sort()
        while len(self.items) >= CAPACITY:
            self.items.pop(0)
        self.items.append(update)
        self.sort()

    def pop(self, lifo):
        if not self.items:
            return None
        return self.items.pop(-1 if lifo else 0)

    def expire(self, cutoff):
        keep = [u for u in self.items if u.generation_time >= cutoff]
        expired = [u for u in self.items if u.generation_time < cutoff]
        self.items = keep
        return expired

    def newest_for(self, key):
        candidates = [u for u in self.items if u.key == key]
        if not candidates:
            return None
        return max(candidates, key=lambda u: (u.generation_time, u.seq))

    def remove(self, update):
        self.items.remove(update)


class UpdateQueueMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.queue = UpdateQueue(CAPACITY)
        self.model = QueueModel()
        self.clock = 0.0
        self.seq = 0

    def _advance(self, gap):
        self.clock += gap

    @rule(
        gap=st.floats(min_value=0.0, max_value=0.5),
        age=st.floats(min_value=0.0, max_value=3.0),
        object_id=st.integers(min_value=0, max_value=OBJECTS - 1),
    )
    def push(self, gap, age, object_id):
        self._advance(gap)
        update = Update(
            self.seq,
            ObjectClass.VIEW_LOW,
            object_id,
            0.0,
            generation_time=max(0.0, self.clock - age),
            arrival_time=self.clock,
        )
        self.seq += 1
        self.queue.push(update, self.clock)
        self.model.push(update)

    @rule(lifo=st.booleans(), gap=st.floats(min_value=0.0, max_value=0.5))
    def pop(self, lifo, gap):
        self._advance(gap)
        real = self.queue.pop_next(lifo, self.clock)
        expected = self.model.pop(lifo)
        assert real is expected

    @rule(horizon=st.floats(min_value=0.0, max_value=3.0),
          gap=st.floats(min_value=0.0, max_value=0.5))
    def expire(self, horizon, gap):
        self._advance(gap)
        cutoff = self.clock - horizon
        real = self.queue.expire_older_than(cutoff, self.clock)
        expected = self.model.expire(cutoff)
        assert real == expected

    @rule(object_id=st.integers(min_value=0, max_value=OBJECTS - 1))
    def remove_newest_of_object(self, object_id):
        key = (ObjectClass.VIEW_LOW, object_id)
        real = self.queue.newest_for(key)
        expected = self.model.newest_for(key)
        assert real is expected
        if real is not None:
            self.queue.remove(real, self.clock)
            self.model.remove(expected)

    @invariant()
    def contents_match(self):
        assert list(self.queue) == self.model.items
        assert len(self.queue) == len(self.model.items)

    @invariant()
    def per_object_counts_match(self):
        for object_id in range(OBJECTS):
            key = (ObjectClass.VIEW_LOW, object_id)
            expected = sum(1 for u in self.model.items if u.key == key)
            assert self.queue.pending_for(key) == expected


TestUpdateQueueStateful = UpdateQueueMachine.TestCase
TestUpdateQueueStateful.settings = settings(
    max_examples=40, stateful_step_count=60, deadline=None
)
