"""Unit tests for the algorithm registry and policy attributes."""

import pytest

from repro.core.algorithms import (
    ALGORITHMS,
    FixedFraction,
    OnDemand,
    SplitQueueTransactionFirst,
    SplitUpdates,
    TransactionFirst,
    UpdateFirst,
    make_algorithm,
)
from repro.core.algorithms.registry import PAPER_ALGORITHMS
from repro.db.objects import ObjectClass, Update


def test_registry_contains_the_paper_algorithms():
    assert set(PAPER_ALGORITHMS) == {"UF", "TF", "SU", "OD"}
    for name in PAPER_ALGORITHMS:
        assert name in ALGORITHMS


def test_make_algorithm_case_insensitive():
    assert isinstance(make_algorithm("uf"), UpdateFirst)
    assert isinstance(make_algorithm("Od"), OnDemand)
    assert isinstance(make_algorithm("tf-split"), SplitQueueTransactionFirst)


def test_make_algorithm_unknown_name():
    with pytest.raises(KeyError, match="known"):
        make_algorithm("XYZ")


def test_make_algorithm_passes_kwargs():
    fx = make_algorithm("FX", fraction=0.35)
    assert fx.fraction == 0.35


def test_fixed_fraction_validation():
    with pytest.raises(ValueError):
        FixedFraction(fraction=1.5)


def test_policy_attributes():
    assert not UpdateFirst.uses_update_queue
    assert TransactionFirst.uses_update_queue
    assert OnDemand.on_demand
    assert not TransactionFirst.on_demand
    assert SplitQueueTransactionFirst.wants_partitioned_queue
    assert not TransactionFirst.wants_partitioned_queue


def test_names_are_unique():
    assert len(ALGORITHMS) == len({cls().name if callable(cls) else cls
                                   for cls in ALGORITHMS})


def test_importance_test():
    algorithm = SplitUpdates()
    high = Update(0, ObjectClass.VIEW_HIGH, 0, 0.0, 1.0, 1.1)
    low = Update(1, ObjectClass.VIEW_LOW, 0, 0.0, 1.0, 1.1)
    assert algorithm.is_high_importance(high)
    assert not algorithm.is_high_importance(low)
