"""Tests for the wire fast path: specialized codec + coalescing I/O.

Two contracts matter:

* The schema-specialized codec is *byte-identical* to the generic
  ``json.dumps(item_to_dict(...))`` encoder — a batch on the wire is
  indistinguishable from the same records written one at a time, so old
  peers interoperate.
* :class:`CoalescingWriter` / :func:`iter_line_batches` change syscall
  granularity, never content or order.
"""

import asyncio
import json

import pytest

from repro.config import baseline_config
from repro.db.objects import ObjectClass, Update
from repro.live.wire import (
    MAX_BATCH_BYTES,
    CoalescingWriter,
    iter_line_batches,
)
from repro.sim.streams import StreamFamily
from repro.workload.codec import (
    decode_lines,
    encode_item,
    encode_lines,
    item_from_record,
)
from repro.workload.trace import item_to_dict
from repro.workload.transactions import TransactionGenerator, TransactionSpec
from repro.workload.updates import UpdateStreamGenerator


def _drawn_items(seed=424242, rate=300.0, duration=3.0):
    config = baseline_config(duration=duration, seed=seed)
    config.warmup = 0.0
    config = config.with_updates(arrival_rate=rate)
    config = config.with_transactions(arrival_rate=20.0)
    streams = StreamFamily(config.seed)
    update_gen = UpdateStreamGenerator(config, None, streams, lambda _: None)
    txn_gen = TransactionGenerator(config, None, streams, lambda _: None)
    items = []
    t = update_gen.next_interarrival()
    while t < config.duration:
        items.append(update_gen.draw_update(t))
        t += update_gen.next_interarrival()
    t = txn_gen.next_interarrival()
    while t < config.duration:
        items.append(txn_gen.draw_spec(t))
        t += txn_gen.next_interarrival()
    return items


# ----------------------------------------------------------------------
# Codec
# ----------------------------------------------------------------------
def test_encoder_is_byte_identical_to_generic_json():
    """The f-string encoder must match json.dumps exactly, float by float."""
    items = _drawn_items()
    assert len(items) > 500
    for item in items:
        assert encode_item(item) == json.dumps(item_to_dict(item))


def test_encoder_covers_partial_updates():
    update = Update(seq=3, klass=ObjectClass.VIEW_HIGH, object_id=7,
                    value=1.5, generation_time=0.25, arrival_time=0.375,
                    partial=True, attribute=2)
    assert encode_item(update) == json.dumps(item_to_dict(update))


def test_encoder_rejects_unknown_types():
    with pytest.raises(TypeError):
        encode_item({"kind": "update"})


def test_batch_round_trip_rebuilds_identical_records():
    items = _drawn_items()
    payload = encode_lines(items)
    lines = [line for line in payload.split(b"\n") if line]
    rebuilt = [item_from_record(record) for record in decode_lines(lines)]
    assert [item_to_dict(item) for item in rebuilt] == [
        item_to_dict(item) for item in items
    ]
    # Types survive, not just dicts.
    assert all(
        type(a) is type(b) for a, b in zip(rebuilt, items)
    )


def test_decode_lines_isolates_a_malformed_line():
    """A bad line comes back as its own error; neighbors still decode."""
    lines = [b'{"kind": "update"}', b"not json", b'{"a": 1}']
    records = decode_lines(lines)
    assert records[0] == {"kind": "update"}
    assert isinstance(records[1], ValueError)
    assert records[2] == {"a": 1}


def test_decode_lines_guards_against_fragment_miscounts():
    """b"1, 2" is valid JSON *fragment* content inside an array wrapper;
    the element-count guard must force the per-line fallback so the error
    stays attributed to the right line."""
    lines = [b'{"a": 1}', b"1, 2", b'{"b": 2}']
    records = decode_lines(lines)
    assert records[0] == {"a": 1}
    assert isinstance(records[1], ValueError)
    assert records[2] == {"b": 2}


def test_item_from_record_rejects_non_objects_and_unknown_kinds():
    with pytest.raises(ValueError):
        item_from_record(5)
    with pytest.raises(ValueError):
        item_from_record({"kind": "mystery"})
    with pytest.raises(ValueError):
        item_from_record({})


# ----------------------------------------------------------------------
# CoalescingWriter
# ----------------------------------------------------------------------
class _FakeTransport:
    def __init__(self):
        self.buffer_size = 0
        self.closing = False

    def get_write_buffer_size(self):
        return self.buffer_size

    def get_write_buffer_limits(self):
        return (16 * 1024, 64 * 1024)

    def is_closing(self):
        return self.closing


class _FakeStreamWriter:
    def __init__(self):
        self.transport = _FakeTransport()
        self.payloads: list[bytes] = []
        self.drains = 0
        self.closed = False

    def write(self, payload: bytes) -> None:
        self.payloads.append(payload)

    async def drain(self) -> None:
        self.drains += 1

    def close(self) -> None:
        self.closed = True

    async def wait_closed(self) -> None:
        pass


def test_coalescing_writer_flushes_on_batch_max():
    async def scenario():
        fake = _FakeStreamWriter()
        out = CoalescingWriter(fake, batch_max=3, flush_us=1e6)
        for i in range(7):
            out.write(b"%d\n" % i)
        return fake, out

    fake, out = asyncio.run(scenario())
    assert fake.payloads == [b"0\n1\n2\n", b"3\n4\n5\n"]  # 6th still buffered
    assert out.records == 7
    assert out.flushes == 2


def test_coalescing_writer_flush_deadline_covers_stragglers():
    async def scenario():
        fake = _FakeStreamWriter()
        out = CoalescingWriter(fake, batch_max=1000, flush_us=500.0)
        out.write(b"lone\n")
        assert fake.payloads == []  # parked, waiting for company
        await asyncio.sleep(0.05)  # >> flush deadline
        return fake

    fake = asyncio.run(scenario())
    assert fake.payloads == [b"lone\n"]


def test_coalescing_writer_batch_max_one_is_per_record():
    async def scenario():
        fake = _FakeStreamWriter()
        out = CoalescingWriter(fake, batch_max=1, flush_us=500.0)
        out.write(b"a\n")
        out.write(b"b\n")
        return fake

    fake = asyncio.run(scenario())
    assert fake.payloads == [b"a\n", b"b\n"]


def test_coalescing_writer_write_batch_counts_records():
    """A pre-coalesced payload counts its records toward the batch bound."""
    async def scenario():
        fake = _FakeStreamWriter()
        out = CoalescingWriter(fake, batch_max=4, flush_us=1e6)
        out.write_batch(b"a\nb\nc\n", 3)
        assert fake.payloads == []  # 3 of 4: still under the bound
        out.write(b"d\n")
        return fake, out

    fake, out = asyncio.run(scenario())
    assert fake.payloads == [b"a\nb\nc\nd\n"]
    assert out.records == 4


def test_coalescing_writer_byte_bound_flushes_large_batches():
    async def scenario():
        fake = _FakeStreamWriter()
        out = CoalescingWriter(fake, batch_max=10_000, flush_us=1e6)
        line = b"x" * 4096 + b"\n"
        for _ in range(MAX_BATCH_BYTES // len(line) + 1):
            out.write(line)
        return fake

    fake = asyncio.run(scenario())
    assert fake.payloads  # flushed by bytes, not by count or deadline


def test_coalescing_writer_backpressure_only_over_high_water():
    async def scenario():
        fake = _FakeStreamWriter()
        out = CoalescingWriter(fake, batch_max=4, flush_us=500.0)
        await out.backpressure()
        below = fake.drains
        fake.transport.buffer_size = 1 << 20  # over the 64 KiB high water
        await out.backpressure()
        return below, fake.drains

    below, above = asyncio.run(scenario())
    assert below == 0
    assert above == 1


def test_coalescing_writer_aclose_flushes_then_closes():
    async def scenario():
        fake = _FakeStreamWriter()
        out = CoalescingWriter(fake, batch_max=100, flush_us=1e6)
        out.write(b"tail\n")
        await out.aclose()
        return fake

    fake = asyncio.run(scenario())
    assert fake.payloads == [b"tail\n"]
    assert fake.closed


def test_coalescing_writer_drops_writes_after_peer_close():
    async def scenario():
        fake = _FakeStreamWriter()
        out = CoalescingWriter(fake, batch_max=1, flush_us=500.0)
        fake.transport.closing = True
        out.write(b"late\n")
        return fake, out

    fake, out = asyncio.run(scenario())
    assert fake.payloads == []
    assert out.flushes == 0


# ----------------------------------------------------------------------
# iter_line_batches
# ----------------------------------------------------------------------
def _reader_from_chunks(chunks):
    reader = asyncio.StreamReader()
    for chunk in chunks:
        reader.feed_data(chunk)
    reader.feed_eof()
    return reader


def test_iter_line_batches_yields_complete_lines_per_wakeup():
    async def scenario():
        reader = _reader_from_chunks([b"a\nb\nc\nd"])
        return [batch async for batch in iter_line_batches(reader)]

    batches = asyncio.run(scenario())
    # All complete lines in one batch; the unterminated tail at EOF.
    assert batches == [[b"a", b"b", b"c"], [b"d"]]
    assert [line for batch in batches for line in batch] == [b"a", b"b", b"c", b"d"]


def test_iter_line_batches_reassembles_split_lines():
    async def scenario():
        reader = _reader_from_chunks([b'{"seq": 1', b', "x": 2}\n{"seq": 2}\n'])
        return [batch async for batch in iter_line_batches(reader, chunk_size=10)]

    batches = asyncio.run(scenario())
    flat = [line for batch in batches for line in batch]
    assert flat == [b'{"seq": 1, "x": 2}', b'{"seq": 2}']


def test_iter_line_batches_skips_blank_lines():
    async def scenario():
        reader = _reader_from_chunks([b"\n\na\n\r\nb\n\n"])
        return [batch async for batch in iter_line_batches(reader)]

    batches = asyncio.run(scenario())
    assert [line for batch in batches for line in batch] == [b"a", b"b"]
