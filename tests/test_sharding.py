"""Tests for keyspace sharding: router, merge, and sharded simulation.

The load-bearing guarantee is at the bottom: for every registered
algorithm, ``shards=1`` is *asdict-identical* to the pre-refactor single
pipeline (replicated verbatim in :func:`_reference_run`), and multi-shard
runs preserve both conservation laws and every reported invariant.
"""

from dataclasses import asdict

import pytest

from repro.config import baseline_config
from repro.core.algorithms.registry import ALGORITHMS
from repro.core.sharding import build_shard_set, route_spec, route_update, shard_config
from repro.core.simulator import run_simulation
from repro.core.wiring import build_parts, collect_result, reset_measurement
from repro.db.objects import ObjectClass, Update
from repro.db.sharding import ROUTER_VERSION, ShardRouter, stable_hash
from repro.metrics.freshness import SampledLedger
from repro.metrics.results import SimulationResult
from repro.metrics.validate import check_invariants
from repro.sim.engine import Engine
from repro.sim.streams import StreamFamily
from repro.workload.transactions import TransactionGenerator, TransactionSpec
from repro.workload.updates import UpdateStreamGenerator


def small_config(**overrides):
    config = baseline_config(duration=4.0, seed=11, **overrides)
    config.warmup = 0.0
    return config.with_updates(arrival_rate=120.0, n_low=30, n_high=30)


# ----------------------------------------------------------------------
# Hash and router
# ----------------------------------------------------------------------
class TestStableHash:
    def test_hard_coded_values_never_change(self):
        """Routing is part of the cache key (ROUTER_VERSION); if these
        change, ROUTER_VERSION must be bumped."""
        assert ROUTER_VERSION == 1
        assert stable_hash(0) == 16294208416658607535
        assert stable_hash(1) == 10451216379200822465
        assert stable_hash(1995) == 9285508217098258303

    def test_deterministic_across_calls(self):
        assert all(stable_hash(v) == stable_hash(v) for v in range(64))


class TestShardRouter:
    def test_partitions_the_whole_keyspace(self):
        router = ShardRouter(30, 20, 4)
        for klass, count in ((ObjectClass.VIEW_LOW, 30), (ObjectClass.VIEW_HIGH, 20)):
            per_shard = {s: [] for s in range(4)}
            for gid in range(count):
                per_shard[router.shard_of(klass, gid)].append(
                    router.local_id(klass, gid)
                )
            # Local ids are dense 0..k-1 on every shard, in gid order.
            for shard, locals_ in per_shard.items():
                assert locals_ == list(range(router.count_for(shard, klass)))
        totals = [router.counts(s) for s in range(4)]
        assert sum(low for low, _ in totals) == 30
        assert sum(high for _, high in totals) == 20

    def test_budgets_cover_the_global_budget(self):
        router = ShardRouter(30, 20, 4)
        os_budgets = [router.os_budget(s, 10) for s in range(4)]
        uq_budgets = [router.uq_budget(s, 100) for s in range(4)]
        assert sum(os_budgets) >= 10
        assert all(b >= 1 for b in os_budgets)
        assert sum(uq_budgets) >= 100
        assert all(b >= 2 for b in uq_budgets)  # PartitionedUpdateQueue floor

    def test_rejects_invalid_topologies(self):
        with pytest.raises(ValueError):
            ShardRouter(30, 20, 0)
        with pytest.raises(ValueError):
            ShardRouter(1, 0, 2)  # fewer objects than shards
        with pytest.raises(ValueError, match="use fewer shards"):
            ShardRouter(1, 1, 2)  # both objects hash to shard 1

    def test_accounting(self):
        router = ShardRouter(30, 20, 2)
        router.note_update_routed(0)
        router.note_update_routed(1)
        router.note_transaction_routed(1)
        router.note_remapped_read()
        acct = router.accounting()
        assert acct["shards"] == 2
        assert acct["router_version"] == ROUTER_VERSION
        assert acct["updates_routed"] == [1, 1]
        assert acct["transactions_routed"] == [0, 1]
        assert acct["remapped_reads"] == 1
        assert acct["routing_errors"] == 0


class TestRouting:
    def _update(self, gid, klass=ObjectClass.VIEW_LOW):
        return Update(0, klass, gid, 1.0, 0.5, 0.6)

    def test_route_update_localizes_without_mutating_original(self):
        router = ShardRouter(30, 20, 4)
        update = self._update(17)
        shard, routed = route_update(router, update)
        assert shard == router.shard_of(ObjectClass.VIEW_LOW, 17)
        assert routed.object_id == router.local_id(ObjectClass.VIEW_LOW, 17)
        assert routed is not update and update.object_id == 17
        assert sum(router.updates_routed) == 1

    def test_route_spec_remaps_cross_shard_reads(self):
        router = ShardRouter(30, 20, 4)
        spec = TransactionSpec(
            seq=1, arrival_time=0.1, high_value=False, value=1.0,
            compute_time=0.01, reads=tuple(range(10)), slack=1.0,
        )
        shard, routed = route_spec(router, spec)
        assert shard == router.shard_of(ObjectClass.VIEW_LOW, 0)
        owned = router.count_for(shard, ObjectClass.VIEW_LOW)
        assert all(0 <= r < owned for r in routed.reads)
        # Owned reads keep their identity; foreign ones are stand-ins.
        for gid, local in zip(spec.reads, routed.reads):
            if router.shard_of(ObjectClass.VIEW_LOW, gid) == shard:
                assert local == router.local_id(ObjectClass.VIEW_LOW, gid)
        assert router.remapped_reads == sum(
            1 for gid in spec.reads
            if router.shard_of(ObjectClass.VIEW_LOW, gid) != shard
        )

    def test_readless_spec_routes_by_sequence(self):
        router = ShardRouter(30, 20, 4)
        spec = TransactionSpec(
            seq=9, arrival_time=0.1, high_value=True, value=1.0,
            compute_time=0.01, reads=(), slack=1.0,
        )
        shard, routed = route_spec(router, spec)
        assert shard == router.hash_shard(9)
        assert routed is spec


# ----------------------------------------------------------------------
# Result merging
# ----------------------------------------------------------------------
class TestMerge:
    def test_merging_a_result_with_itself_doubles_counters(self):
        result = run_simulation(small_config(), "TF")
        merged = SimulationResult.merge([result, result])
        assert merged.updates_arrived == 2 * result.updates_arrived
        assert merged.transactions_committed == 2 * result.transactions_committed
        assert merged.value_earned == pytest.approx(2 * result.value_earned)
        # Utilizations are fractions of aggregate capacity: the mean.
        assert merged.rho_transactions == pytest.approx(result.rho_transactions)
        assert merged.rho_updates == pytest.approx(result.rho_updates)
        assert merged.fold_low == pytest.approx(result.fold_low)
        assert merged.p_md == pytest.approx(result.p_md)
        # Conservation is linear, so zero gaps merge to zero gaps.
        assert merged.update_conservation_gap() == 0
        assert merged.transaction_conservation_gap() == 0

    def test_merge_of_one_is_identity(self):
        result = run_simulation(small_config(), "TF")
        assert SimulationResult.merge([result]) == result

    def test_refuses_mismatched_runs(self):
        a = run_simulation(small_config(), "TF")
        b = run_simulation(small_config(), "UF")
        with pytest.raises(ValueError, match="refusing to merge"):
            SimulationResult.merge([a, b])
        with pytest.raises(ValueError):
            SimulationResult.merge([])


# ----------------------------------------------------------------------
# shards=1 parity against the pre-refactor pipeline
# ----------------------------------------------------------------------
def _reference_run(config, algorithm, **kwargs) -> SimulationResult:
    """The single-pipeline simulation loop exactly as it was wired before
    sharding existed: build_parts + controller-bound generator sinks."""
    engine = Engine()
    parts = build_parts(config, algorithm, engine, **kwargs)
    streams = StreamFamily(config.seed)
    update_generator = UpdateStreamGenerator(
        config, engine, streams, parts.controller.on_update_arrival
    )
    transaction_generator = TransactionGenerator(
        config, engine, streams, parts.controller.on_transaction_arrival
    )
    update_generator.start()
    transaction_generator.start()
    if isinstance(parts.ledger, SampledLedger):
        parts.ledger.start()
    if config.warmup > 0:
        engine.schedule_at(
            config.warmup, lambda: reset_measurement(parts, engine.now)
        )
    engine.run_until(config.duration)
    parts.controller.finalize(config.duration)
    parts.ledger.finalize(config.duration)
    return collect_result(parts, config.duration - config.warmup)


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_single_shard_is_bit_identical_to_reference(algorithm):
    config = small_config()
    reference = asdict(_reference_run(config, algorithm))
    assert asdict(run_simulation(config, algorithm)) == reference
    assert asdict(run_simulation(config, algorithm, shards=1)) == reference


# ----------------------------------------------------------------------
# Multi-shard conservation and invariants
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", [2, 4])
def test_sharded_run_sees_every_arrival(shards):
    """At warmup=0 nothing is recounted at a boundary, so the sharded
    topology must account for exactly the same arrival streams."""
    config = small_config()
    flat = run_simulation(config, "TF")
    sharded = run_simulation(config, "TF", shards=shards)
    assert sharded.updates_arrived == flat.updates_arrived
    assert sharded.transactions_arrived == flat.transactions_arrived
    assert sharded.extras["shards"] == shards
    assert sum(sharded.extras["updates_routed"]) == flat.updates_arrived


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_sharded_run_preserves_conservation_and_invariants(algorithm):
    config = baseline_config(duration=6.0, seed=23)
    config.warmup = 2.0
    config = config.with_updates(arrival_rate=150.0, n_low=30, n_high=30)
    result = run_simulation(config, algorithm, shards=2)
    assert result.update_conservation_gap() == 0
    assert result.transaction_conservation_gap() == 0
    assert check_invariants(result) == []


def test_sharded_config_splits_the_keyspace_and_budgets():
    config = small_config()
    router = ShardRouter(config.updates.n_low, config.updates.n_high, 4)
    configs = [shard_config(config, router, index) for index in range(4)]
    assert sum(c.updates.n_low for c in configs) == config.updates.n_low
    assert sum(c.updates.n_high for c in configs) == config.updates.n_high
    assert sum(c.system.os_queue_max for c in configs) >= config.system.os_queue_max


def test_multi_shard_build_requires_algorithm_name():
    config = small_config()
    algorithm = ALGORITHMS["TF"]()
    engine = Engine()
    with pytest.raises(ValueError, match="algorithm name"):
        build_shard_set(config, algorithm, engine, shards=2)
    # The single-shard path still accepts an instance, as before.
    shard_set = build_shard_set(config, algorithm, engine, shards=1)
    assert len(shard_set) == 1


# ----------------------------------------------------------------------
# Batched routing parity (route_batch must not change the model)
# ----------------------------------------------------------------------
def _drawn_schedule(config, step=0.02):
    """Draw the workload up front and quantize arrivals *up* onto a grid,
    so several records share one delivery instant — the shape a coalesced
    wire batch produces at the router."""
    import math

    streams = StreamFamily(config.seed)
    update_gen = UpdateStreamGenerator(config, None, streams, lambda _: None)
    txn_gen = TransactionGenerator(config, None, streams, lambda _: None)
    bursts: dict[float, list] = {}
    t = update_gen.next_interarrival()
    while t < config.duration:
        at = math.ceil(t / step) * step
        bursts.setdefault(at, []).append(update_gen.draw_update(at))
        t += update_gen.next_interarrival()
    t = txn_gen.next_interarrival()
    while t < config.duration:
        at = math.ceil(t / step) * step
        bursts.setdefault(at, []).append(txn_gen.draw_spec(at))
        t += txn_gen.next_interarrival()
    return bursts


@pytest.mark.parametrize("shards", [1, 2])
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_route_batch_parity_with_per_record(algorithm, shards):
    """Batched routing == per-record routing, for every algorithm, at one
    shard and two: identical results *and* identical routing accounting."""
    config = small_config()

    def run(batched):
        engine = Engine()
        shard_set = build_shard_set(config, algorithm, engine, shards=shards)
        shard_set.start_ledgers()
        for at, burst in _drawn_schedule(config).items():
            if batched:
                engine.schedule_at(at, shard_set.route_batch, burst)
            else:
                for item in burst:
                    if isinstance(item, Update):
                        engine.schedule_at(at, shard_set.route_update, item)
                    else:
                        engine.schedule_at(at, shard_set.route_spec, item)
        engine.run_until(config.duration)
        shard_set.finalize(config.duration)
        result = asdict(shard_set.collect(config.duration))
        # The clock-event count is the delivery mechanism, not the model.
        result.pop("events_dispatched")
        return result

    per_record = run(batched=False)
    batch = run(batched=True)
    assert batch == per_record
    assert batch["updates_applied"] > 0


def test_route_batch_groups_by_shard_and_amortizes_accounting():
    router = ShardRouter(30, 30, 3)
    from repro.core.sharding import route_batch

    updates = [
        Update(seq=i, klass=ObjectClass.VIEW_LOW, object_id=i, value=1.0,
               generation_time=0.0, arrival_time=0.1)
        for i in range(30)
    ]
    by_shard = route_batch(router, updates)
    assert sorted(by_shard) == [0, 1, 2]
    # Every record landed on its owner, in batch order, localized.
    total = 0
    for shard, routed in by_shard.items():
        seqs = [u.seq for u in routed]
        assert seqs == sorted(seqs)
        for u in routed:
            assert router.shard_of(ObjectClass.VIEW_LOW, u.seq) == shard
            assert u.object_id == router.local_id(ObjectClass.VIEW_LOW, u.seq)
        total += len(routed)
    assert total == 30
    assert router.updates_routed == [len(by_shard.get(s, [])) for s in range(3)]


def test_route_batch_skips_unroutable_records_without_poisoning_neighbors():
    router = ShardRouter(8, 8, 2)
    from repro.core.sharding import route_batch

    good = Update(seq=0, klass=ObjectClass.VIEW_LOW, object_id=1, value=1.0,
                  generation_time=0.0, arrival_time=0.1)
    bad = Update(seq=1, klass=ObjectClass.VIEW_LOW, object_id=999, value=1.0,
                 generation_time=0.0, arrival_time=0.1)
    errors = []
    by_shard = route_batch(router, [good, bad, good],
                           on_error=lambda item, exc: errors.append(item))
    assert sum(len(routed) for routed in by_shard.values()) == 2
    assert errors == [bad]
    assert router.routing_errors == 1
    assert sum(router.updates_routed) == 2
